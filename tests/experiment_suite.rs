//! Runs the whole experiment registry in smoke mode — every figure's
//! harness must execute end to end — plus quick-mode shape checks for
//! the cheapest, most robust figures. The full 40-replicate validation
//! lives in the `repro --full` binary (see EXPERIMENTS.md).

use agentnet::experiments::{registry, Mode};

#[test]
fn every_experiment_runs_in_smoke_mode() {
    for exp in registry::all() {
        let report = exp.run_serial(Mode::Smoke);
        assert_eq!(report.id, exp.id);
        assert!(!report.table.is_empty(), "{}: empty table", exp.id);
        assert!(!report.claims.is_empty(), "{}: no claims checked", exp.id);
        assert!(!report.to_markdown().is_empty());
        assert!(report.to_json()["table"].is_array());
    }
}

#[test]
fn fig1_shape_holds_at_quick_mode() {
    let report = registry::by_id("fig1").unwrap().run_serial(Mode::Quick);
    assert!(report.passed(), "{}", report.to_markdown());
}

#[test]
fn fig11_and_stigmergic_recovery_hold_at_quick_mode() {
    let fig11 = registry::by_id("fig11").unwrap().run_serial(Mode::Quick);
    assert!(fig11.passed(), "{}", fig11.to_markdown());
    let ext = registry::by_id("ext-stigroute").unwrap().run_serial(Mode::Quick);
    assert!(ext.passed(), "{}", ext.to_markdown());
}

#[test]
fn degradation_ablation_holds() {
    let report = registry::by_id("ext-degradation").unwrap().run_serial(Mode::Quick);
    assert!(report.passed(), "{}", report.to_markdown());
}

#[test]
#[ignore = "full paper-scale validation; run with --ignored (minutes)"]
fn full_suite_passes_at_quick_mode() {
    for exp in registry::all() {
        let report = exp.run_serial(Mode::Quick);
        assert!(report.passed(), "{}", report.to_markdown());
    }
}
