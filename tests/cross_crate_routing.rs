//! Integration tests spanning radio → core for the routing study,
//! including the key cross-crate invariant: routed connectivity can
//! never exceed the instantaneous graph reachability of the gateways.

use agentnet::core::policy::RoutingPolicy;
use agentnet::core::routing::{RoutingConfig, RoutingSim};
use agentnet::engine::replicate::run_replicates;
use agentnet::engine::rng::SeedSequence;
use agentnet::engine::sim::{Step, TimeStepSim};
use agentnet::radio::NetworkBuilder;

fn builder() -> NetworkBuilder {
    NetworkBuilder::new(60).gateways(4).target_edges(480)
}

#[test]
fn routed_connectivity_never_exceeds_graph_reachability() {
    let net = builder().build(3).expect("network builds");
    let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 25);
    let mut sim = RoutingSim::new(net, cfg, 7).expect("valid config");
    for s in 0..120 {
        sim.step(Step::new(s));
        let routed = sim.connectivity();
        let upper = sim.network().reachability_upper_bound();
        assert!(
            routed <= upper + 1e-9,
            "step {s}: routed {routed:.3} exceeded reachability {upper:.3}"
        );
    }
}

#[test]
fn connectivity_is_always_a_valid_fraction() {
    let net = builder().build(5).expect("network builds");
    let cfg = RoutingConfig::new(RoutingPolicy::Random, 15).communication(true);
    let mut sim = RoutingSim::new(net, cfg, 2).expect("valid config");
    let out = sim.run(100);
    for (i, &v) in out.connectivity.values().iter().enumerate() {
        assert!((0.0..=1.0).contains(&v), "step {i}: connectivity {v} out of range");
    }
}

#[test]
fn replicated_routing_is_deterministic_and_varied() {
    let job = |_: usize, seeds: SeedSequence| {
        let net = builder().build(11).expect("network builds");
        let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 20).communication(true);
        let mut sim = RoutingSim::new(net, cfg, seeds.seed()).expect("valid config");
        sim.run(80).mean_connectivity(40..80).unwrap()
    };
    let a = run_replicates(5, SeedSequence::new(31), job);
    let b = run_replicates(5, SeedSequence::new(31), job);
    assert_eq!(a, b);
    assert!(a.windows(2).any(|w| w[0] != w[1]), "replicates identical: {a:?}");
}

#[test]
fn static_network_with_agents_reaches_high_connectivity() {
    // No mobility, no battery decay: agents should eventually give almost
    // every reachable node a permanently valid chain.
    let net = builder().mobile_fraction(0.0).build(13).expect("network builds");
    let upper = net.reachability_upper_bound();
    let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 25);
    let mut sim = RoutingSim::new(net, cfg, 3).expect("valid config");
    let out = sim.run(200);
    // Routed connectivity stays below raw reachability even on a static
    // network (bounded history expires claims; fresher agents overwrite
    // mid-chain entries), but it should capture most of it.
    let late = out.mean_connectivity(150..200).unwrap();
    assert!(
        late > 0.6 * upper,
        "static-network connectivity {late:.3} far below reachability {upper:.3}"
    );
}

#[test]
fn gateways_are_connected_from_step_one() {
    let net = builder().build(17).expect("network builds");
    let gw_fraction = net.gateways().len() as f64 / net.node_count() as f64;
    let cfg = RoutingConfig::new(RoutingPolicy::Random, 5);
    let mut sim = RoutingSim::new(net, cfg, 1).expect("valid config");
    let out = sim.run(10);
    for &v in out.connectivity.values() {
        assert!(v >= gw_fraction - 1e-12);
    }
}

#[test]
fn mobility_makes_connectivity_fluctuate() {
    let net = builder().build(19).expect("network builds");
    let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 25);
    let mut sim = RoutingSim::new(net, cfg, 5).expect("valid config");
    let out = sim.run(150);
    let window = &out.connectivity.values()[100..150];
    let distinct: std::collections::BTreeSet<u64> =
        window.iter().map(|v| (v * 1e6) as u64).collect();
    assert!(distinct.len() > 5, "connectivity suspiciously constant: {window:?}");
}

#[test]
fn installed_tables_stay_consistent_with_network_ids() {
    let net = builder().build(23).expect("network builds");
    let n = net.node_count();
    let gws: std::collections::HashSet<_> = net.gateways().iter().copied().collect();
    let cfg = RoutingConfig::new(RoutingPolicy::OldestNode, 20).history_size(8);
    let mut sim = RoutingSim::new(net, cfg, 9).expect("valid config");
    let _ = sim.run(60);
    for i in 0..n {
        let node = agentnet::graph::NodeId::new(i);
        for e in sim.table(node).entries() {
            assert!(gws.contains(&e.gateway), "entry points at non-gateway");
            assert!(e.next_hop.index() < n);
            assert!(e.hops >= 1 && e.hops <= 8, "hops {} outside history bound", e.hops);
        }
    }
}
