//! Integration tests spanning graph → engine → core for the mapping
//! study: the full pipeline a user of the facade crate would run.

use agentnet::core::mapping::{MappingConfig, MappingSim};
use agentnet::core::policy::{MappingPolicy, TieBreak};
use agentnet::engine::replicate::run_replicates;
use agentnet::engine::rng::SeedSequence;
use agentnet::engine::sim::{Step, TimeStepSim};
use agentnet::graph::connectivity::is_strongly_connected;
use agentnet::graph::generators::GeometricConfig;
use agentnet::graph::DiGraph;

fn test_graph() -> DiGraph {
    GeometricConfig::new(60, 420).generate(9).expect("test graph generates").graph
}

#[test]
fn generated_topology_is_mappable() {
    let g = test_graph();
    assert!(is_strongly_connected(&g), "mapping requires strong connectivity");
    assert!(g.nodes().all(|v| g.out_degree(v) > 0));
}

#[test]
fn full_pipeline_replicated_mapping_is_deterministic() {
    let g = test_graph();
    let job = |_: usize, seeds: SeedSequence| {
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 4).stigmergic(true);
        let mut sim = MappingSim::new(g.clone(), cfg, seeds.seed()).expect("valid config");
        sim.run(200_000).finishing_time.as_u64()
    };
    let a = run_replicates(6, SeedSequence::new(77), job);
    let b = run_replicates(6, SeedSequence::new(77), job);
    assert_eq!(a, b, "replicated pipeline must be bit-deterministic");
    // Replicates must actually differ from each other (distinct streams).
    assert!(a.windows(2).any(|w| w[0] != w[1]), "all replicates identical: {a:?}");
}

#[test]
fn cooperation_speeds_up_mapping() {
    let g = test_graph();
    let finish = |pop: usize| {
        let samples = run_replicates(6, SeedSequence::new(3), |_, seeds| {
            let cfg = MappingConfig::new(MappingPolicy::Conscientious, pop);
            let mut sim = MappingSim::new(g.clone(), cfg, seeds.seed()).expect("valid config");
            let out = sim.run(500_000);
            assert!(out.finished);
            out.finishing_time.as_f64()
        });
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    let solo = finish(1);
    let team = finish(8);
    assert!(team < solo, "8 cooperating agents ({team:.0}) should beat one agent ({solo:.0})");
}

#[test]
fn all_agents_converge_to_identical_complete_maps() {
    let g = test_graph();
    let cfg = MappingConfig::new(MappingPolicy::SuperConscientious, 5);
    let mut sim = MappingSim::new(g.clone(), cfg, 11).expect("valid config");
    let out = sim.run(500_000);
    assert!(out.finished);
    assert_eq!(sim.min_knowledge(), 1.0);
    assert_eq!(sim.mean_knowledge(), 1.0);
}

#[test]
fn knowledge_series_never_decreases_and_ends_at_one() {
    let g = test_graph();
    for stig in [false, true] {
        let cfg = MappingConfig::new(MappingPolicy::Random, 3).stigmergic(stig);
        let mut sim = MappingSim::new(g.clone(), cfg, 5).expect("valid config");
        let out = sim.run(500_000);
        assert!(out.finished);
        let v = out.knowledge.values();
        assert!(v.windows(2).all(|w| w[1] >= w[0] - 1e-12), "knowledge regressed");
        assert!((v.last().unwrap() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn tie_break_variants_produce_different_but_valid_runs() {
    let g = test_graph();
    let run = |tie: TieBreak| {
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 4).tie_break(tie);
        let mut sim = MappingSim::new(g.clone(), cfg, 13).expect("valid config");
        let out = sim.run(500_000);
        assert!(out.finished, "{tie} run unfinished");
        out.finishing_time.as_u64()
    };
    let hashed = run(TieBreak::Hashed);
    let random = run(TieBreak::Random);
    let lowest = run(TieBreak::LowestId);
    // All three complete; at least two differ (they explore differently).
    assert!(hashed != random || random != lowest);
}

#[test]
fn stepwise_and_run_apis_agree() {
    let g = test_graph();
    let cfg = MappingConfig::new(MappingPolicy::Conscientious, 2);
    let mut a = MappingSim::new(g.clone(), cfg.clone(), 21).expect("valid config");
    let out = a.run(500_000);

    let mut b = MappingSim::new(g, cfg, 21).expect("valid config");
    let mut steps = 0u64;
    while !b.is_done() {
        b.step(Step::new(steps));
        steps += 1;
        assert!(steps < 500_000, "manual stepping never finished");
    }
    assert_eq!(out.finishing_time.as_u64(), steps);
    assert_eq!(out.knowledge, b.knowledge_series().clone());
}
