//! Marker attributes consumed by `agentlint` (`crates/lint`).
//!
//! The attributes expand to the unmodified item — they exist only so the
//! static-analysis pass can find the functions they mark by token
//! inspection. Keeping them as real proc-macro attributes (rather than
//! `#[cfg_attr]` tricks or doc conventions) means a typo'd marker is a
//! compile error instead of a silently unlinted kernel.
//!
//! Crates that use the markers depend on this package under the rename
//! `agentnet = { package = "agentnet-macros", ... }` so call sites read
//! as the workspace-wide `#[agentnet::hot_path]`.

use proc_macro::TokenStream;

/// Marks a function as a steady-state hot path.
///
/// Functions carrying `#[agentnet::hot_path]` are the kernels the
/// counting-allocator integration test exercises: they must not allocate
/// once warmed. The `no-alloc-in-hot-path` lint rule flags allocating
/// calls (`Vec::new`, `vec!`, `Box::new`, `collect`, `to_vec`, `clone`,
/// ...) inside any marked function. The attribute itself is a no-op
/// passthrough.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
