//! Property-based tests for the wireless substrate.

use agentnet_graph::geometry::{Point2, Rect};
use agentnet_radio::mobility::Motion;
use agentnet_radio::{BatteryModel, BatteryState, NetworkBuilder, SpatialGrid};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

proptest! {
    #[test]
    fn grid_candidates_are_a_superset_of_the_in_range_set(
        width in 10.0f64..200.0,
        height in 10.0f64..200.0,
        cell in 1.0f64..50.0,
        radius in 0.0f64..80.0,
        points in proptest::collection::vec((0.0f64..1.5, 0.0f64..1.5), 0..60),
        center in (-0.5f64..1.5, -0.5f64..1.5),
    ) {
        let arena = Rect::new(width, height);
        // Scale the unit-ish samples onto (and beyond) the arena; a
        // factor above 1 or below 0 lands outside it.
        let points: Vec<Point2> = points
            .iter()
            .map(|&(fx, fy)| Point2::new((fx - 0.25) * width, (fy - 0.25) * height))
            .collect();
        let center = Point2::new((center.0) * width, (center.1) * height);

        let grid = SpatialGrid::build(arena, cell, &points).expect("finite geometry");
        let candidates: BTreeSet<usize> = grid.candidates_within(center, radius).collect();
        let in_range: BTreeSet<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| center.distance(**p) <= radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(
            in_range.is_subset(&candidates),
            "grid missed in-range points {:?} (candidates {:?}, center {center}, r {radius})",
            in_range.difference(&candidates).collect::<Vec<_>>(),
            candidates,
        );
    }

    #[test]
    fn battery_charge_is_monotone_nonincreasing_and_floored(
        per_step in 0.0f64..0.2,
        floor in 0.0f64..0.9,
        steps in 1usize..500,
    ) {
        let mut b = BatteryState::new(BatteryModel::Linear { per_step, floor });
        let mut last = b.charge();
        for _ in 0..steps {
            b.step();
            prop_assert!(b.charge() <= last + 1e-12);
            prop_assert!(b.charge() >= floor - 1e-12);
            last = b.charge();
        }
    }

    #[test]
    fn exponential_battery_never_exceeds_linear_floor_rules(
        rate in 0.0f64..0.5,
        floor in 0.0f64..0.9,
        steps in 1usize..200,
    ) {
        let mut b = BatteryState::new(BatteryModel::Exponential { rate, floor });
        for _ in 0..steps {
            b.step();
        }
        prop_assert!(b.charge() <= 1.0 && b.charge() >= floor - 1e-12);
        prop_assert!(b.range_factor() <= 1.0);
    }

    #[test]
    fn random_velocity_motion_stays_in_arena(
        seed in 0u64..500,
        speed_lo in 0.0f64..5.0,
        speed_hi_delta in 0.0f64..10.0,
        width in 10.0f64..500.0,
        height in 10.0f64..500.0,
        steps in 1usize..400,
    ) {
        let arena = Rect::new(width, height);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut motion =
            Motion::sample_random_velocity((speed_lo, speed_lo + speed_hi_delta), &mut rng);
        let mut p = Point2::new(width / 2.0, height / 2.0);
        for _ in 0..steps {
            p = motion.advance(p, arena, &mut rng);
            prop_assert!(arena.contains(p), "escaped to {p}");
        }
    }

    #[test]
    fn waypoint_motion_stays_in_arena_and_progresses(
        seed in 0u64..500,
        speed in 0.5f64..20.0,
        steps in 1usize..300,
    ) {
        let arena = Rect::square(200.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut motion = Motion::sample_random_waypoint((speed, speed), 2, arena, &mut rng);
        let mut p = Point2::new(100.0, 100.0);
        for _ in 0..steps {
            let next = motion.advance(p, arena, &mut rng);
            prop_assert!(arena.contains(next));
            // A single hop never exceeds the sampled speed.
            prop_assert!(p.distance(next) <= speed + 1e-9);
            p = next;
        }
    }

    #[test]
    fn builder_produces_consistent_networks(
        seed in 0u64..64,
        nodes in 10usize..60,
        gateways in 0usize..5,
    ) {
        let gateways = gateways.min(nodes / 2);
        let net = NetworkBuilder::new(nodes)
            .gateways(gateways)
            .min_initial_reachability(0.0)
            .build(seed)
            .unwrap();
        prop_assert_eq!(net.node_count(), nodes);
        prop_assert_eq!(net.gateways().len(), gateways);
        // Node ids are dense and ordered.
        for (i, node) in net.nodes().iter().enumerate() {
            prop_assert_eq!(node.id.index(), i);
            prop_assert!(node.nominal_range > 0.0);
            prop_assert!(net.arena().contains(node.position));
        }
        // Links agree with the coverage predicate.
        for node in net.nodes() {
            for &to in net.links().out_neighbors(node.id) {
                prop_assert!(node.covers(net.node(to).position));
            }
        }
    }

    #[test]
    fn advancing_preserves_node_count_and_arena(seed in 0u64..32, steps in 1usize..30) {
        let mut net = NetworkBuilder::new(30)
            .gateways(2)
            .min_initial_reachability(0.0)
            .build(seed)
            .unwrap();
        let n = net.node_count();
        for _ in 0..steps {
            net.advance();
            prop_assert_eq!(net.node_count(), n);
            for node in net.nodes() {
                prop_assert!(net.arena().contains(node.position));
                prop_assert!(node.battery.charge() <= 1.0);
            }
        }
    }

    #[test]
    fn sharded_step_is_byte_identical_to_sequential(
        seed in 0u64..48,
        nodes in 2usize..80,
        shards_raw in 0usize..16,
        mobile in 0.0f64..1.0,
        steps in 1usize..20,
    ) {
        // Shard counts cover 1, mid-range, and far above the node count.
        let shards = match shards_raw {
            0 => 1,
            15 => 200,
            s => s + 1,
        };
        let build = |s: usize| {
            NetworkBuilder::new(nodes)
                .gateways((nodes / 10).min(3))
                .mobile_fraction(mobile)
                .min_initial_reachability(0.0)
                .advance_shards(s)
                .build(seed)
                .unwrap()
        };
        let mut sequential = build(1);
        let mut sharded = build(shards);
        for _ in 0..steps {
            sequential.advance();
            sharded.advance();
            prop_assert_eq!(sharded.links(), sequential.links());
            prop_assert_eq!(sharded.topology_version(), sequential.topology_version());
            prop_assert_eq!(sharded.stats(), sequential.stats());
            prop_assert_eq!(sharded.grid_cells(), sequential.grid_cells());
        }
        prop_assert_eq!(sharded.nodes(), sequential.nodes());
    }

    /// Grid-level shard invariance: the sharded rebuild's CSR arrays are
    /// byte-identical to the sequential counting sort at every shard
    /// count, over random geometry including out-of-arena strays.
    #[test]
    fn grid_rebuild_is_shard_invariant(
        width in 10.0f64..300.0,
        height in 10.0f64..300.0,
        cell in 1.0f64..40.0,
        shards in 1usize..12,
        points in proptest::collection::vec((-0.2f64..1.2, -0.2f64..1.2), 0..120),
    ) {
        let arena = Rect::new(width, height);
        let points: Vec<Point2> = points
            .iter()
            .map(|&(fx, fy)| Point2::new(fx * width, fy * height))
            .collect();
        let sequential = SpatialGrid::build(arena, cell, &points).expect("finite geometry");
        let mut sharded = SpatialGrid::build(arena, cell, &[]).expect("finite geometry");
        sharded.rebuild_sharded(arena, cell, &points, shards).expect("finite geometry");
        prop_assert_eq!(sharded.flat_cells(), sequential.flat_cells());
    }

    /// Grid-level incremental == full: random sparse moves spliced into
    /// the grid yield exactly the CSR arrays a from-scratch rebuild
    /// over the moved points produces.
    #[test]
    fn grid_incremental_update_matches_full_rebuild(
        width in 20.0f64..300.0,
        cell in 2.0f64..40.0,
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..100),
        moves in proptest::collection::vec((0usize..100, -0.4f64..0.4, -0.4f64..0.4), 0..20),
    ) {
        let arena = Rect::square(width);
        let mut points: Vec<Point2> = points
            .iter()
            .map(|&(fx, fy)| Point2::new(fx * width, fy * width))
            .collect();
        let mut grid = SpatialGrid::build(arena, cell, &points).expect("finite geometry");
        let mut moved = Vec::new();
        for &(i, dx, dy) in &moves {
            if i < points.len() {
                points[i] = Point2::new(points[i].x + dx * width, points[i].y + dy * width);
                moved.push(i);
            }
        }
        prop_assert!(grid.incremental_update(arena, cell, &points, &moved));
        let full = SpatialGrid::build(arena, cell, &points).expect("finite geometry");
        prop_assert_eq!(grid.flat_cells(), full.flat_cells());
    }

    /// Network-level differential: with incremental grid maintenance on
    /// vs off (and any shard count), grid contents, links and
    /// `topology_version` stay byte-identical every step; the only stat
    /// allowed to differ is the `grid_incremental_updates` counter
    /// itself.
    #[test]
    fn incremental_grid_toggle_is_byte_identical(
        seed in 0u64..48,
        nodes in 2usize..80,
        shards_raw in 0usize..4,
        mobile in 0.0f64..0.2,
        steps in 1usize..20,
    ) {
        let shards = shards_raw + 1;
        let build = |incremental: bool| {
            NetworkBuilder::new(nodes)
                .gateways((nodes / 10).min(3))
                .mobile_fraction(mobile)
                // Mains power everywhere keeps the max range constant,
                // which is the regime where the incremental path can
                // actually engage (a range drift forces full rebuilds).
                .mobile_battery(BatteryModel::Mains)
                .min_initial_reachability(0.0)
                .advance_shards(shards)
                .grid_incremental(incremental)
                .build(seed)
                .unwrap()
        };
        let mut with_inc = build(true);
        let mut without = build(false);
        for _ in 0..steps {
            with_inc.advance();
            without.advance();
            prop_assert_eq!(with_inc.grid_cells(), without.grid_cells());
            prop_assert_eq!(with_inc.links(), without.links());
            prop_assert_eq!(with_inc.topology_version(), without.topology_version());
            let mut a = with_inc.stats();
            let b = without.stats();
            prop_assert_eq!(b.grid_incremental_updates, 0);
            a.grid_incremental_updates = 0;
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(with_inc.nodes(), without.nodes());
    }

    #[test]
    fn stationary_nodes_never_move(seed in 0u64..32) {
        let mut net = NetworkBuilder::new(30)
            .gateways(2)
            .mobile_fraction(0.3)
            .min_initial_reachability(0.0)
            .build(seed)
            .unwrap();
        let before: Vec<_> = net
            .nodes()
            .iter()
            .filter(|n| !n.kind.is_mobile())
            .map(|n| (n.id, n.position))
            .collect();
        for _ in 0..10 {
            net.advance();
        }
        for (id, pos) in before {
            prop_assert_eq!(net.node(id).position, pos);
        }
    }
}
