//! Steady-state allocation accounting for [`WirelessNetwork::advance`].
//!
//! The acceptance criterion of the allocation-free hot path: on an
//! all-stationary, mains-powered network, `advance()` must not touch
//! the heap once its caches are warm — no grid rebuild, no link
//! recomputation, no scratch growth. A counting global allocator
//! (allowed here: the lib crate forbids unsafe, integration tests are
//! separate crates) measures exactly that.
//!
//! [`WirelessNetwork::advance`]: agentnet_radio::WirelessNetwork::advance

use agentnet_radio::NetworkBuilder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_advance_performs_zero_heap_allocations() {
    // The paper routing network with nobody moving and mains power
    // everywhere: after one settling advance the topology can never
    // change again.
    let mut net = NetworkBuilder::paper_routing()
        .mobile_fraction(0.0)
        .build(42)
        .expect("paper routing topology must build");

    // Warm the caches: the first advance builds the spatial grid, the
    // snapshots and the double-buffered link graphs.
    net.advance();
    let version = net.topology_version();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        net.advance();
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(
        allocations, 0,
        "steady-state advance must be allocation-free, saw {allocations} allocations"
    );
    assert_eq!(net.topology_version(), version, "stationary topology must not change");
}

#[test]
fn mobile_advance_still_recomputes_links() {
    // Control for the test above: with mobile nodes the fast path must
    // NOT be taken, so the topology keeps evolving.
    let mut net =
        NetworkBuilder::paper_routing().build(42).expect("paper routing topology must build");
    net.advance();
    let version = net.topology_version();
    for _ in 0..20 {
        net.advance();
    }
    assert!(net.topology_version() > version, "mobile topology must keep changing");
}
