//! Seeded construction of wireless networks.

use crate::battery::{BatteryModel, BatteryState};
use crate::mobility::{MobilityKind, Motion};
use crate::network::WirelessNetwork;
use crate::node::{NodeKind, WirelessNode};
use agentnet_graph::geometry::{Point2, Rect};
use agentnet_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::error::Error;
use std::fmt;

/// Errors from [`NetworkBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A builder parameter was out of range.
    InvalidParameter {
        /// Description of the problem.
        reason: String,
    },
    /// No placement met the initial-reachability constraint within the
    /// retry budget.
    GenerationFailed {
        /// Description of the unsatisfied constraint.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            BuildError::GenerationFailed { reason } => {
                write!(f, "network generation failed: {reason}")
            }
        }
    }
}

impl Error for BuildError {}

/// Builder for a seeded [`WirelessNetwork`].
///
/// Defaults reproduce the flavour of the paper's routing environment:
/// 1 km² arena, heterogeneous radio ranges (directed links), half the
/// non-gateway nodes mobile with random velocities, mobile nodes on
/// decaying batteries, gateways stationary with a range boost ("high ...
/// connectivity capability").
///
/// ```
/// use agentnet_radio::NetworkBuilder;
/// let net = NetworkBuilder::new(40).gateways(2).build(1).unwrap();
/// assert_eq!(net.node_count(), 40);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkBuilder {
    nodes: usize,
    gateways: usize,
    mobile_fraction: f64,
    arena: Rect,
    range_heterogeneity: f64,
    target_edges: Option<usize>,
    speed_range: (f64, f64),
    mobility: MobilityKind,
    waypoint_pause: u32,
    mobile_battery: BatteryModel,
    gateway_range_boost: f64,
    min_initial_reachability: f64,
    max_retries: usize,
    base_range: Option<f64>,
    advance_shards: usize,
    grid_incremental: bool,
}

impl NetworkBuilder {
    /// Creates a builder for a network of `nodes` nodes with the defaults
    /// described on the type.
    pub fn new(nodes: usize) -> Self {
        NetworkBuilder {
            nodes,
            gateways: 0,
            mobile_fraction: 0.5,
            arena: Rect::square(1000.0),
            range_heterogeneity: 0.25,
            target_edges: None,
            speed_range: (2.0, 8.0),
            mobility: MobilityKind::RandomVelocity,
            waypoint_pause: 5,
            mobile_battery: BatteryModel::paper_mobile(),
            gateway_range_boost: 1.5,
            min_initial_reachability: 0.9,
            max_retries: 64,
            base_range: None,
            advance_shards: 1,
            grid_incremental: true,
        }
    }

    /// The paper's routing network: 250 nodes, 12 gateways, half mobile.
    pub fn paper_routing() -> Self {
        NetworkBuilder::new(250).gateways(12).target_edges(2000)
    }

    /// A scaling preset of `nodes` nodes at the paper's node density
    /// (250 per km²) and mean degree (~8): arena side grows with
    /// `sqrt(nodes)`, the base radio range is pinned instead of
    /// calibrated (the `O(n²)` edge-count bisection is intractable at
    /// 100k nodes), one gateway per 25 nodes, and no initial
    /// reachability constraint (a single placement, no retries).
    pub fn scaled_preset(nodes: usize) -> Self {
        let side = 1000.0 * (nodes as f64 / 250.0).sqrt();
        // 2.5e-4 nodes/m² * π * 101² m² ≈ 8 expected in-range peers —
        // the same mean degree target_edges defaults to.
        NetworkBuilder::new(nodes)
            .gateways((nodes / 25).max(1))
            .arena(Rect::square(side))
            .base_range(101.0)
            .min_initial_reachability(0.0)
    }

    /// [`Self::scaled_preset`] at 1 000 nodes.
    pub fn preset_1k() -> Self {
        NetworkBuilder::scaled_preset(1_000)
    }

    /// [`Self::scaled_preset`] at 10 000 nodes.
    pub fn preset_10k() -> Self {
        NetworkBuilder::scaled_preset(10_000)
    }

    /// [`Self::scaled_preset`] at 100 000 nodes.
    pub fn preset_100k() -> Self {
        NetworkBuilder::scaled_preset(100_000)
    }

    /// [`Self::scaled_preset`] at 1 000 000 nodes — the paper-density
    /// million-node arena (~63.2 km side, ~394k grid cells at the
    /// pinned 101 m range, well under the grid's clamp ceiling). Build
    /// and stepping are linear-memory; pair with
    /// [`Self::advance_shards`] for multi-core stepping.
    pub fn preset_1m() -> Self {
        NetworkBuilder::scaled_preset(1_000_000)
    }

    /// Number of gateway nodes.
    pub fn gateways(mut self, gateways: usize) -> Self {
        self.gateways = gateways;
        self
    }

    /// Fraction of non-gateway nodes that move (paper: 0.5).
    pub fn mobile_fraction(mut self, fraction: f64) -> Self {
        self.mobile_fraction = fraction;
        self
    }

    /// Simulation arena.
    pub fn arena(mut self, arena: Rect) -> Self {
        self.arena = arena;
        self
    }

    /// Radio-range heterogeneity `h` (per-node nominal range is
    /// `base * U[1-h, 1+h]`); `0` yields symmetric links.
    pub fn range_heterogeneity(mut self, h: f64) -> Self {
        self.range_heterogeneity = h;
        self
    }

    /// Calibrates the base radio range so the *initial* topology has about
    /// this many directed edges. Default: `8 * nodes`.
    pub fn target_edges(mut self, edges: usize) -> Self {
        self.target_edges = Some(edges);
        self
    }

    /// Mobile node speed range in metres per step (paper: random
    /// velocities).
    pub fn speed_range(mut self, min: f64, max: f64) -> Self {
        self.speed_range = (min, max);
        self
    }

    /// Mobility model for mobile nodes.
    pub fn mobility(mut self, kind: MobilityKind) -> Self {
        self.mobility = kind;
        self
    }

    /// Battery model applied to mobile nodes (stationary nodes and
    /// gateways are mains-powered).
    pub fn mobile_battery(mut self, model: BatteryModel) -> Self {
        self.mobile_battery = model;
        self
    }

    /// Range multiplier for gateways (their "high connectivity
    /// capability").
    pub fn gateway_range_boost(mut self, boost: f64) -> Self {
        self.gateway_range_boost = boost;
        self
    }

    /// Minimum fraction of nodes that must be able to reach a gateway in
    /// the initial topology; placements failing this are regenerated.
    /// Ignored when there are no gateways.
    pub fn min_initial_reachability(mut self, fraction: f64) -> Self {
        self.min_initial_reachability = fraction;
        self
    }

    /// Pins the base radio range in metres instead of calibrating it
    /// against [`Self::target_edges`] — the only tractable option for
    /// the large scaling presets, where the calibration's `O(n²)`
    /// pairwise edge count dominates construction.
    pub fn base_range(mut self, metres: f64) -> Self {
        self.base_range = Some(metres);
        self
    }

    /// Number of contiguous column shards the built network steps in
    /// parallel per [`WirelessNetwork::advance`] (default 1 =
    /// sequential). Results are bitwise identical for every value; see
    /// [`WirelessNetwork::set_advance_shards`].
    pub fn advance_shards(mut self, shards: usize) -> Self {
        self.advance_shards = shards;
        self
    }

    /// Whether the built network may refresh its spatial grid
    /// incrementally when few nodes move per step (default `true`).
    /// Grid contents and links are byte-identical either way; see
    /// [`WirelessNetwork::set_grid_incremental`]. Disable to bench the
    /// from-scratch re-index in isolation.
    pub fn grid_incremental(mut self, enabled: bool) -> Self {
        self.grid_incremental = enabled;
        self
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidParameter`] for inconsistent parameters,
    /// [`BuildError::GenerationFailed`] when no placement reaches
    /// [`Self::min_initial_reachability`] within the retry budget.
    pub fn build(&self, seed: u64) -> Result<WirelessNetwork, BuildError> {
        self.validate()?;
        let target_edges = self.target_edges.unwrap_or(self.nodes * 8);
        for attempt in 0..self.max_retries {
            let attempt_seed = seed ^ (attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
            let mut rng = StdRng::seed_from_u64(attempt_seed);
            let net = self.build_once(target_edges, attempt_seed, &mut rng);
            if self.gateways == 0
                || self.min_initial_reachability <= 0.0
                || net.reachability_upper_bound() >= self.min_initial_reachability
            {
                return Ok(net);
            }
        }
        Err(BuildError::GenerationFailed {
            reason: format!(
                "no placement of {} nodes reached initial gateway reachability {:.2} in {} attempts",
                self.nodes, self.min_initial_reachability, self.max_retries
            ),
        })
    }

    fn validate(&self) -> Result<(), BuildError> {
        let fail = |reason: String| Err(BuildError::InvalidParameter { reason });
        if self.nodes == 0 {
            return fail("network needs at least one node".into());
        }
        if self.gateways > self.nodes {
            return fail(format!("{} gateways exceed {} nodes", self.gateways, self.nodes));
        }
        if !(0.0..=1.0).contains(&self.mobile_fraction) {
            return fail(format!("mobile fraction {} outside [0, 1]", self.mobile_fraction));
        }
        if !(0.0..1.0).contains(&self.range_heterogeneity) {
            return fail(format!(
                "range heterogeneity {} outside [0, 1)",
                self.range_heterogeneity
            ));
        }
        if self.speed_range.0 < 0.0 || self.speed_range.1 < self.speed_range.0 {
            return fail(format!("bad speed range {:?}", self.speed_range));
        }
        if self.gateway_range_boost <= 0.0 {
            return fail("gateway range boost must be positive".into());
        }
        let max_edges = self.nodes.saturating_mul(self.nodes.saturating_sub(1));
        if let Some(t) = self.target_edges {
            if self.nodes > 1 && (t == 0 || t > max_edges) {
                return fail(format!("target edges {t} outside (0, {max_edges}]"));
            }
        }
        if let Some(r) = self.base_range {
            if !(r.is_finite() && r > 0.0) {
                return fail(format!("base range {r} must be positive and finite"));
            }
        }
        if self.advance_shards == 0 {
            return fail("advance shards must be at least 1".into());
        }
        // Rect's constructors validate, but its dimension fields are
        // public — reject a post-hoc-degenerate arena here rather than
        // panicking deep inside the grid build.
        let arena_finite = self.arena.width.is_finite()
            && self.arena.height.is_finite()
            && self.arena.min_x().is_finite()
            && self.arena.min_y().is_finite();
        if !arena_finite {
            return fail(format!(
                "arena {}x{} must have finite dimensions and corners",
                self.arena.width, self.arena.height
            ));
        }
        Ok(())
    }

    fn build_once(
        &self,
        target_edges: usize,
        mobility_seed: u64,
        rng: &mut StdRng,
    ) -> WirelessNetwork {
        let n = self.nodes;
        let positions: Vec<Point2> = (0..n)
            .map(|_| {
                Point2::new(
                    rng.random_range(self.arena.min_x()..self.arena.max_x()),
                    rng.random_range(self.arena.min_y()..self.arena.max_y()),
                )
            })
            .collect();
        let h = self.range_heterogeneity;
        let factors: Vec<f64> = (0..n)
            .map(|_| if h == 0.0 { 1.0 } else { rng.random_range(1.0 - h..=1.0 + h) })
            .collect();

        // Assign roles: a random subset are gateways; among the rest, a
        // random `mobile_fraction` are mobile.
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        let gateway_set: std::collections::HashSet<usize> =
            ids.iter().copied().take(self.gateways).collect();
        let rest: Vec<usize> = ids[self.gateways..].to_vec();
        let mobile_count = ((n - self.gateways) as f64 * self.mobile_fraction).round() as usize;
        let mobile_set: std::collections::HashSet<usize> =
            rest.into_iter().take(mobile_count).collect();

        let boost =
            |i: usize| if gateway_set.contains(&i) { self.gateway_range_boost } else { 1.0 };
        let base = if let Some(pinned) = self.base_range {
            pinned
        } else if n > 1 {
            calibrate_base_range(&positions, &factors, target_edges, self.arena, &boost)
        } else {
            1.0
        };

        let nodes: Vec<WirelessNode> = (0..n)
            .map(|i| {
                let kind = if gateway_set.contains(&i) {
                    NodeKind::Gateway
                } else if mobile_set.contains(&i) {
                    NodeKind::Mobile
                } else {
                    NodeKind::Stationary
                };
                let battery = if kind.is_mobile() {
                    BatteryState::new(self.mobile_battery)
                } else {
                    BatteryState::mains()
                };
                let motion = if kind.is_mobile() {
                    match self.mobility {
                        MobilityKind::RandomVelocity => {
                            Motion::sample_random_velocity(self.speed_range, rng)
                        }
                        MobilityKind::RandomWaypoint => Motion::sample_random_waypoint(
                            self.speed_range,
                            self.waypoint_pause,
                            self.arena,
                            rng,
                        ),
                        MobilityKind::GaussMarkov => Motion::sample_gauss_markov(
                            self.speed_range,
                            0.85,
                            0.3 * (self.speed_range.0 + self.speed_range.1),
                            rng,
                        ),
                    }
                } else {
                    Motion::Stationary
                };
                WirelessNode {
                    id: NodeId::new(i),
                    position: positions[i],
                    nominal_range: base * factors[i] * boost(i),
                    kind,
                    battery,
                    motion,
                }
            })
            .collect();
        let mut net = WirelessNetwork::from_nodes(self.arena, nodes, mobility_seed);
        net.set_advance_shards(self.advance_shards);
        net.set_grid_incremental(self.grid_incremental);
        net
    }
}

/// Bisects the base range so the induced directed edge count straddles
/// `target`.
fn calibrate_base_range(
    positions: &[Point2],
    factors: &[f64],
    target: usize,
    arena: Rect,
    boost: &dyn Fn(usize) -> f64,
) -> f64 {
    let mut lo = 0.0f64;
    let mut hi = arena.diagonal();
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        let mut edges = 0usize;
        for (i, &pi) in positions.iter().enumerate() {
            let r = mid * factors[i] * boost(i);
            let r2 = r * r;
            for (j, &pj) in positions.iter().enumerate() {
                if i != j && pi.distance_sq(pj) <= r2 {
                    edges += 1;
                }
            }
        }
        if edges < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_hits_edge_target_approximately() {
        let net = NetworkBuilder::new(80).gateways(4).target_edges(640).build(3).unwrap();
        let edges = net.links().edge_count();
        assert!((edges as i64 - 640).unsigned_abs() <= 64, "edge count {edges} too far from 640");
    }

    #[test]
    fn build_is_deterministic() {
        let b = NetworkBuilder::new(50).gateways(3);
        let a = b.build(7).unwrap();
        let c = b.build(7).unwrap();
        assert_eq!(a.links(), c.links());
        assert_eq!(a.nodes(), c.nodes());
    }

    #[test]
    fn gateway_and_mobile_counts() {
        let net = NetworkBuilder::new(60).gateways(5).mobile_fraction(0.5).build(11).unwrap();
        let g = net.nodes().iter().filter(|n| n.kind.is_gateway()).count();
        let m = net.nodes().iter().filter(|n| n.kind.is_mobile()).count();
        assert_eq!(g, 5);
        assert_eq!(m, 28); // round(55 * 0.5)
    }

    #[test]
    fn gateways_are_stationary_and_mains() {
        let net = NetworkBuilder::new(40).gateways(4).build(2).unwrap();
        for node in net.nodes().iter().filter(|n| n.kind.is_gateway()) {
            assert!(node.motion.is_stationary());
            assert_eq!(node.battery.charge(), 1.0);
        }
    }

    #[test]
    fn mobile_nodes_have_motion_and_battery() {
        let net = NetworkBuilder::new(40).gateways(2).build(2).unwrap();
        for node in net.nodes().iter().filter(|n| n.kind.is_mobile()) {
            assert!(!node.motion.is_stationary());
            assert_ne!(node.battery.model(), BatteryModel::Mains);
        }
    }

    #[test]
    fn initial_reachability_constraint_holds() {
        let net =
            NetworkBuilder::new(100).gateways(6).min_initial_reachability(0.9).build(5).unwrap();
        assert!(net.reachability_upper_bound() >= 0.9);
    }

    #[test]
    fn zero_heterogeneity_network_is_symmetric_without_gateways() {
        let net =
            NetworkBuilder::new(40).range_heterogeneity(0.0).mobile_fraction(0.0).build(9).unwrap();
        assert!(net.links().is_symmetric());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            NetworkBuilder::new(0).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new(5).gateways(9).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new(5).mobile_fraction(1.5).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new(5).speed_range(5.0, 1.0).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new(5).target_edges(10_000).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn mobile_fraction_rejects_nan_and_edges_of_range() {
        // NaN fails RangeInclusive::contains, so it must be rejected,
        // not silently rounded into a mobile count.
        assert!(matches!(
            NetworkBuilder::new(5).mobile_fraction(f64::NAN).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new(5).mobile_fraction(-0.01).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        // The closed endpoints stay legal.
        let none = NetworkBuilder::new(10).mobile_fraction(0.0).build(1).unwrap();
        assert_eq!(none.nodes().iter().filter(|n| n.kind.is_mobile()).count(), 0);
        let all = NetworkBuilder::new(10).mobile_fraction(1.0).build(1).unwrap();
        assert_eq!(all.nodes().iter().filter(|n| n.kind.is_mobile()).count(), 10);
    }

    #[test]
    fn base_range_and_shards_are_validated() {
        assert!(matches!(
            NetworkBuilder::new(5).base_range(0.0).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new(5).base_range(f64::INFINITY).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        assert!(matches!(
            NetworkBuilder::new(5).advance_shards(0).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn pinned_base_range_skips_calibration_but_keeps_shape() {
        let net = NetworkBuilder::new(40)
            .gateways(2)
            .range_heterogeneity(0.0)
            .base_range(120.0)
            .min_initial_reachability(0.0)
            .build(4)
            .unwrap();
        for node in net.nodes().iter().filter(|n| !n.kind.is_gateway()) {
            assert_eq!(node.nominal_range, 120.0);
        }
    }

    #[test]
    fn scaled_preset_keeps_paper_density_and_degree() {
        // The 250-node preset is exactly the paper's arena; the mean
        // out-degree should land near the default target of 8.
        let b = NetworkBuilder::scaled_preset(250);
        let net = b.build(3).unwrap();
        assert_eq!(net.node_count(), 250);
        assert_eq!(net.gateways().len(), 10);
        assert!((net.arena().width - 1000.0).abs() < 1e-9);
        let mean_degree = net.links().edge_count() as f64 / 250.0;
        assert!((4.0..14.0).contains(&mean_degree), "mean degree {mean_degree} implausible");
    }

    #[test]
    fn preset_1k_builds_and_scales_arena() {
        let net = NetworkBuilder::preset_1k().advance_shards(4).build(5).unwrap();
        assert_eq!(net.node_count(), 1_000);
        assert_eq!(net.advance_shards(), 4);
        assert_eq!(net.gateways().len(), 40);
        assert!((net.arena().width - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn paper_routing_shape() {
        let b = NetworkBuilder::paper_routing();
        let net = b.build(1).unwrap();
        assert_eq!(net.node_count(), 250);
        assert_eq!(net.gateways().len(), 12);
        let mobile = net.nodes().iter().filter(|n| n.kind.is_mobile()).count();
        assert_eq!(mobile, 119); // round((250-12) * 0.5)
    }

    #[test]
    fn single_node_network_builds() {
        let net = NetworkBuilder::new(1).build(0).unwrap();
        assert_eq!(net.node_count(), 1);
        assert_eq!(net.links().edge_count(), 0);
    }

    #[test]
    fn scaled_preset_never_yields_zero_gateways() {
        // Regression guard on the `n / 25` gateway rule: integer
        // division truncates every sub-25-node preset to zero, which
        // the `.max(1)` clamp must catch — a gateway-less network would
        // make reachability metrics vacuous.
        for n in [1usize, 2, 5, 24] {
            let net = NetworkBuilder::scaled_preset(n).build(7).unwrap();
            assert_eq!(net.gateways().len(), 1, "{n}-node preset must clamp to one gateway");
        }
        // And the clamp must not distort the rule where it shouldn't.
        assert_eq!(NetworkBuilder::scaled_preset(25).build(7).unwrap().gateways().len(), 1);
        assert_eq!(NetworkBuilder::scaled_preset(50).build(7).unwrap().gateways().len(), 2);
    }

    #[test]
    fn preset_1m_parameters() {
        // Parameter-shape check only; the million-node build itself is
        // exercised by the `#[ignore]`d end-to-end test below.
        let small = NetworkBuilder::scaled_preset(250);
        let big = NetworkBuilder::preset_1m();
        assert_eq!(big, NetworkBuilder::scaled_preset(1_000_000));
        // Same density: arena side grows with sqrt(nodes).
        assert!((big.arena.width - 1000.0 * (1_000_000f64 / 250.0).sqrt()).abs() < 1e-6);
        assert!((big.arena.width / small.arena.width - (4000f64).sqrt()).abs() < 1e-6);
        assert_eq!(big.gateways, 40_000);
        assert_eq!(big.base_range, Some(101.0));
        assert_eq!(big.min_initial_reachability, 0.0);
    }

    #[test]
    fn degenerate_arena_is_rejected() {
        let mut arena = Rect::square(100.0);
        arena.width = f64::NAN;
        assert!(matches!(
            NetworkBuilder::new(5).arena(arena).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
        let mut arena = Rect::square(100.0);
        arena.height = f64::INFINITY;
        assert!(matches!(
            NetworkBuilder::new(5).arena(arena).build(0),
            Err(BuildError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn grid_incremental_knob_reaches_the_network() {
        let on = NetworkBuilder::new(10).build(3).unwrap();
        assert!(on.grid_incremental());
        let off = NetworkBuilder::new(10).grid_incremental(false).build(3).unwrap();
        assert!(!off.grid_incremental());
    }

    /// Full 1M-node end-to-end check: build the preset, step it, and
    /// confirm the grid never had to coarsen (no clamp events). Run
    /// explicitly with `cargo test -p agentnet-radio --release -- --ignored
    /// preset_1m_steps` — minutes of work and gigabytes of columns, so
    /// not part of the default suite.
    #[test]
    #[ignore = "million-node build: run explicitly in release"]
    fn preset_1m_steps_without_clamps() {
        let mut net = NetworkBuilder::preset_1m()
            .advance_shards(std::thread::available_parallelism().map_or(1, |p| p.get()))
            .build(5)
            .unwrap();
        assert_eq!(net.node_count(), 1_000_000);
        for _ in 0..3 {
            net.advance();
        }
        let stats = net.stats();
        assert_eq!(stats.advances, 3);
        assert_eq!(stats.grid_cell_clamps, 0, "1M preset must fit the grid without coarsening");
        assert!(net.links().edge_count() > 0);
    }
}
