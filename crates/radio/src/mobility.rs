//! Node mobility models.
//!
//! The routing study assigns "random velocity to half of the nodes".
//! [`Motion::RandomVelocity`] is that model — a fixed random heading and
//! speed, reflecting off the arena walls. [`Motion::RandomWaypoint`] (the
//! classic MANET benchmark model) is provided as well for extension
//! experiments.

use agentnet_graph::geometry::{Point2, Rect};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Which mobility model mobile nodes use (builder-level choice).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum MobilityKind {
    /// Fixed random heading/speed, bouncing off walls — the paper's model.
    #[default]
    RandomVelocity,
    /// Move to a random waypoint, pause, pick a new one.
    RandomWaypoint,
    /// Temporally correlated velocity (Gauss-Markov): smooth paths whose
    /// memory is tuned by a single parameter.
    GaussMarkov,
}

/// Per-node motion state.
///
/// ```
/// use agentnet_radio::mobility::Motion;
/// use agentnet_graph::geometry::{Point2, Rect};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut motion = Motion::sample_random_velocity((2.0, 2.0), &mut rng);
/// let arena = Rect::square(100.0);
/// let p = motion.advance(Point2::new(50.0, 50.0), arena, &mut rng);
/// assert!(arena.contains(p));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Motion {
    /// The node never moves (stationary nodes and gateways).
    Stationary,
    /// Straight-line motion with wall reflection.
    RandomVelocity {
        /// Displacement per step (metres/step in each axis).
        velocity: Point2,
    },
    /// Random-waypoint motion.
    RandomWaypoint {
        /// Speed in metres per step.
        speed: f64,
        /// Current destination.
        target: Point2,
        /// Steps remaining in the current pause (0 while travelling).
        pause_left: u32,
        /// Pause duration applied on every arrival.
        pause: u32,
    },
    /// Gauss-Markov motion: `v_t = α·v_{t-1} + (1-α)·v̄ + σ·√(1-α²)·w_t`
    /// per axis, with wall reflection. `α → 1` gives straight-line
    /// memory, `α → 0` gives Brownian jitter.
    GaussMarkov {
        /// Current velocity (metres per step, per axis).
        velocity: Point2,
        /// Long-run mean velocity the process regresses to.
        mean_velocity: Point2,
        /// Memory parameter α in `[0, 1]`.
        alpha: f64,
        /// Per-axis noise scale σ (metres per step).
        sigma: f64,
    },
}

impl Motion {
    /// Samples a random-velocity motion with speed drawn uniformly from
    /// `speed_range` and a uniformly random heading.
    pub fn sample_random_velocity(speed_range: (f64, f64), rng: &mut impl RngExt) -> Motion {
        let speed = if speed_range.0 >= speed_range.1 {
            speed_range.0
        } else {
            rng.random_range(speed_range.0..=speed_range.1)
        };
        let angle = rng.random_range(0.0..std::f64::consts::TAU);
        Motion::RandomVelocity { velocity: Point2::new(speed * angle.cos(), speed * angle.sin()) }
    }

    /// Samples a random-waypoint motion within `arena`.
    pub fn sample_random_waypoint(
        speed_range: (f64, f64),
        pause: u32,
        arena: Rect,
        rng: &mut impl RngExt,
    ) -> Motion {
        let speed = if speed_range.0 >= speed_range.1 {
            speed_range.0
        } else {
            rng.random_range(speed_range.0..=speed_range.1)
        };
        let target = Point2::new(
            rng.random_range(arena.min_x()..arena.max_x()),
            rng.random_range(arena.min_y()..arena.max_y()),
        );
        Motion::RandomWaypoint { speed, target, pause_left: 0, pause }
    }

    /// Samples a Gauss-Markov motion: mean velocity drawn like a
    /// random-velocity heading from `speed_range`, with the given memory
    /// `alpha` and noise `sigma`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= alpha <= 1.0` and `sigma >= 0`.
    pub fn sample_gauss_markov(
        speed_range: (f64, f64),
        alpha: f64,
        sigma: f64,
        rng: &mut impl RngExt,
    ) -> Motion {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        assert!(sigma >= 0.0, "sigma must be nonnegative");
        let mean = match Motion::sample_random_velocity(speed_range, rng) {
            Motion::RandomVelocity { velocity } => velocity,
            _ => unreachable!("sample_random_velocity returns RandomVelocity"),
        };
        Motion::GaussMarkov { velocity: mean, mean_velocity: mean, alpha, sigma }
    }

    /// Returns `true` for [`Motion::Stationary`].
    pub fn is_stationary(&self) -> bool {
        matches!(self, Motion::Stationary)
    }

    /// Advances one step of motion from `position`, returning the new
    /// position and updating internal state (heading reflection, waypoint
    /// selection).
    pub fn advance(&mut self, position: Point2, arena: Rect, rng: &mut impl RngExt) -> Point2 {
        match self {
            Motion::Stationary => position,
            Motion::RandomVelocity { velocity } => {
                let mut p = position + *velocity;
                // Reflect off each wall; the velocity component flips so
                // the node keeps a straight path between bounces.
                if p.x < arena.min_x() {
                    p.x = 2.0 * arena.min_x() - p.x;
                    velocity.x = -velocity.x;
                } else if p.x > arena.max_x() {
                    p.x = 2.0 * arena.max_x() - p.x;
                    velocity.x = -velocity.x;
                }
                if p.y < arena.min_y() {
                    p.y = 2.0 * arena.min_y() - p.y;
                    velocity.y = -velocity.y;
                } else if p.y > arena.max_y() {
                    p.y = 2.0 * arena.max_y() - p.y;
                    velocity.y = -velocity.y;
                }
                arena.clamp_point(p)
            }
            Motion::GaussMarkov { velocity, mean_velocity, alpha, sigma } => {
                let a = *alpha;
                let noise = sigma.abs() * (1.0 - a * a).sqrt();
                velocity.x = a * velocity.x + (1.0 - a) * mean_velocity.x + noise * gaussian(rng);
                velocity.y = a * velocity.y + (1.0 - a) * mean_velocity.y + noise * gaussian(rng);
                let mut p = position + *velocity;
                if p.x < arena.min_x() {
                    p.x = 2.0 * arena.min_x() - p.x;
                    velocity.x = -velocity.x;
                    mean_velocity.x = -mean_velocity.x;
                } else if p.x > arena.max_x() {
                    p.x = 2.0 * arena.max_x() - p.x;
                    velocity.x = -velocity.x;
                    mean_velocity.x = -mean_velocity.x;
                }
                if p.y < arena.min_y() {
                    p.y = 2.0 * arena.min_y() - p.y;
                    velocity.y = -velocity.y;
                    mean_velocity.y = -mean_velocity.y;
                } else if p.y > arena.max_y() {
                    p.y = 2.0 * arena.max_y() - p.y;
                    velocity.y = -velocity.y;
                    mean_velocity.y = -mean_velocity.y;
                }
                arena.clamp_point(p)
            }
            Motion::RandomWaypoint { speed, target, pause_left, pause } => {
                if *pause_left > 0 {
                    *pause_left -= 1;
                    return position;
                }
                let to_target = *target - position;
                let dist = to_target.norm();
                if dist <= *speed {
                    // Arrived: start pausing and pick the next waypoint.
                    *pause_left = *pause;
                    let arrived = *target;
                    *target = Point2::new(
                        rng.random_range(arena.min_x()..arena.max_x()),
                        rng.random_range(arena.min_y()..arena.max_y()),
                    );
                    arrived
                } else {
                    // dist > speed >= 0 implies a nonzero vector; stand
                    // still in the degenerate case instead of panicking.
                    to_target.normalized().map_or(position, |dir| position + dir * *speed)
                }
            }
        }
    }
}

/// Approximately standard-normal sample (Irwin-Hall with 12 uniforms),
/// good enough for mobility noise and dependency-free.
fn gaussian(rng: &mut impl RngExt) -> f64 {
    (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn arena() -> Rect {
        Rect::square(100.0)
    }

    #[test]
    fn stationary_never_moves() {
        let mut m = Motion::Stationary;
        let p = Point2::new(5.0, 5.0);
        assert!(m.is_stationary());
        assert_eq!(m.advance(p, arena(), &mut rng()), p);
    }

    #[test]
    fn random_velocity_moves_at_constant_speed() {
        let mut r = rng();
        let mut m = Motion::sample_random_velocity((2.0, 2.0), &mut r);
        let p0 = Point2::new(50.0, 50.0);
        let p1 = m.advance(p0, arena(), &mut r);
        assert!((p0.distance(p1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn random_velocity_bounces_off_walls() {
        let mut m = Motion::RandomVelocity { velocity: Point2::new(-3.0, 0.0) };
        let p = m.advance(Point2::new(1.0, 50.0), arena(), &mut rng());
        assert!((p.x - 2.0).abs() < 1e-9, "reflected x, got {}", p.x);
        match m {
            Motion::RandomVelocity { velocity } => assert_eq!(velocity.x, 3.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn random_velocity_stays_in_arena_long_term() {
        let mut r = rng();
        let mut m = Motion::sample_random_velocity((1.0, 5.0), &mut r);
        let mut p = Point2::new(50.0, 50.0);
        for _ in 0..10_000 {
            p = m.advance(p, arena(), &mut r);
            assert!(arena().contains(p), "escaped arena at {p}");
        }
    }

    #[test]
    fn waypoint_reaches_target_and_repicks() {
        let mut r = rng();
        let mut m = Motion::RandomWaypoint {
            speed: 10.0,
            target: Point2::new(55.0, 50.0),
            pause_left: 0,
            pause: 2,
        };
        let p = m.advance(Point2::new(50.0, 50.0), arena(), &mut r);
        assert_eq!(p, Point2::new(55.0, 50.0));
        match m {
            Motion::RandomWaypoint { pause_left, target, .. } => {
                assert_eq!(pause_left, 2);
                assert_ne!(target, Point2::new(55.0, 50.0));
            }
            _ => unreachable!(),
        }
        // Pausing: no movement for `pause` steps.
        let p2 = m.advance(p, arena(), &mut r);
        assert_eq!(p2, p);
    }

    #[test]
    fn waypoint_moves_toward_target() {
        let mut r = rng();
        let target = Point2::new(90.0, 50.0);
        let mut m = Motion::RandomWaypoint { speed: 4.0, target, pause_left: 0, pause: 0 };
        let p0 = Point2::new(50.0, 50.0);
        let p1 = m.advance(p0, arena(), &mut r);
        assert!(p1.distance(target) < p0.distance(target));
        assert!((p0.distance(p1) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gauss_markov_stays_in_arena_and_has_memory() {
        let mut r = rng();
        let mut m = Motion::sample_gauss_markov((2.0, 4.0), 0.9, 0.5, &mut r);
        let mut p = Point2::new(50.0, 50.0);
        let mut hops = Vec::new();
        for _ in 0..2000 {
            let next = m.advance(p, arena(), &mut r);
            assert!(arena().contains(next), "escaped at {next}");
            hops.push(next - p);
            p = next;
        }
        // With alpha = 0.9 consecutive displacements correlate strongly.
        let mut dot = 0.0;
        let mut norm = 0.0;
        for w in hops.windows(2) {
            dot += w[0].x * w[1].x + w[0].y * w[1].y;
            norm += w[0].x * w[0].x + w[0].y * w[0].y;
        }
        assert!(dot / norm > 0.5, "no temporal correlation: {}", dot / norm);
    }

    #[test]
    fn gauss_markov_alpha_one_is_straight_line_between_bounces() {
        let mut r = rng();
        let mut m = Motion::GaussMarkov {
            velocity: Point2::new(1.0, 0.0),
            mean_velocity: Point2::new(1.0, 0.0),
            alpha: 1.0,
            sigma: 3.0, // noise is multiplied by sqrt(1 - alpha^2) = 0
        };
        let p0 = Point2::new(10.0, 50.0);
        let p1 = m.advance(p0, arena(), &mut r);
        let p2 = m.advance(p1, arena(), &mut r);
        assert!(((p1 - p0).x - (p2 - p1).x).abs() < 1e-12);
        assert!(((p1 - p0).y - (p2 - p1).y).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn gauss_markov_rejects_bad_alpha() {
        let mut r = rng();
        let _ = Motion::sample_gauss_markov((1.0, 2.0), 1.5, 0.1, &mut r);
    }

    #[test]
    fn all_models_stay_inside_a_shifted_arena() {
        let shifted = Rect::anchored(Point2::new(500.0, -200.0), 60.0, 40.0);
        let start = Point2::new(530.0, -180.0);
        let mut r = rng();
        let mut models = [
            Motion::sample_random_velocity((1.0, 5.0), &mut r),
            Motion::sample_random_waypoint((1.0, 5.0), 1, shifted, &mut r),
            Motion::sample_gauss_markov((1.0, 4.0), 0.8, 0.5, &mut r),
        ];
        for m in &mut models {
            let mut p = start;
            for _ in 0..5_000 {
                p = m.advance(p, shifted, &mut r);
                assert!(shifted.contains(p), "{m:?} escaped shifted arena at {p}");
            }
        }
    }

    #[test]
    fn degenerate_speed_range_uses_lower_bound() {
        let mut r = rng();
        match Motion::sample_random_velocity((3.0, 3.0), &mut r) {
            Motion::RandomVelocity { velocity } => {
                assert!((velocity.norm() - 3.0).abs() < 1e-9);
            }
            _ => unreachable!(),
        }
    }
}
