//! Uniform-grid spatial index for neighbour queries.
//!
//! Rebuilding the link digraph each step requires, for every node, the set
//! of nodes inside its radio range. The grid buckets node indices by cell
//! so a range query inspects only nearby cells instead of all `n` nodes,
//! turning the per-step link rebuild from `O(n²)` into roughly
//! `O(n · k)` for `k` nodes per neighbourhood.
//!
//! Cell contents live in flat CSR arrays (`starts` + `entries`), not
//! per-cell `Vec`s: one contiguous allocation, no per-bucket headers, and
//! a layout that a sharded rebuild can assemble deterministically. Within
//! every cell, entries are ascending point indices — the invariant all
//! three construction paths (sequential counting sort, sharded
//! accumulate-and-merge, incremental splice) preserve, which is why they
//! are byte-for-byte interchangeable.

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use agentnet_graph::geometry::{Point2, Rect};
use std::error::Error;
use std::fmt;

/// Errors from [`SpatialGrid`] construction and re-indexing: degenerate
/// geometry is rejected instead of being silently clamped into a grid
/// whose queries would scan everything.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// The requested cell size was zero, negative, or non-finite.
    CellSize {
        /// The rejected value.
        cell_size: f64,
    },
    /// An arena dimension or corner coordinate was non-finite.
    Arena {
        /// The rejected arena's width.
        width: f64,
        /// The rejected arena's height.
        height: f64,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::CellSize { cell_size } => {
                write!(f, "grid cell size {cell_size} must be positive and finite")
            }
            GridError::Arena { width, height } => {
                write!(f, "arena {width}x{height} must have finite dimensions and corners")
            }
        }
    }
}

impl Error for GridError {}

/// Reusable rebuild scratch: per-shard tables plus the incremental-splice
/// double buffers. Warmed on first use, allocation-free afterwards.
#[derive(Clone, Debug, Default)]
struct GridScratch {
    /// Per-shard cell histograms (phase A), reused in place as local
    /// run cursors (phase C) and run boundaries (phase D).
    shard_hist: Vec<Vec<u32>>,
    /// Per-shard locally sorted entries (phase C).
    shard_entries: Vec<Vec<u32>>,
    /// Sequential counting-sort cursor.
    cursor: Vec<u32>,
    /// Incremental splice: output double buffers.
    out_entries: Vec<u32>,
    out_starts: Vec<u32>,
    /// Incremental splice: `(cell, index)` edits, sorted before merging.
    removals: Vec<(u32, u32)>,
    insertions: Vec<(u32, u32)>,
}

/// A uniform grid over an arena, bucketing point indices by cell.
///
/// ```
/// use agentnet_graph::geometry::{Point2, Rect};
/// use agentnet_radio::spatial::SpatialGrid;
///
/// let pts = vec![Point2::new(1.0, 1.0), Point2::new(9.0, 9.0), Point2::new(1.5, 1.0)];
/// let grid = SpatialGrid::build(Rect::square(10.0), 2.0, &pts).unwrap();
/// let mut near: Vec<usize> = grid.candidates_within(pts[0], 1.0).collect();
/// near.sort_unstable();
/// assert!(near.contains(&2));      // the point 0.5 m away
/// assert!(!near.contains(&1));     // the far corner is not a candidate
/// ```
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    arena: Rect,
    /// Effective (possibly coarsened) cell side.
    cell: f64,
    /// Cell side the last rebuild asked for, before any coarsening —
    /// the incremental path's geometry-stability check.
    requested_cell: f64,
    cols: usize,
    rows: usize,
    /// CSR row starts, length `cols * rows + 1`.
    starts: Vec<u32>,
    /// CSR entries: point indices, ascending within each cell.
    entries: Vec<u32>,
    /// Cached cell id per point — what the incremental path diffs
    /// against instead of re-deriving every point's cell.
    cell_of: Vec<u32>,
    /// Rebuilds that had to coarsen the requested cell size to keep the
    /// cell table allocatable — see [`SpatialGrid::clamp_events`].
    clamp_events: u64,
    scratch: GridScratch,
}

impl SpatialGrid {
    /// Hard ceiling on the cell-table size (~4M cells, ~16 MB of CSR
    /// starts). Rebuilds whose extent/cell ratio would exceed it
    /// coarsen the cell size instead of aborting on allocation;
    /// correctness is unaffected because [`Self::candidates_within`]
    /// derives its cell window from the same cell size.
    pub const MAX_CELLS: usize = 1 << 22;

    /// Builds a grid with cells of side `cell_size` containing the given
    /// points.
    ///
    /// # Errors
    ///
    /// [`GridError`] when `cell_size` is not finite and positive or the
    /// arena has non-finite dimensions or corners.
    pub fn build(arena: Rect, cell_size: f64, points: &[Point2]) -> Result<Self, GridError> {
        let mut grid = SpatialGrid {
            arena,
            cell: 1.0,
            requested_cell: 1.0,
            cols: 1,
            rows: 1,
            starts: vec![0, 0],
            entries: Vec::new(),
            cell_of: Vec::new(),
            clamp_events: 0,
            scratch: GridScratch::default(),
        };
        grid.rebuild(arena, cell_size, points)?;
        Ok(grid)
    }

    /// Validates rebuild geometry: the degenerate inputs that previously
    /// clamped silently (or panicked) are rejected with a proper error.
    fn validate(arena: Rect, cell_size: f64) -> Result<(), GridError> {
        if !(cell_size.is_finite() && cell_size > 0.0) {
            return Err(GridError::CellSize { cell_size });
        }
        let finite = arena.width.is_finite()
            && arena.height.is_finite()
            && arena.min_x().is_finite()
            && arena.min_y().is_finite();
        if !finite {
            return Err(GridError::Arena { width: arena.width, height: arena.height });
        }
        Ok(())
    }

    /// Re-indexes the grid in place over possibly new geometry, reusing
    /// all storage — the steady-state path of
    /// [`crate::WirelessNetwork::advance`], which would otherwise
    /// reallocate the index every step. Equivalent to
    /// [`Self::rebuild_sharded`] with one shard.
    ///
    /// Returns `true` when **this** rebuild had to coarsen the cell size
    /// (see [`Self::clamp_events`]) — a per-call flag, so callers
    /// folding it into their own counters cannot double-count or wrap
    /// when several rebuilds happen in one step.
    ///
    /// # Errors
    ///
    /// [`GridError`] on a non-finite/non-positive `cell_size` or a
    /// non-finite arena; the grid is left unchanged.
    #[agentnet::hot_path]
    pub fn rebuild(
        &mut self,
        arena: Rect,
        cell_size: f64,
        points: &[Point2],
    ) -> Result<bool, GridError> {
        self.rebuild_sharded(arena, cell_size, points, 1)
    }

    /// [`Self::rebuild`] with the per-point work fanned out over
    /// `shards` contiguous point-index slices.
    ///
    /// Phases: (A) each shard derives cell ids and a cell histogram for
    /// its slice in parallel; (B) one sequential prefix-sum pass turns
    /// the histograms into global CSR starts; (C) each shard
    /// counting-sorts its own slice locally in parallel; (D) a
    /// deterministic index-ordered merge concatenates the shard runs of
    /// every cell in shard order. Because shards are *contiguous
    /// ascending* index ranges, shard-order concatenation within a cell
    /// is exactly ascending point order — the same layout the
    /// sequential counting sort produces — so the resulting CSR arrays
    /// are **byte-identical at every shard count**.
    ///
    /// # Errors
    ///
    /// [`GridError`] on degenerate geometry, exactly as [`Self::rebuild`].
    #[agentnet::hot_path]
    pub fn rebuild_sharded(
        &mut self,
        arena: Rect,
        cell_size: f64,
        points: &[Point2],
        shards: usize,
    ) -> Result<bool, GridError> {
        Self::validate(arena, cell_size)?;
        debug_assert!(points.len() < u32::MAX as usize, "CSR entries are u32 point indices");
        let mut cell = cell_size;
        let mut cols = Self::cell_span(arena.width, cell);
        let mut rows = Self::cell_span(arena.height, cell);
        let mut clamped = false;
        if Self::cell_table_oversized(cols, rows) {
            while Self::cell_table_oversized(cols, rows) {
                cell *= 2.0;
                cols = Self::cell_span(arena.width, cell);
                rows = Self::cell_span(arena.height, cell);
            }
            clamped = true;
            self.clamp_events += 1;
        }
        self.arena = arena;
        self.requested_cell = cell_size;
        self.cell = cell;
        self.cols = cols;
        self.rows = rows;
        let n = points.len();
        let shards = shards.clamp(1, n.max(1));
        if shards <= 1 {
            self.index_sequential(points);
        } else {
            self.index_sharded(points, shards);
        }
        Ok(clamped)
    }

    /// Sequential CSR construction: one counting sort, stable in point
    /// index — the layout every other construction path reproduces.
    #[agentnet::hot_path]
    fn index_sequential(&mut self, points: &[Point2]) {
        // `cols * rows` cannot overflow: the clamp loop bounded it.
        let cells = self.cols * self.rows;
        let (min, cell, cols, rows) = (self.arena.origin(), self.cell, self.cols, self.rows);
        self.cell_of.clear();
        self.cell_of.extend(points.iter().map(|&p| Self::cell_id(p, min, cell, cols, rows) as u32));
        self.starts.clear();
        self.starts.resize(cells + 1, 0);
        for &c in &self.cell_of {
            if let Some(count) = self.starts.get_mut(c as usize + 1) {
                *count += 1;
            }
        }
        let mut acc = 0u32;
        for s in &mut self.starts {
            acc += *s;
            *s = acc;
        }
        let cursor = &mut self.scratch.cursor;
        cursor.clear();
        cursor.extend(self.starts.iter().take(cells).copied());
        self.entries.clear();
        self.entries.resize(points.len(), 0);
        for (i, &c) in self.cell_of.iter().enumerate() {
            let Some(cur) = cursor.get_mut(c as usize) else { continue };
            let slot = *cur as usize;
            *cur += 1;
            if let Some(e) = self.entries.get_mut(slot) {
                *e = i as u32;
            }
        }
    }

    /// Sharded CSR construction (phases A–D; see
    /// [`Self::rebuild_sharded`] for the determinism argument).
    #[agentnet::hot_path]
    fn index_sharded(&mut self, points: &[Point2], shards: usize) {
        let cells = self.cols * self.rows;
        let n = points.len();
        let chunk = n.div_ceil(shards);
        let nshards = n.div_ceil(chunk.max(1));
        let (min, cell, cols, rows) = (self.arena.origin(), self.cell, self.cols, self.rows);
        if self.scratch.shard_hist.len() < nshards {
            // Warm-up only: the per-shard tables are reused forever after.
            // agentlint::allow(no-alloc-in-hot-path)
            self.scratch.shard_hist.resize_with(nshards, Vec::new);
            // agentlint::allow(no-alloc-in-hot-path)
            self.scratch.shard_entries.resize_with(nshards, Vec::new);
        }
        self.cell_of.clear();
        self.cell_of.resize(n, 0);

        // Phase A (parallel): per-shard cell ids + cell histograms over
        // disjoint contiguous slices.
        std::thread::scope(|scope| {
            for ((pts, ids), hist) in points
                .chunks(chunk)
                .zip(self.cell_of.chunks_mut(chunk))
                .zip(&mut self.scratch.shard_hist)
            {
                scope.spawn(move || {
                    hist.clear();
                    hist.resize(cells, 0);
                    for (&p, id) in pts.iter().zip(ids) {
                        let c = Self::cell_id(p, min, cell, cols, rows);
                        *id = c as u32;
                        if let Some(h) = hist.get_mut(c) {
                            *h += 1;
                        }
                    }
                });
            }
        });

        // Phase B (sequential): global CSR starts = prefix sum of the
        // per-cell counts summed across shards.
        self.starts.clear();
        self.starts.resize(cells + 1, 0);
        for hist in self.scratch.shard_hist.iter().take(nshards) {
            for (s, &h) in self.starts.iter_mut().skip(1).zip(hist) {
                *s += h;
            }
        }
        let mut acc = 0u32;
        for s in &mut self.starts {
            acc += *s;
            *s = acc;
        }

        // Phase C (parallel): each shard counting-sorts its slice into a
        // local entry array. The histogram is prefix-summed in place
        // into run cursors; after the scatter, `hist[c]` holds the end
        // of cell `c`'s local run — exactly what the merge needs.
        std::thread::scope(|scope| {
            for (k, ((ids, hist), local)) in self
                .cell_of
                .chunks(chunk)
                .zip(&mut self.scratch.shard_hist)
                .zip(&mut self.scratch.shard_entries)
                .enumerate()
            {
                let offset = k * chunk;
                scope.spawn(move || {
                    let mut acc = 0u32;
                    for h in hist.iter_mut() {
                        let count = *h;
                        *h = acc;
                        acc += count;
                    }
                    local.clear();
                    local.resize(ids.len(), 0);
                    for (i, &c) in ids.iter().enumerate() {
                        let Some(cur) = hist.get_mut(c as usize) else { continue };
                        let slot = *cur as usize;
                        *cur += 1;
                        if let Some(e) = local.get_mut(slot) {
                            *e = (offset + i) as u32;
                        }
                    }
                });
            }
        });

        // Phase D (sequential): index-ordered merge — for every cell,
        // concatenate the shard runs in shard order.
        self.entries.clear();
        self.entries.reserve(n);
        for c in 0..cells {
            for (hist, local) in
                self.scratch.shard_hist.iter().zip(&self.scratch.shard_entries).take(nshards)
            {
                let end = hist.get(c).copied().unwrap_or(0) as usize;
                let start = if c == 0 { 0 } else { hist.get(c - 1).copied().unwrap_or(0) as usize };
                if let Some(run) = local.get(start..end) {
                    self.entries.extend_from_slice(run);
                }
            }
        }
    }

    /// Incremental maintenance: moves the points listed in `moved`
    /// between cells instead of rebuilding from scratch. `moved` must
    /// contain every index whose position changed since the last
    /// (re)build (extra never-moved or duplicated indices are
    /// harmless).
    ///
    /// Returns `false` — leaving the grid **unchanged** — when the
    /// incremental precondition does not hold: different arena, a
    /// different requested cell size, a coarsened (clamped) grid, a
    /// changed point count, or an out-of-range index. Callers fall back
    /// to a full rebuild. (A clamped grid always takes the full-rebuild
    /// path so the per-rebuild clamp accounting stays identical whether
    /// or not the incremental path is enabled.)
    ///
    /// On success the CSR arrays are byte-identical to what a full
    /// [`Self::rebuild`] over `points` would produce: unchanged cell
    /// runs are block-copied, and each edited cell merges its surviving
    /// entries with the insertions in ascending index order.
    #[agentnet::hot_path]
    pub fn incremental_update(
        &mut self,
        arena: Rect,
        cell_size: f64,
        points: &[Point2],
        moved: &[usize],
    ) -> bool {
        let n = self.cell_of.len();
        let applicable = arena == self.arena
            && cell_size == self.requested_cell
            && self.cell == self.requested_cell
            && points.len() == n
            && moved.iter().all(|&i| i < n);
        if !applicable {
            return false;
        }
        let (min, cell, cols, rows) = (self.arena.origin(), self.cell, self.cols, self.rows);
        self.scratch.removals.clear();
        self.scratch.insertions.clear();
        for &i in moved {
            let Some(&p) = points.get(i) else { continue };
            let new_cell = Self::cell_id(p, min, cell, cols, rows) as u32;
            let Some(old_cell) = self.cell_of.get_mut(i) else { continue };
            if *old_cell != new_cell {
                self.scratch.removals.push((*old_cell, i as u32));
                self.scratch.insertions.push((new_cell, i as u32));
                *old_cell = new_cell;
            }
        }
        if self.scratch.removals.is_empty() {
            // Every move stayed within its cell: the CSR is already
            // exactly what a full rebuild would produce.
            return true;
        }
        self.scratch.removals.sort_unstable();
        self.scratch.insertions.sort_unstable();
        self.splice_edits();
        true
    }

    /// Applies the sorted removal/insertion lists in one pass over the
    /// CSR arrays: untouched cell runs are block-copied, edited cells
    /// re-merged in ascending index order.
    #[agentnet::hot_path]
    fn splice_edits(&mut self) {
        let cells = self.cols * self.rows;
        let GridScratch { out_entries, out_starts, removals, insertions, .. } = &mut self.scratch;
        out_entries.clear();
        out_entries.reserve(self.entries.len());
        out_starts.clear();
        out_starts.reserve(cells + 1);
        out_starts.push(0);
        let mut rem = removals.iter().peekable();
        let mut ins = insertions.iter().peekable();
        for c in 0..cells as u32 {
            let lo = self.starts.get(c as usize).copied().unwrap_or(0) as usize;
            let hi = self.starts.get(c as usize + 1).copied().unwrap_or(0) as usize;
            let run = self.entries.get(lo..hi).unwrap_or(&[]);
            let touched = rem.peek().is_some_and(|&&(rc, _)| rc == c)
                || ins.peek().is_some_and(|&&(ic, _)| ic == c);
            if !touched {
                out_entries.extend_from_slice(run);
            } else {
                for &e in run {
                    if rem.peek().is_some_and(|&&(rc, ri)| rc == c && ri == e) {
                        rem.next();
                        continue;
                    }
                    while ins.peek().is_some_and(|&&(ic, idx)| ic == c && idx < e) {
                        if let Some(&(_, idx)) = ins.next() {
                            out_entries.push(idx);
                        }
                    }
                    out_entries.push(e);
                }
                while ins.peek().is_some_and(|&&(ic, _)| ic == c) {
                    if let Some(&(_, idx)) = ins.next() {
                        out_entries.push(idx);
                    }
                }
            }
            out_starts.push(out_entries.len() as u32);
        }
        std::mem::swap(&mut self.entries, out_entries);
        std::mem::swap(&mut self.starts, out_starts);
    }

    /// `true` when a `cols x rows` cell table would overflow `usize`
    /// or exceed [`Self::MAX_CELLS`].
    #[inline]
    fn cell_table_oversized(cols: usize, rows: usize) -> bool {
        cols.checked_mul(rows).is_none_or(|cells| cells > Self::MAX_CELLS)
    }

    /// Number of rebuilds (since construction) that coarsened the
    /// requested cell size to keep the cell table within
    /// [`Self::MAX_CELLS`] — a coarser grid degrades query tightness,
    /// so callers surface this as a metric rather than silently paying
    /// for near-full scans. Per-rebuild clamp information is returned
    /// by [`Self::rebuild`] directly.
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events
    }

    /// Number of cells covering `extent` at `cell` width, at least 1 —
    /// the audited float→usize crossing for grid dimensioning. `rebuild`
    /// validates `cell` finite and positive; the result is clamped below
    /// by `max(1.0)` and the cast saturates on absurd extents instead of
    /// wrapping.
    #[inline]
    fn cell_span(extent: f64, cell: f64) -> usize {
        let span = (extent / cell).ceil().max(1.0);
        // agentlint::allow(no-lossy-cast) — domain clamped to >= 1 above.
        span as usize
    }

    /// Maps an **arena-relative** coordinate (already offset by the
    /// arena's min corner) to a cell index, clamped into `0..limit`.
    ///
    /// Positions are allowed to fall outside the arena (fault injection
    /// teleports, numerical drift at the walls): coordinates left of the
    /// arena — where `coord / cell` is negative — clamp to cell 0
    /// *explicitly* rather than through the float→usize cast's silent
    /// saturation, and coordinates at or past the far edge clamp to the
    /// last cell.
    #[inline]
    fn cell_index(coord: f64, cell: f64, limit: usize) -> usize {
        let raw = coord / cell;
        if raw <= 0.0 || raw.is_nan() {
            return 0;
        }
        // agentlint::allow(no-lossy-cast) — raw is finite and positive
        // here, and the min() clamps the far edge into range.
        (raw as usize).min(limit.saturating_sub(1))
    }

    /// Cell id of a point under the given geometry. Offset by the
    /// arena's min corner: a non-origin arena's cells start at `origin`,
    /// not `(0, 0)` — dividing the absolute coordinate would collapse
    /// every point into the clamped border cells and degrade queries to
    /// near-full scans.
    #[inline]
    fn cell_id(p: Point2, min: Point2, cell: f64, cols: usize, rows: usize) -> usize {
        let cx = Self::cell_index(p.x - min.x, cell, cols);
        let cy = Self::cell_index(p.y - min.y, cell, rows);
        cy * cols + cx
    }

    /// The entry run of cell `c`, empty out of range.
    #[inline]
    fn run(&self, c: usize) -> &[u32] {
        let lo = self.starts.get(c).copied().unwrap_or(0) as usize;
        let hi = self.starts.get(c + 1).copied().unwrap_or(0) as usize;
        self.entries.get(lo..hi).unwrap_or(&[])
    }

    /// Iterator over indices of points whose cell intersects the disc of
    /// `radius` around `center` — a superset of the true in-range set
    /// (out-of-arena points included, since they are indexed into the
    /// clamped border cells the disc's clamped cell range also covers);
    /// callers still apply the exact distance test.
    #[agentnet::hot_path]
    pub fn candidates_within(
        &self,
        center: Point2,
        radius: f64,
    ) -> impl Iterator<Item = usize> + '_ {
        let x = center.x - self.arena.min_x();
        let y = center.y - self.arena.min_y();
        let min_cx = Self::cell_index(x - radius, self.cell, self.cols);
        let max_cx = Self::cell_index(x + radius, self.cell, self.cols);
        let min_cy = Self::cell_index(y - radius, self.cell, self.rows);
        let max_cy = Self::cell_index(y + radius, self.cell, self.rows);
        (min_cy..=max_cy).flat_map(move |cy| {
            (min_cx..=max_cx)
                .flat_map(move |cx| self.run(cy * self.cols + cx).iter().map(|&e| e as usize))
        })
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// The flat CSR cell arrays `(starts, entries)`: cell `c` holds the
    /// point indices `entries[starts[c]..starts[c+1]]`, ascending.
    /// Exposed so differential tests and the validation battery can
    /// assert byte-identical grid contents across construction paths.
    pub fn flat_cells(&self) -> (&[u32], &[u32]) {
        (&self.starts, &self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(arena: Rect, cell: f64, pts: &[Point2]) -> SpatialGrid {
        SpatialGrid::build(arena, cell, pts).expect("valid grid geometry")
    }

    #[test]
    fn grid_dimensions() {
        let g = build(Rect::new(10.0, 4.0), 2.0, &[]);
        assert_eq!(g.cell_count(), 5 * 2);
    }

    #[test]
    fn candidates_are_superset_of_exact_in_range() {
        let pts: Vec<Point2> =
            (0..100).map(|i| Point2::new((i % 10) as f64, (i / 10) as f64)).collect();
        let g = build(Rect::square(10.0), 1.5, &pts);
        let center = Point2::new(4.5, 4.5);
        let radius = 2.0;
        let cands: std::collections::HashSet<usize> = g.candidates_within(center, radius).collect();
        for (i, p) in pts.iter().enumerate() {
            if center.distance(*p) <= radius {
                assert!(cands.contains(&i), "missed in-range point {i}");
            }
        }
    }

    #[test]
    fn points_on_arena_edge_are_indexed() {
        let pts = vec![Point2::new(10.0, 10.0)];
        let g = build(Rect::square(10.0), 3.0, &pts);
        let found: Vec<usize> = g.candidates_within(Point2::new(9.5, 9.5), 1.0).collect();
        assert_eq!(found, vec![0]);
    }

    #[test]
    fn query_larger_than_arena_sees_everything() {
        let pts = vec![Point2::new(0.5, 0.5), Point2::new(9.5, 9.5)];
        let g = build(Rect::square(10.0), 2.0, &pts);
        let all: Vec<usize> = g.candidates_within(Point2::new(5.0, 5.0), 100.0).collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn degenerate_cell_sizes_are_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = SpatialGrid::build(Rect::square(1.0), bad, &[]).err();
            assert!(
                matches!(err, Some(GridError::CellSize { .. })),
                "cell size {bad} must be rejected, got {err:?}"
            );
        }
        // The rejected value is carried in the error.
        assert_eq!(
            SpatialGrid::build(Rect::square(1.0), -2.5, &[]).err(),
            Some(GridError::CellSize { cell_size: -2.5 })
        );
    }

    #[test]
    fn non_finite_arena_is_rejected_not_clamped() {
        // Rect's constructors validate, but its dimension fields are
        // public — a degenerate arena can reach the grid.
        let mut arena = Rect::square(10.0);
        arena.width = f64::INFINITY;
        assert!(matches!(SpatialGrid::build(arena, 1.0, &[]), Err(GridError::Arena { .. })));
        let mut arena = Rect::square(10.0);
        arena.height = f64::NAN;
        assert!(matches!(SpatialGrid::build(arena, 1.0, &[]), Err(GridError::Arena { .. })));
    }

    #[test]
    fn failed_rebuild_leaves_the_grid_usable() {
        let pts = vec![Point2::new(1.0, 1.0)];
        let mut g = build(Rect::square(10.0), 2.0, &pts);
        assert!(g.rebuild(Rect::square(10.0), f64::NAN, &pts).is_err());
        // The previous index is intact.
        let found: Vec<usize> = g.candidates_within(Point2::new(1.0, 1.0), 1.0).collect();
        assert_eq!(found, vec![0]);
    }

    #[test]
    fn out_of_arena_points_clamp_to_border_cells() {
        let pts = vec![Point2::new(-5.0, -5.0), Point2::new(15.0, 3.0)];
        let g = build(Rect::square(10.0), 2.0, &pts);
        // A query disc around the out-of-arena point still finds it in
        // the clamped border cell.
        let near: Vec<usize> = g.candidates_within(Point2::new(-4.0, -4.0), 2.0).collect();
        assert!(near.contains(&0));
        let far: Vec<usize> = g.candidates_within(Point2::new(14.0, 3.0), 2.0).collect();
        assert!(far.contains(&1));
    }

    #[test]
    fn shifted_arena_buckets_points_by_relative_position() {
        // Regression: cell_index used to divide the *absolute*
        // coordinate by the cell size, so every point of a non-origin
        // arena landed in the clamped border cells and distant points
        // became candidates of each other.
        let arena = Rect::anchored(Point2::new(500.0, -200.0), 100.0, 100.0);
        let near = Point2::new(505.0, -195.0); // min corner area
        let far = Point2::new(595.0, -105.0); // max corner area
        let g = build(arena, 10.0, &[near, far]);
        assert_eq!(g.cell_count(), 100);
        let around_near: Vec<usize> = g.candidates_within(near, 5.0).collect();
        assert!(around_near.contains(&0), "near point must be its own candidate");
        assert!(
            !around_near.contains(&1),
            "far corner of a shifted arena must not be a candidate near the min corner"
        );
        let around_far: Vec<usize> = g.candidates_within(far, 5.0).collect();
        assert!(around_far.contains(&1));
        assert!(!around_far.contains(&0));
    }

    #[test]
    fn shifted_arena_candidates_are_superset_of_in_range() {
        let arena = Rect::anchored(Point2::new(-50.0, 30.0), 20.0, 12.0);
        let pts: Vec<Point2> = (0..60)
            .map(|i| Point2::new(-50.0 + (i % 10) as f64 * 2.0, 30.0 + (i / 10) as f64 * 2.0))
            .collect();
        let g = build(arena, 3.0, &pts);
        let center = Point2::new(-41.0, 35.0);
        let radius = 4.0;
        let cands: std::collections::HashSet<usize> = g.candidates_within(center, radius).collect();
        for (i, p) in pts.iter().enumerate() {
            if center.distance(*p) <= radius {
                assert!(cands.contains(&i), "missed in-range point {i} at {p}");
            }
        }
    }

    #[test]
    fn absurd_extent_cell_ratio_clamps_instead_of_aborting() {
        // 1e12-wide arena with 1e-3 cells: ~1e30 cells would overflow
        // the multiply (and any allocator). The rebuild must coarsen
        // the cell size, stay within MAX_CELLS, and surface the event.
        let arena = Rect::new(1e12, 1e12);
        let pts = vec![Point2::new(1.0, 1.0), Point2::new(2.0, 2.0), Point2::new(9e11, 9e11)];
        let g = build(arena, 1e-3, &pts);
        assert!(g.cell_count() <= SpatialGrid::MAX_CELLS);
        assert_eq!(g.clamp_events(), 1);
        // Queries stay correct on the coarsened grid.
        let near: Vec<usize> = g.candidates_within(Point2::new(1.5, 1.5), 2.0).collect();
        assert!(near.contains(&0) && near.contains(&1));
    }

    #[test]
    fn rebuild_reports_each_clamp_without_double_counting() {
        let arena = Rect::new(1e12, 1e12);
        let mut g = build(arena, 1.0, &[]);
        assert_eq!(g.clamp_events(), 1, "construction at 1e12/1.0 must clamp once");
        // Two more rebuilds in a row: each reports exactly its own
        // clamp, and the cumulative counter advances by exactly one per
        // rebuild — no wrap, no double-count.
        for expected in 2..=3 {
            let clamped = g.rebuild(arena, 1.0, &[]).expect("valid geometry");
            assert!(clamped);
            assert_eq!(g.clamp_events(), expected);
        }
        let clamped = g.rebuild(Rect::square(100.0), 10.0, &[]).expect("valid geometry");
        assert!(!clamped, "a sane rebuild must not report a clamp");
        assert_eq!(g.clamp_events(), 3);
    }

    #[test]
    fn sane_rebuilds_never_clamp() {
        let mut g = build(Rect::square(1000.0), 100.0, &[]);
        let clamped = g.rebuild(Rect::square(1000.0), 50.0, &[]).expect("valid geometry");
        assert!(!clamped);
        assert_eq!(g.clamp_events(), 0);
    }

    #[test]
    fn rebuild_reindexes_in_place() {
        let mut g = build(Rect::square(10.0), 2.0, &[Point2::new(1.0, 1.0)]);
        assert_eq!(g.cell_count(), 25);
        g.rebuild(Rect::square(10.0), 5.0, &[Point2::new(9.0, 9.0)]).expect("valid geometry");
        assert_eq!(g.cell_count(), 4);
        let found: Vec<usize> = g.candidates_within(Point2::new(8.0, 8.0), 1.5).collect();
        assert_eq!(found, vec![0]);
    }

    #[test]
    fn csr_entries_are_ascending_within_every_cell() {
        let pts: Vec<Point2> = (0..200)
            .map(|i| Point2::new((i * 37 % 100) as f64 / 10.0, (i * 53 % 100) as f64 / 10.0))
            .collect();
        let g = build(Rect::square(10.0), 2.5, &pts);
        let (starts, entries) = g.flat_cells();
        assert_eq!(*starts.last().unwrap() as usize, pts.len());
        for w in 0..starts.len() - 1 {
            let run = &entries[starts[w] as usize..starts[w + 1] as usize];
            assert!(run.windows(2).all(|p| p[0] < p[1]), "cell {w} run not ascending: {run:?}");
        }
    }

    fn scattered_points(n: usize, arena: Rect) -> Vec<Point2> {
        // Deterministic pseudo-random scatter (LCG), including a few
        // out-of-arena strays that must clamp consistently.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        (0..n)
            .map(|_| {
                let mut next = || {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 11) as f64 / (1u64 << 53) as f64
                };
                let x = arena.min_x() + (next() * 1.2 - 0.1) * arena.width;
                let y = arena.min_y() + (next() * 1.2 - 0.1) * arena.height;
                Point2::new(x, y)
            })
            .collect()
    }

    #[test]
    fn sharded_rebuild_is_byte_identical_to_sequential() {
        let arena = Rect::anchored(Point2::new(-40.0, 25.0), 300.0, 200.0);
        let pts = scattered_points(500, arena);
        let baseline = build(arena, 7.0, &pts);
        for shards in [1, 2, 3, 7, 16, 499, 500, 900] {
            let mut g = build(arena, 31.0, &[]);
            g.rebuild_sharded(arena, 7.0, &pts, shards).expect("valid geometry");
            assert_eq!(
                g.flat_cells(),
                baseline.flat_cells(),
                "CSR contents differ at {shards} shards"
            );
            assert_eq!(g.cell_count(), baseline.cell_count());
        }
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        let arena = Rect::square(100.0);
        let mut pts = scattered_points(300, arena);
        let mut g = build(arena, 9.0, &pts);
        // Several rounds of sparse movement, including cell-crossing
        // hops, within-cell jitter, and out-of-arena clamping.
        for round in 0..8 {
            let moved: Vec<usize> = (round % 7..300).step_by(7).collect();
            for &i in &moved {
                let p = &mut pts[i];
                p.x += if round % 2 == 0 { 13.0 } else { -13.0 };
                p.y += 0.25;
            }
            assert!(
                g.incremental_update(arena, 9.0, &pts, &moved),
                "round {round}: incremental path must apply"
            );
            let full = build(arena, 9.0, &pts);
            assert_eq!(g.flat_cells(), full.flat_cells(), "round {round} diverged");
        }
    }

    #[test]
    fn incremental_update_refuses_changed_geometry() {
        let arena = Rect::square(100.0);
        let pts = scattered_points(50, arena);
        let mut g = build(arena, 9.0, &pts);
        assert!(!g.incremental_update(arena, 8.0, &pts, &[]), "cell size changed");
        assert!(!g.incremental_update(Rect::square(90.0), 9.0, &pts, &[]), "arena changed");
        assert!(!g.incremental_update(arena, 9.0, &pts[..49], &[]), "point count changed");
        assert!(!g.incremental_update(arena, 9.0, &pts, &[50]), "index out of range");
        // And still applies when nothing is wrong.
        assert!(g.incremental_update(arena, 9.0, &pts, &[0]));
    }

    #[test]
    fn duplicated_moved_indices_record_each_edit_once() {
        // The eager `cell_of` update makes a duplicated index a no-op on
        // its later occurrences — it must not remove or insert twice.
        let arena = Rect::square(100.0);
        let mut pts: Vec<Point2> =
            (0..20).map(|i| Point2::new(5.0 + 4.0 * (i as f64), 50.0)).collect();
        let mut g = build(arena, 10.0, &pts);
        pts[3] = Point2::new(85.0, 50.0);
        assert!(g.incremental_update(arena, 10.0, &pts, &[3, 3, 7, 7, 3]));
        let full = build(arena, 10.0, &pts);
        assert_eq!(g.flat_cells(), full.flat_cells());
    }

    #[test]
    fn incremental_update_refuses_clamped_grids() {
        // A clamped grid coarsened its cell size; the incremental path
        // must defer to the full rebuild so clamp accounting matches.
        let arena = Rect::new(1e12, 1e12);
        let pts = vec![Point2::new(1.0, 1.0)];
        let mut g = build(arena, 1e-3, &pts);
        assert_eq!(g.clamp_events(), 1);
        assert!(!g.incremental_update(arena, 1e-3, &pts, &[0]));
    }

    #[test]
    fn incremental_update_on_shifted_arena_moves_by_relative_position() {
        // Regression guard for the incremental path on non-origin
        // arenas: a move near the min corner must re-bucket relative to
        // the origin, not absolutely.
        let arena = Rect::anchored(Point2::new(500.0, -200.0), 100.0, 100.0);
        let mut pts = vec![Point2::new(505.0, -195.0), Point2::new(595.0, -105.0)];
        let mut g = build(arena, 10.0, &pts);
        pts[0] = Point2::new(525.0, -175.0); // two cells over, still near the min corner
        assert!(g.incremental_update(arena, 10.0, &pts, &[0]));
        let full = build(arena, 10.0, &pts);
        assert_eq!(g.flat_cells(), full.flat_cells());
        let around: Vec<usize> = g.candidates_within(pts[0], 5.0).collect();
        assert!(around.contains(&0));
        assert!(!around.contains(&1), "far corner must not become a candidate after the move");
    }
}
