//! Uniform-grid spatial index for neighbour queries.
//!
//! Rebuilding the link digraph each step requires, for every node, the set
//! of nodes inside its radio range. The grid buckets node indices by cell
//! so a range query inspects only nearby cells instead of all `n` nodes,
//! turning the per-step link rebuild from `O(n²)` into roughly
//! `O(n · k)` for `k` nodes per neighbourhood.

use agentnet_graph::geometry::{Point2, Rect};

/// A uniform grid over an arena, bucketing point indices by cell.
///
/// ```
/// use agentnet_graph::geometry::{Point2, Rect};
/// use agentnet_radio::spatial::SpatialGrid;
///
/// let pts = vec![Point2::new(1.0, 1.0), Point2::new(9.0, 9.0), Point2::new(1.5, 1.0)];
/// let grid = SpatialGrid::build(Rect::square(10.0), 2.0, &pts);
/// let mut near: Vec<usize> = grid.candidates_within(pts[0], 1.0).collect();
/// near.sort_unstable();
/// assert!(near.contains(&2));      // the point 0.5 m away
/// assert!(!near.contains(&1));     // the far corner is not a candidate
/// ```
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    arena: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<usize>>,
}

impl SpatialGrid {
    /// Builds a grid with cells of side `cell_size` (clamped to a sane
    /// minimum) containing the given points.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(arena: Rect, cell_size: f64, points: &[Point2]) -> Self {
        assert!(cell_size.is_finite() && cell_size > 0.0, "cell size must be positive and finite");
        let cols = (arena.width / cell_size).ceil().max(1.0) as usize;
        let rows = (arena.height / cell_size).ceil().max(1.0) as usize;
        let mut grid = SpatialGrid {
            arena,
            cell: cell_size,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
        };
        for (i, &p) in points.iter().enumerate() {
            let b = grid.bucket_of(p);
            grid.buckets[b].push(i);
        }
        grid
    }

    fn bucket_of(&self, p: Point2) -> usize {
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Iterator over indices of points whose cell intersects the disc of
    /// `radius` around `center` — a superset of the true in-range set;
    /// callers still apply the exact distance test.
    pub fn candidates_within(
        &self,
        center: Point2,
        radius: f64,
    ) -> impl Iterator<Item = usize> + '_ {
        let min_cx = (((center.x - radius).max(0.0) / self.cell) as usize).min(self.cols - 1);
        let max_cx =
            (((center.x + radius).min(self.arena.width) / self.cell) as usize).min(self.cols - 1);
        let min_cy = (((center.y - radius).max(0.0) / self.cell) as usize).min(self.rows - 1);
        let max_cy =
            (((center.y + radius).min(self.arena.height) / self.cell) as usize).min(self.rows - 1);
        (min_cy..=max_cy).flat_map(move |cy| {
            (min_cx..=max_cx).flat_map(move |cx| self.buckets[cy * self.cols + cx].iter().copied())
        })
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions() {
        let g = SpatialGrid::build(Rect::new(10.0, 4.0), 2.0, &[]);
        assert_eq!(g.cell_count(), 5 * 2);
    }

    #[test]
    fn candidates_are_superset_of_exact_in_range() {
        let pts: Vec<Point2> =
            (0..100).map(|i| Point2::new((i % 10) as f64, (i / 10) as f64)).collect();
        let g = SpatialGrid::build(Rect::square(10.0), 1.5, &pts);
        let center = Point2::new(4.5, 4.5);
        let radius = 2.0;
        let cands: std::collections::HashSet<usize> = g.candidates_within(center, radius).collect();
        for (i, p) in pts.iter().enumerate() {
            if center.distance(*p) <= radius {
                assert!(cands.contains(&i), "missed in-range point {i}");
            }
        }
    }

    #[test]
    fn points_on_arena_edge_are_indexed() {
        let pts = vec![Point2::new(10.0, 10.0)];
        let g = SpatialGrid::build(Rect::square(10.0), 3.0, &pts);
        let found: Vec<usize> = g.candidates_within(Point2::new(9.5, 9.5), 1.0).collect();
        assert_eq!(found, vec![0]);
    }

    #[test]
    fn query_larger_than_arena_sees_everything() {
        let pts = vec![Point2::new(0.5, 0.5), Point2::new(9.5, 9.5)];
        let g = SpatialGrid::build(Rect::square(10.0), 2.0, &pts);
        let all: Vec<usize> = g.candidates_within(Point2::new(5.0, 5.0), 100.0).collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let _ = SpatialGrid::build(Rect::square(1.0), 0.0, &[]);
    }
}
