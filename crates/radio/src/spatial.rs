//! Uniform-grid spatial index for neighbour queries.
//!
//! Rebuilding the link digraph each step requires, for every node, the set
//! of nodes inside its radio range. The grid buckets node indices by cell
//! so a range query inspects only nearby cells instead of all `n` nodes,
//! turning the per-step link rebuild from `O(n²)` into roughly
//! `O(n · k)` for `k` nodes per neighbourhood.

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use agentnet_graph::geometry::{Point2, Rect};

/// A uniform grid over an arena, bucketing point indices by cell.
///
/// ```
/// use agentnet_graph::geometry::{Point2, Rect};
/// use agentnet_radio::spatial::SpatialGrid;
///
/// let pts = vec![Point2::new(1.0, 1.0), Point2::new(9.0, 9.0), Point2::new(1.5, 1.0)];
/// let grid = SpatialGrid::build(Rect::square(10.0), 2.0, &pts);
/// let mut near: Vec<usize> = grid.candidates_within(pts[0], 1.0).collect();
/// near.sort_unstable();
/// assert!(near.contains(&2));      // the point 0.5 m away
/// assert!(!near.contains(&1));     // the far corner is not a candidate
/// ```
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    arena: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<usize>>,
    /// Rebuilds that had to coarsen the requested cell size to keep the
    /// bucket table allocatable — see [`SpatialGrid::clamp_events`].
    clamp_events: u64,
}

impl SpatialGrid {
    /// Hard ceiling on the bucket-table size (~4M cells, ~100 MB of
    /// `Vec` headers). Rebuilds whose extent/cell ratio would exceed it
    /// coarsen the cell size instead of aborting on allocation;
    /// correctness is unaffected because [`Self::candidates_within`]
    /// derives its cell window from the same cell size.
    pub const MAX_CELLS: usize = 1 << 22;

    /// Builds a grid with cells of side `cell_size` (clamped to a sane
    /// minimum) containing the given points.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(arena: Rect, cell_size: f64, points: &[Point2]) -> Self {
        let mut grid = SpatialGrid {
            arena,
            cell: 1.0,
            cols: 1,
            rows: 1,
            buckets: vec![Vec::new()],
            clamp_events: 0,
        };
        grid.rebuild(arena, cell_size, points);
        grid
    }

    /// Re-indexes the grid in place over possibly new geometry, reusing
    /// bucket storage — the steady-state path of
    /// [`crate::WirelessNetwork::advance`], which would otherwise
    /// reallocate every bucket every step.
    ///
    /// An absurd extent/cell ratio (whose `cols * rows` bucket table
    /// would overflow or exceed [`Self::MAX_CELLS`]) does not abort:
    /// the cell size is doubled until the table fits and the event is
    /// surfaced through [`Self::clamp_events`].
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    #[agentnet::hot_path]
    pub fn rebuild(&mut self, arena: Rect, cell_size: f64, points: &[Point2]) {
        assert!(cell_size.is_finite() && cell_size > 0.0, "cell size must be positive and finite");
        let mut cell = cell_size;
        let mut cols = Self::cell_span(arena.width, cell);
        let mut rows = Self::cell_span(arena.height, cell);
        if Self::bucket_table_oversized(cols, rows) {
            while Self::bucket_table_oversized(cols, rows) {
                cell *= 2.0;
                cols = Self::cell_span(arena.width, cell);
                rows = Self::cell_span(arena.height, cell);
            }
            self.clamp_events += 1;
        }
        self.arena = arena;
        self.cell = cell;
        self.cols = cols;
        self.rows = rows;
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        // Fills only newly grown cells; in steady state the grid shape
        // is stable and none grow. `cols * rows` cannot overflow: the
        // clamp loop above bounded it by MAX_CELLS.
        // agentlint::allow(no-alloc-in-hot-path)
        self.buckets.resize_with(cols * rows, Vec::new);
        for (i, &p) in points.iter().enumerate() {
            let b = self.bucket_of(p);
            if let Some(bucket) = self.buckets.get_mut(b) {
                bucket.push(i);
            }
        }
    }

    /// `true` when a `cols x rows` bucket table would overflow `usize`
    /// or exceed [`Self::MAX_CELLS`].
    #[inline]
    fn bucket_table_oversized(cols: usize, rows: usize) -> bool {
        cols.checked_mul(rows).is_none_or(|cells| cells > Self::MAX_CELLS)
    }

    /// Number of rebuilds (since construction) that coarsened the
    /// requested cell size to keep the bucket table within
    /// [`Self::MAX_CELLS`] — a coarser grid degrades query tightness,
    /// so callers surface this as a metric rather than silently paying
    /// for near-full scans.
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events
    }

    /// Number of cells covering `extent` at `cell` width, at least 1 —
    /// the audited float→usize crossing for grid dimensioning. `rebuild`
    /// validates `cell` finite and positive; the result is clamped below
    /// by `max(1.0)` and the cast saturates on absurd extents instead of
    /// wrapping.
    #[inline]
    fn cell_span(extent: f64, cell: f64) -> usize {
        let cells = (extent / cell).ceil().max(1.0);
        // agentlint::allow(no-lossy-cast) — domain clamped to >= 1 above.
        cells as usize
    }

    /// Maps an **arena-relative** coordinate (already offset by the
    /// arena's min corner) to a cell index, clamped into `0..limit`.
    ///
    /// Positions are allowed to fall outside the arena (fault injection
    /// teleports, numerical drift at the walls): coordinates left of the
    /// arena — where `coord / cell` is negative — clamp to cell 0
    /// *explicitly* rather than through the float→usize cast's silent
    /// saturation, and coordinates at or past the far edge clamp to the
    /// last cell.
    #[inline]
    fn cell_index(coord: f64, cell: f64, limit: usize) -> usize {
        let raw = coord / cell;
        if raw <= 0.0 || raw.is_nan() {
            return 0;
        }
        // agentlint::allow(no-lossy-cast) — raw is finite and positive
        // here, and the min() clamps the far edge into range.
        (raw as usize).min(limit.saturating_sub(1))
    }

    fn bucket_of(&self, p: Point2) -> usize {
        // Offset by the arena's min corner: a non-origin arena's cells
        // start at `origin`, not `(0, 0)` — dividing the absolute
        // coordinate would collapse every point into the clamped border
        // cells and degrade queries to near-full scans.
        let cx = Self::cell_index(p.x - self.arena.min_x(), self.cell, self.cols);
        let cy = Self::cell_index(p.y - self.arena.min_y(), self.cell, self.rows);
        cy * self.cols + cx
    }

    /// Iterator over indices of points whose cell intersects the disc of
    /// `radius` around `center` — a superset of the true in-range set
    /// (out-of-arena points included, since they are indexed into the
    /// clamped border cells the disc's clamped cell range also covers);
    /// callers still apply the exact distance test.
    #[agentnet::hot_path]
    pub fn candidates_within(
        &self,
        center: Point2,
        radius: f64,
    ) -> impl Iterator<Item = usize> + '_ {
        let x = center.x - self.arena.min_x();
        let y = center.y - self.arena.min_y();
        let min_cx = Self::cell_index(x - radius, self.cell, self.cols);
        let max_cx = Self::cell_index(x + radius, self.cell, self.cols);
        let min_cy = Self::cell_index(y - radius, self.cell, self.rows);
        let max_cy = Self::cell_index(y + radius, self.cell, self.rows);
        (min_cy..=max_cy).flat_map(move |cy| {
            (min_cx..=max_cx).flat_map(move |cx| {
                let bucket =
                    self.buckets.get(cy * self.cols + cx).map(Vec::as_slice).unwrap_or(&[]);
                bucket.iter().copied()
            })
        })
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions() {
        let g = SpatialGrid::build(Rect::new(10.0, 4.0), 2.0, &[]);
        assert_eq!(g.cell_count(), 5 * 2);
    }

    #[test]
    fn candidates_are_superset_of_exact_in_range() {
        let pts: Vec<Point2> =
            (0..100).map(|i| Point2::new((i % 10) as f64, (i / 10) as f64)).collect();
        let g = SpatialGrid::build(Rect::square(10.0), 1.5, &pts);
        let center = Point2::new(4.5, 4.5);
        let radius = 2.0;
        let cands: std::collections::HashSet<usize> = g.candidates_within(center, radius).collect();
        for (i, p) in pts.iter().enumerate() {
            if center.distance(*p) <= radius {
                assert!(cands.contains(&i), "missed in-range point {i}");
            }
        }
    }

    #[test]
    fn points_on_arena_edge_are_indexed() {
        let pts = vec![Point2::new(10.0, 10.0)];
        let g = SpatialGrid::build(Rect::square(10.0), 3.0, &pts);
        let found: Vec<usize> = g.candidates_within(Point2::new(9.5, 9.5), 1.0).collect();
        assert_eq!(found, vec![0]);
    }

    #[test]
    fn query_larger_than_arena_sees_everything() {
        let pts = vec![Point2::new(0.5, 0.5), Point2::new(9.5, 9.5)];
        let g = SpatialGrid::build(Rect::square(10.0), 2.0, &pts);
        let all: Vec<usize> = g.candidates_within(Point2::new(5.0, 5.0), 100.0).collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let _ = SpatialGrid::build(Rect::square(1.0), 0.0, &[]);
    }

    #[test]
    fn out_of_arena_points_clamp_to_border_cells() {
        let pts = vec![Point2::new(-5.0, -5.0), Point2::new(15.0, 3.0)];
        let g = SpatialGrid::build(Rect::square(10.0), 2.0, &pts);
        // A query disc around the out-of-arena point still finds it in
        // the clamped border cell.
        let near: Vec<usize> = g.candidates_within(Point2::new(-4.0, -4.0), 2.0).collect();
        assert!(near.contains(&0));
        let far: Vec<usize> = g.candidates_within(Point2::new(14.0, 3.0), 2.0).collect();
        assert!(far.contains(&1));
    }

    #[test]
    fn shifted_arena_buckets_points_by_relative_position() {
        // Regression: cell_index used to divide the *absolute*
        // coordinate by the cell size, so every point of a non-origin
        // arena landed in the clamped border cells and distant points
        // became candidates of each other.
        let arena = Rect::anchored(Point2::new(500.0, -200.0), 100.0, 100.0);
        let near = Point2::new(505.0, -195.0); // min corner area
        let far = Point2::new(595.0, -105.0); // max corner area
        let g = SpatialGrid::build(arena, 10.0, &[near, far]);
        assert_eq!(g.cell_count(), 100);
        let around_near: Vec<usize> = g.candidates_within(near, 5.0).collect();
        assert!(around_near.contains(&0), "near point must be its own candidate");
        assert!(
            !around_near.contains(&1),
            "far corner of a shifted arena must not be a candidate near the min corner"
        );
        let around_far: Vec<usize> = g.candidates_within(far, 5.0).collect();
        assert!(around_far.contains(&1));
        assert!(!around_far.contains(&0));
    }

    #[test]
    fn shifted_arena_candidates_are_superset_of_in_range() {
        let arena = Rect::anchored(Point2::new(-50.0, 30.0), 20.0, 12.0);
        let pts: Vec<Point2> = (0..60)
            .map(|i| Point2::new(-50.0 + (i % 10) as f64 * 2.0, 30.0 + (i / 10) as f64 * 2.0))
            .collect();
        let g = SpatialGrid::build(arena, 3.0, &pts);
        let center = Point2::new(-41.0, 35.0);
        let radius = 4.0;
        let cands: std::collections::HashSet<usize> = g.candidates_within(center, radius).collect();
        for (i, p) in pts.iter().enumerate() {
            if center.distance(*p) <= radius {
                assert!(cands.contains(&i), "missed in-range point {i} at {p}");
            }
        }
    }

    #[test]
    fn absurd_extent_cell_ratio_clamps_instead_of_aborting() {
        // 1e12-wide arena with 1e-3 cells: ~1e30 buckets would overflow
        // the multiply (and any allocator). The rebuild must coarsen
        // the cell size, stay within MAX_CELLS, and surface the event.
        let arena = Rect::new(1e12, 1e12);
        let pts = vec![Point2::new(1.0, 1.0), Point2::new(2.0, 2.0), Point2::new(9e11, 9e11)];
        let g = SpatialGrid::build(arena, 1e-3, &pts);
        assert!(g.cell_count() <= SpatialGrid::MAX_CELLS);
        assert_eq!(g.clamp_events(), 1);
        // Queries stay correct on the coarsened grid.
        let near: Vec<usize> = g.candidates_within(Point2::new(1.5, 1.5), 2.0).collect();
        assert!(near.contains(&0) && near.contains(&1));
    }

    #[test]
    fn sane_rebuilds_never_clamp() {
        let mut g = SpatialGrid::build(Rect::square(1000.0), 100.0, &[]);
        g.rebuild(Rect::square(1000.0), 50.0, &[]);
        assert_eq!(g.clamp_events(), 0);
    }

    #[test]
    fn rebuild_reindexes_in_place() {
        let mut g = SpatialGrid::build(Rect::square(10.0), 2.0, &[Point2::new(1.0, 1.0)]);
        assert_eq!(g.cell_count(), 25);
        g.rebuild(Rect::square(10.0), 5.0, &[Point2::new(9.0, 9.0)]);
        assert_eq!(g.cell_count(), 4);
        let found: Vec<usize> = g.candidates_within(Point2::new(8.0, 8.0), 1.5).collect();
        assert_eq!(found, vec![0]);
    }
}
