//! Wireless network substrate for the `agentnet` simulator.
//!
//! Models the paper's "realistic" wireless environments:
//!
//! * **Heterogeneous radios** — every node has its own radio range, so the
//!   link relation is *directed*: `A -> B` exists iff `B` sits inside `A`'s
//!   current range.
//! * **Battery decay** — battery-powered nodes lose transmit power over
//!   time, shrinking their range ([`battery`]).
//! * **Mobility** — in the routing study "half of nodes \[are\] mobile"
//!   with random velocities; [`mobility`] provides random-velocity
//!   (wall-bouncing) and random-waypoint motion.
//! * **Gateways** — a small set of stationary, high-capability nodes
//!   connected to the outside world; the routing metric asks which nodes
//!   hold a valid multi-hop route to at least one of them.
//!
//! [`WirelessNetwork`] owns the node set and re-derives the link digraph
//! every simulated step; [`NetworkBuilder`] constructs seeded networks with
//! a calibrated initial edge count (e.g. the paper's 250-node MANET).
//!
//! # Example
//!
//! ```
//! use agentnet_radio::NetworkBuilder;
//!
//! let mut net = NetworkBuilder::new(50)
//!     .gateways(3)
//!     .mobile_fraction(0.5)
//!     .target_edges(400)
//!     .build(7)
//!     .unwrap();
//! assert_eq!(net.node_count(), 50);
//! assert_eq!(net.gateways().len(), 3);
//! let before = net.links().clone();
//! for _ in 0..20 { net.advance(); }
//! // Mobile nodes moved, so the topology drifted.
//! assert_ne!(&before, net.links());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-safety: simulation kernels must not abort mid-experiment.
// `agentlint` (`repro lint`) enforces the same invariant textually;
// the clippy lints catch what its module-scope approximation misses.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod battery;
pub mod builder;
pub mod invariants;
pub mod mobility;
pub mod network;
pub mod node;
pub mod spatial;

pub use battery::{BatteryModel, BatteryState};
pub use builder::{BuildError, NetworkBuilder};
pub use mobility::{MobilityKind, Motion};
pub use network::{NetStats, WirelessNetwork, GRID_INCREMENTAL_MAX_MOVED};
pub use node::{NodeKind, WirelessNode};
pub use spatial::{GridError, SpatialGrid};
