//! The dynamic wireless network: nodes plus the link digraph they induce.

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use crate::battery::BatteryState;
use crate::mobility::Motion;
use crate::node::{NodeKind, WirelessNode};
use crate::spatial::SpatialGrid;
use agentnet_engine::rng::SeedSequence;
use agentnet_engine::Step;
use agentnet_graph::geometry::{Point2, Rect};
use agentnet_graph::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::ops::{Deref, DerefMut};

/// Cumulative counters of substrate-level events since construction —
/// the radio layer's contribution to the run's metrics registry.
///
/// Counting happens inline in [`WirelessNetwork::advance`] (cheap
/// integer bumps; no allocation, no clock), so the counters are always
/// current and cost nothing to higher layers that never read them. The
/// initial link derivation at construction is setup, not an event:
/// a freshly built network reports all-zero stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Simulation steps taken ([`WirelessNetwork::advance`] calls).
    pub advances: u64,
    /// Link-table recomputations (node state drifted since the last).
    pub link_rebuilds: u64,
    /// Rebuilds whose edge set actually changed — exactly the number of
    /// [`WirelessNetwork::topology_version`] bumps.
    pub topology_bumps: u64,
    /// Directed links that appeared across topology changes.
    pub links_formed: u64,
    /// Directed links that disappeared across topology changes.
    pub links_broken: u64,
    /// Node-steps on which battery charge actually decayed (mains and
    /// floored batteries contribute nothing).
    pub battery_decay_steps: u64,
    /// Rebuilds on which the spatial grid coarsened its cell size to
    /// keep the cell table allocatable (see
    /// [`SpatialGrid::clamp_events`]) — nonzero means queries are
    /// paying for an extent/range ratio the grid couldn't honour.
    pub grid_cell_clamps: u64,
    /// Link rebuilds that refreshed the spatial grid incrementally
    /// (moving only the nodes that changed cell) instead of re-indexing
    /// from scratch — the low-mobile-fraction fast path. `serde(default)`
    /// keeps stats serialized before this counter existed readable.
    #[serde(default)]
    pub grid_incremental_updates: u64,
}

/// Largest fraction of nodes that may move in one step for the link
/// rebuild to refresh the spatial grid incrementally; above it, moving
/// nodes one-by-one loses to the sharded from-scratch re-index.
pub const GRID_INCREMENTAL_MAX_MOVED: f64 = 0.05;

/// A wireless ad-hoc network whose topology is re-derived from node
/// positions, battery charge and radio ranges every step.
///
/// The directed link `A -> B` exists iff `B`'s position lies inside `A`'s
/// *current effective* radio range. Mobility and battery decay make "links
/// broken and reformed frequently", exactly the environment of the paper's
/// routing study. A network whose nodes are all stationary and
/// mains-powered keeps a constant topology — the mapping study's setting.
///
/// Node state is stored in columnar (structure-of-arrays) form: column
/// `i` across the parallel vectors is node `i`. The columns are what the
/// per-step kernels actually touch, so they stay cache-dense and can be
/// split into disjoint contiguous shards for parallel stepping; the
/// [`WirelessNode`] view is assembled on demand for inspection.
///
/// Created through [`crate::NetworkBuilder`].
#[derive(Clone, Debug)]
pub struct WirelessNetwork {
    arena: Rect,
    /// Node positions (column `i` = node `i`, like every column below).
    positions: Vec<Point2>,
    /// Nominal (full-charge) radio ranges.
    nominal_ranges: Vec<f64>,
    /// Node roles.
    kinds: Vec<NodeKind>,
    /// Battery charge and decay models.
    batteries: Vec<BatteryState>,
    /// Motion state.
    motions: Vec<Motion>,
    /// Per-node mobility RNG streams, derived from the mobility seed by
    /// node index. Each stream travels with its column, so stepping the
    /// columns in any shard partition draws exactly the same values as
    /// the sequential path — the foundation of sharded determinism.
    node_rngs: Vec<SmallRng>,
    links: DiGraph,
    gateways: Vec<NodeId>,
    now: Step,
    /// Bumped every time `links` actually changes; lets higher layers
    /// (e.g. the routing index) skip revalidation on frozen topologies.
    topology_version: u64,
    /// Cached spatial index, re-bucketed in place when node state drifts.
    grid: SpatialGrid,
    /// Positions at the last link computation (also the grid's points).
    snap_positions: Vec<Point2>,
    /// Effective radio ranges at the last link computation.
    snap_ranges: Vec<f64>,
    /// Double buffer: links are rebuilt into this graph (reusing its edge
    /// storage) and swapped in only when the topology actually changed.
    scratch_links: DiGraph,
    /// Per-node out-neighbour rows the rebuild derives (possibly across
    /// shards in parallel) before the single ordered commit into
    /// `scratch_links`; reused across rebuilds.
    out_rows: Vec<Vec<NodeId>>,
    /// Number of contiguous column shards [`Self::advance`] steps in
    /// parallel; 1 (the default) runs the sequential in-place path.
    advance_shards: usize,
    /// Whether link rebuilds may refresh the grid incrementally when few
    /// nodes moved (on by default). The grid contents — and therefore
    /// links, `topology_version`, and every report — are byte-identical
    /// either way; only rebuild cost changes.
    grid_incremental: bool,
    /// Reused scratch: indices of nodes that moved since the last link
    /// computation, for the incremental grid path.
    scratch_moved: Vec<usize>,
    /// Cumulative substrate event counters since construction.
    stats: NetStats,
}

impl WirelessNetwork {
    /// Assembles a network from parts; link table is computed immediately.
    ///
    /// Most callers should use [`crate::NetworkBuilder`] instead. The
    /// `mobility_seed` roots the per-node RNG streams that drive motion
    /// models drawing at step time (waypoint re-targets, Gauss-Markov
    /// noise), so runs are reproducible at any shard count.
    ///
    /// # Panics
    ///
    /// Panics if node ids are not exactly `0..nodes.len()` in order, or
    /// if `arena` carries non-finite dimensions (possible only by
    /// mutating [`Rect`]'s public fields past its constructors).
    pub fn from_nodes(arena: Rect, nodes: Vec<WirelessNode>, mobility_seed: u64) -> Self {
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id.index(), i, "node ids must be dense and ordered");
        }
        let gateways = nodes.iter().filter(|n| n.kind.is_gateway()).map(|n| n.id).collect();
        let n = nodes.len();
        let seeds = SeedSequence::new(mobility_seed);
        let mut net = WirelessNetwork {
            arena,
            positions: nodes.iter().map(|nd| nd.position).collect(),
            nominal_ranges: nodes.iter().map(|nd| nd.nominal_range).collect(),
            kinds: nodes.iter().map(|nd| nd.kind).collect(),
            batteries: nodes.iter().map(|nd| nd.battery).collect(),
            motions: nodes.iter().map(|nd| nd.motion).collect(),
            node_rngs: (0..n as u64)
                .map(|i| SmallRng::seed_from_u64(seeds.child(i).seed()))
                .collect(),
            links: DiGraph::new(n),
            gateways,
            now: Step::ZERO,
            topology_version: 0,
            grid: match SpatialGrid::build(arena, 1.0, &[]) {
                Ok(grid) => grid,
                // Documented panic: the arena must be finite, which
                // `Rect`'s constructors guarantee — reachable only by
                // mutating the public dimension fields to non-finite.
                // agentlint::allow(no-panic-in-kernel)
                Err(e) => panic!("invalid arena: {e}"),
            },
            snap_positions: Vec::new(),
            snap_ranges: Vec::new(),
            scratch_links: DiGraph::new(n),
            out_rows: Vec::new(),
            advance_shards: 1,
            grid_incremental: true,
            scratch_moved: Vec::new(),
            stats: NetStats::default(),
        };
        if n > 0 {
            net.rebuild_links();
        }
        // The initial link derivation is construction, not a simulated
        // event: stats start from zero.
        net.stats = NetStats::default();
        net
    }

    /// The simulation arena.
    pub fn arena(&self) -> Rect {
        self.arena
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// All nodes, ordered by id, assembled from the columnar state.
    pub fn nodes(&self) -> Vec<WirelessNode> {
        (0..self.positions.len()).filter_map(|i| self.assemble(i)).collect()
    }

    /// Assembles the row view of node `i`, or `None` out of range.
    fn assemble(&self, i: usize) -> Option<WirelessNode> {
        Some(WirelessNode {
            id: NodeId::new(i),
            position: *self.positions.get(i)?,
            nominal_range: *self.nominal_ranges.get(i)?,
            kind: *self.kinds.get(i)?,
            battery: *self.batteries.get(i)?,
            motion: *self.motions.get(i)?,
        })
    }

    /// The node with the given id, assembled from the columnar state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> WirelessNode {
        let Some(node) = self.assemble(id.index()) else {
            // Documented panic on an out-of-range id; inspection
            // accessor, not on the advance path.
            // agentlint::allow(no-panic-in-kernel)
            panic!("node {id} out of range for {} nodes", self.positions.len());
        };
        node
    }

    /// Mutable access to a node, for fault-injection scenarios (drain a
    /// battery, teleport a node, change its motion). The returned guard
    /// writes the row back into the columns when dropped; the link table
    /// does **not** refresh until the next [`Self::advance`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> NodeMut<'_> {
        let Some(node) = self.assemble(id.index()) else {
            // Documented panic on an out-of-range id; fault-injection
            // accessor, not on the advance path.
            // agentlint::allow(no-panic-in-kernel)
            panic!("node {id} out of range for {} nodes", self.positions.len());
        };
        NodeMut { net: self, node }
    }

    /// Writes a row view back into the columns (identity is positional:
    /// the row's id picks the column).
    fn store(&mut self, node: WirelessNode) {
        let i = node.id.index();
        if let Some(p) = self.positions.get_mut(i) {
            *p = node.position;
        }
        if let Some(r) = self.nominal_ranges.get_mut(i) {
            *r = node.nominal_range;
        }
        if let Some(k) = self.kinds.get_mut(i) {
            *k = node.kind;
        }
        if let Some(b) = self.batteries.get_mut(i) {
            *b = node.battery;
        }
        if let Some(m) = self.motions.get_mut(i) {
            *m = node.motion;
        }
    }

    /// Ids of gateway nodes.
    pub fn gateways(&self) -> &[NodeId] {
        &self.gateways
    }

    /// The current link digraph.
    pub fn links(&self) -> &DiGraph {
        &self.links
    }

    /// The current simulated time (number of [`Self::advance`] calls).
    pub fn now(&self) -> Step {
        self.now
    }

    /// Version counter of the link digraph: bumped exactly when
    /// [`Self::links`] changes, so consumers caching structures derived
    /// from the topology (routing indices, forwarding graphs) know when
    /// their caches are stale. An all-stationary, mains-powered network
    /// keeps a constant version forever.
    pub fn topology_version(&self) -> u64 {
        self.topology_version
    }

    /// Cumulative substrate event counters since construction (steps,
    /// rebuilds, link flips, battery decay) — see [`NetStats`].
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of contiguous column shards [`Self::advance`] steps in
    /// parallel. 1 is the sequential path.
    pub fn advance_shards(&self) -> usize {
        self.advance_shards
    }

    /// Sets the shard count used by [`Self::advance`] (clamped to at
    /// least 1). Results are bitwise identical for **every** value:
    /// per-node RNG streams travel with their columns and the link
    /// commit is a single ordered merge, so sharding changes wall-clock
    /// time only — `topology_version`, [`NetStats`] and all reports
    /// stay byte-for-byte equal to the sequential path.
    pub fn set_advance_shards(&mut self, shards: usize) {
        self.advance_shards = shards.max(1);
    }

    /// Whether link rebuilds may refresh the spatial grid incrementally
    /// when at most [`GRID_INCREMENTAL_MAX_MOVED`] of the nodes moved.
    pub fn grid_incremental(&self) -> bool {
        self.grid_incremental
    }

    /// Enables or disables incremental grid maintenance. Grid contents,
    /// links, `topology_version` and every report are byte-identical
    /// either way (differential-tested); only the rebuild cost — and the
    /// `grid_incremental_updates` counter — changes. Disable to bench
    /// the from-scratch re-index in isolation.
    pub fn set_grid_incremental(&mut self, enabled: bool) {
        self.grid_incremental = enabled;
    }

    /// Advances the network one time step: batteries decay, mobile nodes
    /// move, and the link table is refreshed.
    ///
    /// The refresh is incremental: if no node's position or effective
    /// range changed since the last computation (the mapping study's
    /// all-stationary mains networks, or any quiescent stretch), the link
    /// table is kept as-is without touching the heap; otherwise the graph
    /// is rebuilt into a reused double buffer and swapped in only when
    /// the edge set actually differs. With [`Self::set_advance_shards`]
    /// above 1 both the node step and the out-row derivation run on
    /// contiguous column shards in parallel, followed by the same
    /// ordered commit as the sequential path.
    #[agentnet::hot_path]
    pub fn advance(&mut self) {
        self.stats.advances += 1;
        self.step_nodes();
        if !self.positions.is_empty() && self.state_drifted() {
            self.rebuild_links();
        }
        self.now = self.now.next();
    }

    /// Recomputes the link table from the current node state even if
    /// nothing drifted — the forced counterpart of the incremental
    /// refresh inside [`Self::advance`], for callers that mutated state
    /// out of band and want links current without stepping time (and
    /// for benchmarking the rebuild in isolation).
    pub fn refresh_links(&mut self) {
        if !self.positions.is_empty() {
            self.rebuild_links();
        }
    }

    /// Steps batteries and motion for every node, splitting the columns
    /// into contiguous shards when configured. Battery decay counting
    /// merges in shard order, so the stats match the sequential path.
    #[agentnet::hot_path]
    fn step_nodes(&mut self) {
        let shards = self.advance_shards.min(self.positions.len()).max(1);
        if shards <= 1 {
            let arena = self.arena;
            let mut decayed = 0u64;
            for (((p, b), m), rng) in self
                .positions
                .iter_mut()
                .zip(&mut self.batteries)
                .zip(&mut self.motions)
                .zip(&mut self.node_rngs)
            {
                let charge_before = b.charge();
                b.step();
                if b.charge() < charge_before {
                    decayed += 1;
                }
                *p = m.advance(*p, arena, rng);
            }
            self.stats.battery_decay_steps += decayed;
        } else {
            self.stats.battery_decay_steps += self.step_nodes_sharded(shards);
        }
    }

    /// Parallel node step over disjoint contiguous column chunks; returns
    /// the battery-decay count summed in shard order. Each shard owns its
    /// slice of every column (including the RNG streams), so the values
    /// drawn are exactly the sequential path's.
    fn step_nodes_sharded(&mut self, shards: usize) -> u64 {
        let n = self.positions.len();
        let chunk = n.div_ceil(shards);
        let arena = self.arena;
        let mut decayed = vec![0u64; shards];
        std::thread::scope(|scope| {
            for ((((ps, bs), ms), rngs), d) in self
                .positions
                .chunks_mut(chunk)
                .zip(self.batteries.chunks_mut(chunk))
                .zip(self.motions.chunks_mut(chunk))
                .zip(self.node_rngs.chunks_mut(chunk))
                .zip(&mut decayed)
            {
                scope.spawn(move || {
                    for (((p, b), m), rng) in ps.iter_mut().zip(bs).zip(ms).zip(rngs) {
                        let charge_before = b.charge();
                        b.step();
                        if b.charge() < charge_before {
                            *d += 1;
                        }
                        *p = m.advance(*p, arena, rng);
                    }
                });
            }
        });
        decayed.iter().sum()
    }

    /// `true` if any node's position or effective range differs from the
    /// snapshot taken at the last link computation. Exact float equality
    /// is correct here: stationary motion returns the position unchanged
    /// and mains batteries never decay, so quiescent state is bitwise
    /// stable.
    #[agentnet::hot_path]
    fn state_drifted(&self) -> bool {
        self.positions.len() != self.snap_positions.len()
            || self.positions.iter().zip(&self.snap_positions).any(|(a, b)| a != b)
            || self
                .nominal_ranges
                .iter()
                .zip(&self.batteries)
                .zip(&self.snap_ranges)
                .any(|((&nr, b), &r)| nr * b.range_factor() != r)
    }

    /// Recomputes the link graph from current node state into the scratch
    /// buffer (reusing grid buckets, out-row scratch and adjacency
    /// storage), refreshes the drift snapshots, and swaps the result in
    /// if the topology changed. The out-row derivation may fan out over
    /// shards; everything from the row commit on is a single ordered
    /// sequential phase, which is what keeps `topology_version` and the
    /// stats byte-identical across shard counts.
    #[agentnet::hot_path]
    fn rebuild_links(&mut self) {
        self.snap_ranges.clear();
        self.snap_ranges.extend(
            self.nominal_ranges.iter().zip(&self.batteries).map(|(&nr, b)| nr * b.range_factor()),
        );
        let max_range = self.snap_ranges.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-9);
        // Cell size of the max range keeps candidate sets tight while the
        // 3x3 cell neighbourhood of a query still covers the whole disc.
        //
        // Incremental path: when few nodes moved since the last link
        // computation (diffed against the still-unrefreshed snapshot),
        // the grid moves just those nodes between cells. The grid
        // refuses when geometry changed (cell size follows `max_range`,
        // so any battery decay forces a full re-index) or the grid is in
        // a clamped regime, keeping contents and clamp accounting
        // byte-identical to the from-scratch path.
        if !self.try_incremental_grid(max_range) {
            let shards = self.advance_shards.min(self.positions.len()).max(1);
            match self.grid.rebuild_sharded(self.arena, max_range, &self.positions, shards) {
                Ok(clamped) => {
                    if clamped {
                        self.stats.grid_cell_clamps += 1;
                    }
                }
                // Documented panic: construction validated the arena
                // finite and `max_range` is clamped positive above, so
                // degenerate geometry cannot reach a live network.
                // agentlint::allow(no-panic-in-kernel)
                Err(e) => panic!("grid rebuild on live network: {e}"),
            }
        }
        self.snap_positions.clear();
        self.snap_positions.extend_from_slice(&self.positions);
        self.derive_out_rows();
        self.scratch_links.set_sorted_out_rows(&self.out_rows);
        self.stats.link_rebuilds += 1;
        if self.scratch_links != self.links {
            // Per-link churn accounting happens only on the (already
            // O(E)-compared) changed topologies, never on quiescent steps.
            let (formed, broken) = Self::edge_diff(&self.scratch_links, &self.links);
            self.stats.links_formed += formed;
            self.stats.links_broken += broken;
            std::mem::swap(&mut self.scratch_links, &mut self.links);
            self.topology_version += 1;
            self.stats.topology_bumps += 1;
        }
    }

    /// Attempts the incremental grid refresh: diffs current positions
    /// against the last snapshot, and if at most
    /// [`GRID_INCREMENTAL_MAX_MOVED`] of the nodes moved, asks the grid
    /// to splice exactly those. Returns `false` (grid untouched) when
    /// disabled, too many nodes moved, or the grid declined — the caller
    /// falls back to the full sharded re-index.
    #[agentnet::hot_path]
    fn try_incremental_grid(&mut self, max_range: f64) -> bool {
        if !self.grid_incremental || self.positions.len() != self.snap_positions.len() {
            return false;
        }
        // agentlint::allow(no-lossy-cast) — fraction of a node count.
        let budget = (self.positions.len() as f64 * GRID_INCREMENTAL_MAX_MOVED) as usize;
        self.scratch_moved.clear();
        for (i, (p, old)) in self.positions.iter().zip(&self.snap_positions).enumerate() {
            if p != old {
                if self.scratch_moved.len() == budget {
                    return false;
                }
                self.scratch_moved.push(i);
            }
        }
        let applied = self.grid.incremental_update(
            self.arena,
            max_range,
            &self.positions,
            &self.scratch_moved,
        );
        if applied {
            self.stats.grid_incremental_updates += 1;
        }
        applied
    }

    /// Flat CSR cell arrays `(starts, entries)` of the cached spatial
    /// grid — see [`SpatialGrid::flat_cells`]. Exposed so differential
    /// tests and the validation battery can pin grid contents
    /// byte-identical across shard counts and maintenance paths.
    pub fn grid_cells(&self) -> (&[u32], &[u32]) {
        self.grid.flat_cells()
    }

    /// Derives every node's sorted out-neighbour row into the reused
    /// `out_rows` scratch, fanning out over contiguous shards when
    /// configured. Row `i` depends only on the (frozen) snapshot and the
    /// grid, so the partition cannot change any row's content.
    #[agentnet::hot_path]
    fn derive_out_rows(&mut self) {
        let n = self.snap_positions.len();
        if self.out_rows.len() != n {
            // Warm-up only: rows are reused across rebuilds.
            // agentlint::allow(no-alloc-in-hot-path)
            self.out_rows.resize_with(n, Vec::new);
        }
        let shards = self.advance_shards.min(n).max(1);
        if shards <= 1 {
            Self::fill_rows(
                &self.grid,
                &self.snap_positions,
                &self.snap_positions,
                &self.snap_ranges,
                0,
                &mut self.out_rows,
            );
        } else {
            self.derive_out_rows_sharded(shards);
        }
    }

    /// Parallel out-row derivation over disjoint contiguous row chunks.
    fn derive_out_rows_sharded(&mut self, shards: usize) {
        let n = self.snap_positions.len();
        let chunk = n.div_ceil(shards);
        let grid = &self.grid;
        let all = &self.snap_positions;
        std::thread::scope(|scope| {
            for (k, ((pos, ranges), rows)) in all
                .chunks(chunk)
                .zip(self.snap_ranges.chunks(chunk))
                .zip(self.out_rows.chunks_mut(chunk))
                .enumerate()
            {
                scope.spawn(move || Self::fill_rows(grid, all, pos, ranges, k * chunk, rows));
            }
        });
    }

    /// Fills the out-neighbour rows for nodes `offset..offset +
    /// positions.len()`: grid candidates filtered by the exact
    /// effective-range disc, sorted by id. Identical float math to the
    /// sequential per-edge test, so rows are bitwise partition-invariant.
    #[agentnet::hot_path]
    fn fill_rows(
        grid: &SpatialGrid,
        all_positions: &[Point2],
        positions: &[Point2],
        ranges: &[f64],
        offset: usize,
        rows: &mut [Vec<NodeId>],
    ) {
        for (local, ((&p, &r), row)) in positions.iter().zip(ranges).zip(rows).enumerate() {
            let i = offset + local;
            let r_sq = r * r;
            row.clear();
            for j in grid.candidates_within(p, r) {
                let covered =
                    j != i && all_positions.get(j).is_some_and(|&q| p.distance_sq(q) <= r_sq);
                if covered {
                    row.push(NodeId::new(j));
                }
            }
            row.sort_unstable();
        }
    }

    /// Directed edges present in `new` but not `old`, and vice versa.
    /// Neighbor lists are short (a node covers a handful of peers), so
    /// the per-node quadratic membership scan beats sorting or hashing —
    /// and allocates nothing.
    fn edge_diff(new: &DiGraph, old: &DiGraph) -> (u64, u64) {
        let mut formed = 0u64;
        let mut broken = 0u64;
        for i in 0..new.node_count() {
            let v = NodeId::new(i);
            let after = new.out_neighbors(v);
            let before = old.out_neighbors(v);
            formed += after.iter().filter(|n| !before.contains(n)).count() as u64;
            broken += before.iter().filter(|n| !after.contains(n)).count() as u64;
        }
        (formed, broken)
    }

    /// Fraction of non-gateway nodes with *instantaneous graph* reachability
    /// to at least one gateway — an upper bound on routed connectivity,
    /// useful as a diagnostic for how connectable the topology is.
    pub fn reachability_upper_bound(&self) -> f64 {
        agentnet_graph::connectivity::fraction_reaching(&self.links, &self.gateways)
    }
}

/// Write-back guard returned by [`WirelessNetwork::node_mut`]: derefs to
/// a [`WirelessNode`] row view and stores any mutation back into the
/// network's columns on drop.
pub struct NodeMut<'a> {
    net: &'a mut WirelessNetwork,
    node: WirelessNode,
}

impl Deref for NodeMut<'_> {
    type Target = WirelessNode;
    fn deref(&self) -> &WirelessNode {
        &self.node
    }
}

impl DerefMut for NodeMut<'_> {
    fn deref_mut(&mut self) -> &mut WirelessNode {
        &mut self.node
    }
}

impl Drop for NodeMut<'_> {
    fn drop(&mut self) {
        self.net.store(self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::{BatteryModel, BatteryState};
    use crate::builder::NetworkBuilder;
    use crate::mobility::Motion;
    use crate::node::NodeKind;
    use agentnet_graph::geometry::Point2;

    fn still_node(i: usize, x: f64, y: f64, range: f64) -> WirelessNode {
        WirelessNode {
            id: NodeId::new(i),
            position: Point2::new(x, y),
            nominal_range: range,
            kind: NodeKind::Stationary,
            battery: BatteryState::mains(),
            motion: Motion::Stationary,
        }
    }

    #[test]
    fn links_follow_individual_ranges() {
        // Node 0 has a long radio, node 1 a short one: link is one-way.
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 8.0, 0.0, 5.0)];
        let net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!net.links().has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn stationary_mains_network_topology_is_stable() {
        let nodes = vec![
            still_node(0, 0.0, 0.0, 10.0),
            still_node(1, 5.0, 0.0, 10.0),
            still_node(2, 50.0, 50.0, 10.0),
        ];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        let before = net.links().clone();
        for _ in 0..10 {
            net.advance();
        }
        assert_eq!(&before, net.links());
        assert_eq!(net.now(), Step::new(10));
    }

    #[test]
    fn battery_decay_breaks_links() {
        let mut low = still_node(0, 0.0, 0.0, 10.0);
        low.battery = BatteryState::new(BatteryModel::Linear { per_step: 0.2, floor: 0.1 });
        let nodes = vec![low, still_node(1, 9.0, 0.0, 20.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        for _ in 0..4 {
            net.advance();
        }
        // charge 0.2 -> range 10*sqrt(0.2) ≈ 4.47 < 9
        assert!(!net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        // The big-radio node still covers the weak one.
        assert!(net.links().has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn mobile_node_movement_reforms_links() {
        let mut mover = still_node(0, 0.0, 50.0, 12.0);
        mover.kind = NodeKind::Mobile;
        mover.motion = Motion::RandomVelocity { velocity: Point2::new(5.0, 0.0) };
        let nodes = vec![mover, still_node(1, 60.0, 50.0, 12.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        assert!(!net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        for _ in 0..10 {
            net.advance();
        }
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn incremental_grid_path_engages_and_matches_full_rebuild() {
        // One mobile node out of 100 (1% < GRID_INCREMENTAL_MAX_MOVED),
        // mains power everywhere so the cell size never drifts: the
        // incremental path must engage, and the resulting grid, links
        // and topology must match an incremental-disabled twin exactly.
        let build = |incremental: bool| {
            NetworkBuilder::new(100)
                .gateways(4)
                .mobile_fraction(0.01)
                .mobile_battery(BatteryModel::Mains)
                .min_initial_reachability(0.0)
                .grid_incremental(incremental)
                .build(11)
                .unwrap()
        };
        let mut with_inc = build(true);
        let mut without = build(false);
        for _ in 0..20 {
            with_inc.advance();
            without.advance();
            assert_eq!(with_inc.grid_cells(), without.grid_cells());
            assert_eq!(with_inc.links(), without.links());
            assert_eq!(with_inc.topology_version(), without.topology_version());
        }
        let stats = with_inc.stats();
        assert!(
            stats.grid_incremental_updates > 0,
            "1% mobility under mains power must take the incremental grid path"
        );
        assert_eq!(without.stats().grid_incremental_updates, 0);
        assert_eq!(stats.grid_cell_clamps, 0);
    }

    #[test]
    fn high_mobility_falls_back_to_full_rebuilds() {
        // Every node mobile: far over the moved-fraction budget, so the
        // incremental path must never engage even when enabled.
        let mut net = NetworkBuilder::new(40)
            .mobile_fraction(1.0)
            .mobile_battery(BatteryModel::Mains)
            .min_initial_reachability(0.0)
            .build(3)
            .unwrap();
        for _ in 0..10 {
            net.advance();
        }
        assert_eq!(net.stats().grid_incremental_updates, 0);
    }

    #[test]
    fn gateways_are_collected() {
        let mut g = still_node(0, 0.0, 0.0, 10.0);
        g.kind = NodeKind::Gateway;
        let net = WirelessNetwork::from_nodes(
            Rect::square(10.0),
            vec![g, still_node(1, 1.0, 0.0, 10.0)],
            1,
        );
        assert_eq!(net.gateways(), &[NodeId::new(0)]);
        assert!((net.reachability_upper_bound() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_mut_allows_fault_injection() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        net.node_mut(NodeId::new(0)).battery = BatteryState::with_charge(BatteryModel::Mains, 0.0);
        // Takes effect at the next advance.
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        net.advance();
        assert!(!net.links().has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn node_mut_guard_writes_every_field_back() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        {
            let mut n = net.node_mut(NodeId::new(1));
            n.position = Point2::new(7.0, 7.0);
            n.nominal_range = 42.0;
            n.kind = NodeKind::Mobile;
            n.motion = Motion::RandomVelocity { velocity: Point2::new(1.0, 0.0) };
        }
        let n = net.node(NodeId::new(1));
        assert_eq!(n.position, Point2::new(7.0, 7.0));
        assert_eq!(n.nominal_range, 42.0);
        assert_eq!(n.kind, NodeKind::Mobile);
        assert_eq!(n.motion, Motion::RandomVelocity { velocity: Point2::new(1.0, 0.0) });
    }

    #[test]
    fn topology_version_tracks_actual_changes() {
        let mut low = still_node(0, 0.0, 0.0, 10.0);
        low.battery = BatteryState::new(BatteryModel::Linear { per_step: 0.2, floor: 0.1 });
        let nodes = vec![low, still_node(1, 9.0, 0.0, 20.0), still_node(2, 60.0, 60.0, 5.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        let v0 = net.topology_version();
        net.advance();
        // Battery decay shrinks node 0's range but 9.0 is still covered
        // at charge 0.8 (10*sqrt(0.8) ≈ 8.94 < 9 — link drops).
        let v1 = net.topology_version();
        assert!(v1 > v0, "decay-driven link change must bump the version");
        // Once the battery floors, the topology freezes again.
        for _ in 0..10 {
            net.advance();
        }
        let frozen = net.topology_version();
        for _ in 0..10 {
            net.advance();
        }
        assert_eq!(net.topology_version(), frozen, "floored battery kept changing the version");
    }

    #[test]
    fn stationary_advance_keeps_version_constant() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        let v = net.topology_version();
        for _ in 0..50 {
            net.advance();
        }
        assert_eq!(net.topology_version(), v);
    }

    #[test]
    fn fault_injection_matches_from_scratch_rebuild() {
        // Teleport one node (outside the arena, even) and drain another,
        // then check the incremental refresh agrees with a from-scratch
        // rebuild of the same node state.
        let mut net = NetworkBuilder::new(30)
            .gateways(2)
            .target_edges(240)
            .mobile_fraction(0.0)
            .min_initial_reachability(0.0)
            .build(7)
            .unwrap();
        for _ in 0..3 {
            net.advance();
        }
        net.node_mut(NodeId::new(4)).position = Point2::new(-25.0, 1500.0);
        net.node_mut(NodeId::new(9)).battery = BatteryState::with_charge(BatteryModel::Mains, 0.0);
        net.advance();
        let scratch = WirelessNetwork::from_nodes(net.arena(), net.nodes().to_vec(), 99);
        assert_eq!(net.links(), scratch.links());
        net.advance();
        let scratch = WirelessNetwork::from_nodes(net.arena(), net.nodes().to_vec(), 99);
        assert_eq!(net.links(), scratch.links());
    }

    #[test]
    fn refresh_links_applies_out_of_band_mutations() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        net.node_mut(NodeId::new(1)).position = Point2::new(90.0, 90.0);
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)), "stale until refreshed");
        net.refresh_links();
        assert!(!net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(net.now(), Step::ZERO, "refresh must not advance time");
    }

    #[test]
    fn fresh_network_reports_zero_stats() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        // Construction derives the initial links but counts no events.
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn quiescent_network_counts_only_advances() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        for _ in 0..10 {
            net.advance();
        }
        let stats = net.stats();
        assert_eq!(stats.advances, 10);
        assert_eq!(stats.link_rebuilds, 0, "stationary mains state never drifts");
        assert_eq!(stats.topology_bumps, 0);
        assert_eq!(stats.links_formed + stats.links_broken, 0);
        assert_eq!(stats.battery_decay_steps, 0);
        assert_eq!(stats.grid_cell_clamps, 0);
    }

    #[test]
    fn stats_count_decay_and_link_flips() {
        let mut low = still_node(0, 0.0, 0.0, 10.0);
        low.battery = BatteryState::new(BatteryModel::Linear { per_step: 0.2, floor: 0.1 });
        let nodes = vec![low, still_node(1, 9.0, 0.0, 20.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        for _ in 0..10 {
            net.advance();
        }
        let stats = net.stats();
        assert_eq!(stats.advances, 10);
        // Linear 0.2/step from 1.0 floors at 0.1 after five decaying steps.
        assert_eq!(stats.battery_decay_steps, 5);
        // Every decay step drifts state and rebuilds; only some rebuilds
        // change the edge set.
        assert_eq!(stats.link_rebuilds, 5);
        // The initial link derivation at construction bumped the version
        // to 1 without counting as an event; only the decay-driven
        // change afterwards registers in the stats.
        assert_eq!(stats.topology_bumps, 1);
        assert_eq!(net.topology_version(), 2);
        // The weak node lost its one outgoing link and formed none.
        assert_eq!(stats.links_broken, 1);
        assert_eq!(stats.links_formed, 0);
    }

    #[test]
    fn mobility_forms_and_breaks_links_in_stats() {
        let mut net = NetworkBuilder::new(30)
            .gateways(2)
            .target_edges(240)
            .mobile_fraction(0.5)
            .min_initial_reachability(0.0)
            .build(7)
            .unwrap();
        let initial_edges = net.links().edge_count() as i64;
        for _ in 0..30 {
            net.advance();
        }
        let stats = net.stats();
        assert_eq!(stats.advances, 30);
        assert!(stats.links_formed > 0, "mobile nodes must have formed links: {stats:?}");
        assert!(stats.links_broken > 0, "mobile nodes must have broken links: {stats:?}");
        // Net churn is consistent with the observed edge-count change.
        let delta = net.links().edge_count() as i64 - initial_edges;
        assert_eq!(stats.links_formed as i64 - stats.links_broken as i64, delta);
    }

    #[test]
    fn sharded_advance_is_bitwise_identical_to_sequential() {
        let build = || {
            NetworkBuilder::new(60)
                .gateways(3)
                .target_edges(480)
                .mobile_fraction(0.5)
                .min_initial_reachability(0.0)
                .build(11)
                .unwrap()
        };
        let mut sequential = build();
        for _ in 0..25 {
            sequential.advance();
        }
        // Shard counts spanning 1 < k < n, k close to n, and k > n.
        for shards in [2, 3, 7, 59, 61, 1000] {
            let mut sharded = build();
            sharded.set_advance_shards(shards);
            assert_eq!(sharded.advance_shards(), shards);
            for _ in 0..25 {
                sharded.advance();
            }
            assert_eq!(sharded.links(), sequential.links(), "links differ at {shards} shards");
            assert_eq!(
                sharded.topology_version(),
                sequential.topology_version(),
                "topology_version differs at {shards} shards"
            );
            assert_eq!(sharded.stats(), sequential.stats(), "stats differ at {shards} shards");
            assert_eq!(
                sharded.nodes(),
                sequential.nodes(),
                "node state differs at {shards} shards"
            );
        }
    }

    #[test]
    fn set_advance_shards_clamps_zero_to_one() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(10.0), nodes, 1);
        net.set_advance_shards(0);
        assert_eq!(net.advance_shards(), 1);
        net.advance();
        assert_eq!(net.stats().advances, 1);
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn out_of_order_ids_panic() {
        let nodes = vec![still_node(1, 0.0, 0.0, 1.0)];
        let _ = WirelessNetwork::from_nodes(Rect::square(10.0), nodes, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_accessor_panics_out_of_range() {
        let net = WirelessNetwork::from_nodes(Rect::square(10.0), vec![], 1);
        let _ = net.node(NodeId::new(3));
    }

    #[test]
    fn empty_network_is_fine() {
        let mut net = WirelessNetwork::from_nodes(Rect::square(10.0), vec![], 1);
        net.advance();
        assert_eq!(net.node_count(), 0);
        assert_eq!(net.links().node_count(), 0);
    }
}
