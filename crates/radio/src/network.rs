//! The dynamic wireless network: nodes plus the link digraph they induce.

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use crate::node::WirelessNode;
use crate::spatial::SpatialGrid;
use agentnet_engine::Step;
use agentnet_graph::geometry::{Point2, Rect};
use agentnet_graph::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Cumulative counters of substrate-level events since construction —
/// the radio layer's contribution to the run's metrics registry.
///
/// Counting happens inline in [`WirelessNetwork::advance`] (cheap
/// integer bumps; no allocation, no clock), so the counters are always
/// current and cost nothing to higher layers that never read them. The
/// initial link derivation at construction is setup, not an event:
/// a freshly built network reports all-zero stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Simulation steps taken ([`WirelessNetwork::advance`] calls).
    pub advances: u64,
    /// Link-table recomputations (node state drifted since the last).
    pub link_rebuilds: u64,
    /// Rebuilds whose edge set actually changed — exactly the number of
    /// [`WirelessNetwork::topology_version`] bumps.
    pub topology_bumps: u64,
    /// Directed links that appeared across topology changes.
    pub links_formed: u64,
    /// Directed links that disappeared across topology changes.
    pub links_broken: u64,
    /// Node-steps on which battery charge actually decayed (mains and
    /// floored batteries contribute nothing).
    pub battery_decay_steps: u64,
}

/// A wireless ad-hoc network whose topology is re-derived from node
/// positions, battery charge and radio ranges every step.
///
/// The directed link `A -> B` exists iff `B`'s position lies inside `A`'s
/// *current effective* radio range. Mobility and battery decay make "links
/// broken and reformed frequently", exactly the environment of the paper's
/// routing study. A network whose nodes are all stationary and
/// mains-powered keeps a constant topology — the mapping study's setting.
///
/// Created through [`crate::NetworkBuilder`].
#[derive(Clone, Debug)]
pub struct WirelessNetwork {
    arena: Rect,
    nodes: Vec<WirelessNode>,
    links: DiGraph,
    gateways: Vec<NodeId>,
    now: Step,
    mobility_rng: SmallRng,
    /// Bumped every time `links` actually changes; lets higher layers
    /// (e.g. the routing index) skip revalidation on frozen topologies.
    topology_version: u64,
    /// Cached spatial index, re-bucketed in place when node state drifts.
    grid: SpatialGrid,
    /// Positions at the last link computation (also the grid's points).
    snap_positions: Vec<Point2>,
    /// Effective radio ranges at the last link computation.
    snap_ranges: Vec<f64>,
    /// Double buffer: links are rebuilt into this graph (reusing its edge
    /// storage) and swapped in only when the topology actually changed.
    scratch_links: DiGraph,
    /// Cumulative substrate event counters since construction.
    stats: NetStats,
}

impl WirelessNetwork {
    /// Assembles a network from parts; link table is computed immediately.
    ///
    /// Most callers should use [`crate::NetworkBuilder`] instead. The
    /// `mobility_seed` feeds the stream used by random-waypoint target
    /// selection so runs are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if node ids are not exactly `0..nodes.len()` in order.
    pub fn from_nodes(arena: Rect, nodes: Vec<WirelessNode>, mobility_seed: u64) -> Self {
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id.index(), i, "node ids must be dense and ordered");
        }
        let gateways = nodes.iter().filter(|n| n.kind.is_gateway()).map(|n| n.id).collect();
        let n = nodes.len();
        let mut net = WirelessNetwork {
            arena,
            nodes,
            links: DiGraph::new(n),
            gateways,
            now: Step::ZERO,
            mobility_rng: SmallRng::seed_from_u64(mobility_seed),
            topology_version: 0,
            grid: SpatialGrid::build(arena, 1.0, &[]),
            snap_positions: Vec::new(),
            snap_ranges: Vec::new(),
            scratch_links: DiGraph::new(n),
            stats: NetStats::default(),
        };
        if n > 0 {
            net.rebuild_links();
        }
        // The initial link derivation is construction, not a simulated
        // event: stats start from zero.
        net.stats = NetStats::default();
        net
    }

    /// The simulation arena.
    pub fn arena(&self) -> Rect {
        self.arena
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes, ordered by id.
    pub fn nodes(&self) -> &[WirelessNode] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[allow(clippy::indexing_slicing)] // the documented panic above
    pub fn node(&self, id: NodeId) -> &WirelessNode {
        // Documented panic on an out-of-range id; inspection accessor,
        // not on the advance path.
        // agentlint::allow(no-panic-in-kernel)
        &self.nodes[id.index()]
    }

    /// Mutable access to a node, for fault-injection scenarios (drain a
    /// battery, teleport a node, change its motion). The link table does
    /// **not** refresh until the next [`Self::advance`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[allow(clippy::indexing_slicing)] // the documented panic above
    pub fn node_mut(&mut self, id: NodeId) -> &mut WirelessNode {
        // Documented panic on an out-of-range id; fault-injection
        // accessor, not on the advance path.
        // agentlint::allow(no-panic-in-kernel)
        &mut self.nodes[id.index()]
    }

    /// Ids of gateway nodes.
    pub fn gateways(&self) -> &[NodeId] {
        &self.gateways
    }

    /// The current link digraph.
    pub fn links(&self) -> &DiGraph {
        &self.links
    }

    /// The current simulated time (number of [`Self::advance`] calls).
    pub fn now(&self) -> Step {
        self.now
    }

    /// Version counter of the link digraph: bumped exactly when
    /// [`Self::links`] changes, so consumers caching structures derived
    /// from the topology (routing indices, forwarding graphs) know when
    /// their caches are stale. An all-stationary, mains-powered network
    /// keeps a constant version forever.
    pub fn topology_version(&self) -> u64 {
        self.topology_version
    }

    /// Cumulative substrate event counters since construction (steps,
    /// rebuilds, link flips, battery decay) — see [`NetStats`].
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Advances the network one time step: batteries decay, mobile nodes
    /// move, and the link table is refreshed.
    ///
    /// The refresh is incremental: if no node's position or effective
    /// range changed since the last computation (the mapping study's
    /// all-stationary mains networks, or any quiescent stretch), the link
    /// table is kept as-is without touching the heap; otherwise the graph
    /// is rebuilt into a reused double buffer and swapped in only when
    /// the edge set actually differs.
    #[agentnet::hot_path]
    pub fn advance(&mut self) {
        self.stats.advances += 1;
        for node in &mut self.nodes {
            let charge_before = node.battery.charge();
            node.battery.step();
            if node.battery.charge() < charge_before {
                self.stats.battery_decay_steps += 1;
            }
            node.position = node.motion.advance(node.position, self.arena, &mut self.mobility_rng);
        }
        if !self.nodes.is_empty() && self.state_drifted() {
            self.rebuild_links();
        }
        self.now = self.now.next();
    }

    /// `true` if any node's position or effective range differs from the
    /// snapshot taken at the last link computation. Exact float equality
    /// is correct here: stationary motion returns the position unchanged
    /// and mains batteries never decay, so quiescent state is bitwise
    /// stable.
    #[agentnet::hot_path]
    fn state_drifted(&self) -> bool {
        self.nodes.len() != self.snap_positions.len()
            || self
                .nodes
                .iter()
                .zip(self.snap_positions.iter().zip(&self.snap_ranges))
                .any(|(node, (&p, &r))| node.position != p || node.effective_range() != r)
    }

    /// Recomputes the link graph from current node state into the scratch
    /// buffer (reusing grid buckets and adjacency storage), refreshes the
    /// drift snapshots, and swaps the result in if the topology changed.
    #[agentnet::hot_path]
    fn rebuild_links(&mut self) {
        self.snap_positions.clear();
        self.snap_positions.extend(self.nodes.iter().map(|nd| nd.position));
        self.snap_ranges.clear();
        self.snap_ranges.extend(self.nodes.iter().map(|nd| nd.effective_range()));
        let max_range = self.snap_ranges.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-9);
        // Cell size of the max range keeps candidate sets tight while the
        // 3x3 cell neighbourhood of a query still covers the whole disc.
        self.grid.rebuild(self.arena, max_range, &self.snap_positions);
        self.scratch_links.clear_edges();
        for (node, &r) in self.nodes.iter().zip(&self.snap_ranges) {
            for j in self.grid.candidates_within(node.position, r) {
                let to = NodeId::new(j);
                let covered =
                    to != node.id && self.snap_positions.get(j).is_some_and(|&p| node.covers(p));
                if covered {
                    self.scratch_links.add_edge(node.id, to);
                }
            }
        }
        self.stats.link_rebuilds += 1;
        if self.scratch_links != self.links {
            // Per-link churn accounting happens only on the (already
            // O(E)-compared) changed topologies, never on quiescent steps.
            let (formed, broken) = Self::edge_diff(&self.scratch_links, &self.links);
            self.stats.links_formed += formed;
            self.stats.links_broken += broken;
            std::mem::swap(&mut self.scratch_links, &mut self.links);
            self.topology_version += 1;
            self.stats.topology_bumps += 1;
        }
    }

    /// Directed edges present in `new` but not `old`, and vice versa.
    /// Neighbor lists are short (a node covers a handful of peers), so
    /// the per-node quadratic membership scan beats sorting or hashing —
    /// and allocates nothing.
    fn edge_diff(new: &DiGraph, old: &DiGraph) -> (u64, u64) {
        let mut formed = 0u64;
        let mut broken = 0u64;
        for i in 0..new.node_count() {
            let v = NodeId::new(i);
            let after = new.out_neighbors(v);
            let before = old.out_neighbors(v);
            formed += after.iter().filter(|n| !before.contains(n)).count() as u64;
            broken += before.iter().filter(|n| !after.contains(n)).count() as u64;
        }
        (formed, broken)
    }

    /// Fraction of non-gateway nodes with *instantaneous graph* reachability
    /// to at least one gateway — an upper bound on routed connectivity,
    /// useful as a diagnostic for how connectable the topology is.
    pub fn reachability_upper_bound(&self) -> f64 {
        agentnet_graph::connectivity::fraction_reaching(&self.links, &self.gateways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::{BatteryModel, BatteryState};
    use crate::builder::NetworkBuilder;
    use crate::mobility::Motion;
    use crate::node::NodeKind;
    use agentnet_graph::geometry::Point2;

    fn still_node(i: usize, x: f64, y: f64, range: f64) -> WirelessNode {
        WirelessNode {
            id: NodeId::new(i),
            position: Point2::new(x, y),
            nominal_range: range,
            kind: NodeKind::Stationary,
            battery: BatteryState::mains(),
            motion: Motion::Stationary,
        }
    }

    #[test]
    fn links_follow_individual_ranges() {
        // Node 0 has a long radio, node 1 a short one: link is one-way.
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 8.0, 0.0, 5.0)];
        let net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!net.links().has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn stationary_mains_network_topology_is_stable() {
        let nodes = vec![
            still_node(0, 0.0, 0.0, 10.0),
            still_node(1, 5.0, 0.0, 10.0),
            still_node(2, 50.0, 50.0, 10.0),
        ];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        let before = net.links().clone();
        for _ in 0..10 {
            net.advance();
        }
        assert_eq!(&before, net.links());
        assert_eq!(net.now(), Step::new(10));
    }

    #[test]
    fn battery_decay_breaks_links() {
        let mut low = still_node(0, 0.0, 0.0, 10.0);
        low.battery = BatteryState::new(BatteryModel::Linear { per_step: 0.2, floor: 0.1 });
        let nodes = vec![low, still_node(1, 9.0, 0.0, 20.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        for _ in 0..4 {
            net.advance();
        }
        // charge 0.2 -> range 10*sqrt(0.2) ≈ 4.47 < 9
        assert!(!net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        // The big-radio node still covers the weak one.
        assert!(net.links().has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn mobile_node_movement_reforms_links() {
        let mut mover = still_node(0, 0.0, 50.0, 12.0);
        mover.kind = NodeKind::Mobile;
        mover.motion = Motion::RandomVelocity { velocity: Point2::new(5.0, 0.0) };
        let nodes = vec![mover, still_node(1, 60.0, 50.0, 12.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        assert!(!net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        for _ in 0..10 {
            net.advance();
        }
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn gateways_are_collected() {
        let mut g = still_node(0, 0.0, 0.0, 10.0);
        g.kind = NodeKind::Gateway;
        let net = WirelessNetwork::from_nodes(
            Rect::square(10.0),
            vec![g, still_node(1, 1.0, 0.0, 10.0)],
            1,
        );
        assert_eq!(net.gateways(), &[NodeId::new(0)]);
        assert!((net.reachability_upper_bound() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_mut_allows_fault_injection() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        net.node_mut(NodeId::new(0)).battery = BatteryState::with_charge(BatteryModel::Mains, 0.0);
        // Takes effect at the next advance.
        assert!(net.links().has_edge(NodeId::new(0), NodeId::new(1)));
        net.advance();
        assert!(!net.links().has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn topology_version_tracks_actual_changes() {
        let mut low = still_node(0, 0.0, 0.0, 10.0);
        low.battery = BatteryState::new(BatteryModel::Linear { per_step: 0.2, floor: 0.1 });
        let nodes = vec![low, still_node(1, 9.0, 0.0, 20.0), still_node(2, 60.0, 60.0, 5.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        let v0 = net.topology_version();
        net.advance();
        // Battery decay shrinks node 0's range but 9.0 is still covered
        // at charge 0.8 (10*sqrt(0.8) ≈ 8.94 < 9 — link drops).
        let v1 = net.topology_version();
        assert!(v1 > v0, "decay-driven link change must bump the version");
        // Once the battery floors, the topology freezes again.
        for _ in 0..10 {
            net.advance();
        }
        let frozen = net.topology_version();
        for _ in 0..10 {
            net.advance();
        }
        assert_eq!(net.topology_version(), frozen, "floored battery kept changing the version");
    }

    #[test]
    fn stationary_advance_keeps_version_constant() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        let v = net.topology_version();
        for _ in 0..50 {
            net.advance();
        }
        assert_eq!(net.topology_version(), v);
    }

    #[test]
    fn fault_injection_matches_from_scratch_rebuild() {
        // Teleport one node (outside the arena, even) and drain another,
        // then check the incremental refresh agrees with a from-scratch
        // rebuild of the same node state.
        let mut net = NetworkBuilder::new(30)
            .gateways(2)
            .target_edges(240)
            .mobile_fraction(0.0)
            .min_initial_reachability(0.0)
            .build(7)
            .unwrap();
        for _ in 0..3 {
            net.advance();
        }
        net.node_mut(NodeId::new(4)).position = Point2::new(-25.0, 1500.0);
        net.node_mut(NodeId::new(9)).battery = BatteryState::with_charge(BatteryModel::Mains, 0.0);
        net.advance();
        let scratch = WirelessNetwork::from_nodes(net.arena(), net.nodes().to_vec(), 99);
        assert_eq!(net.links(), scratch.links());
        net.advance();
        let scratch = WirelessNetwork::from_nodes(net.arena(), net.nodes().to_vec(), 99);
        assert_eq!(net.links(), scratch.links());
    }

    #[test]
    fn fresh_network_reports_zero_stats() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        // Construction derives the initial links but counts no events.
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn quiescent_network_counts_only_advances() {
        let nodes = vec![still_node(0, 0.0, 0.0, 10.0), still_node(1, 5.0, 0.0, 10.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        for _ in 0..10 {
            net.advance();
        }
        let stats = net.stats();
        assert_eq!(stats.advances, 10);
        assert_eq!(stats.link_rebuilds, 0, "stationary mains state never drifts");
        assert_eq!(stats.topology_bumps, 0);
        assert_eq!(stats.links_formed + stats.links_broken, 0);
        assert_eq!(stats.battery_decay_steps, 0);
    }

    #[test]
    fn stats_count_decay_and_link_flips() {
        let mut low = still_node(0, 0.0, 0.0, 10.0);
        low.battery = BatteryState::new(BatteryModel::Linear { per_step: 0.2, floor: 0.1 });
        let nodes = vec![low, still_node(1, 9.0, 0.0, 20.0)];
        let mut net = WirelessNetwork::from_nodes(Rect::square(100.0), nodes, 1);
        for _ in 0..10 {
            net.advance();
        }
        let stats = net.stats();
        assert_eq!(stats.advances, 10);
        // Linear 0.2/step from 1.0 floors at 0.1 after five decaying steps.
        assert_eq!(stats.battery_decay_steps, 5);
        // Every decay step drifts state and rebuilds; only some rebuilds
        // change the edge set.
        assert_eq!(stats.link_rebuilds, 5);
        // The initial link derivation at construction bumped the version
        // to 1 without counting as an event; only the decay-driven
        // change afterwards registers in the stats.
        assert_eq!(stats.topology_bumps, 1);
        assert_eq!(net.topology_version(), 2);
        // The weak node lost its one outgoing link and formed none.
        assert_eq!(stats.links_broken, 1);
        assert_eq!(stats.links_formed, 0);
    }

    #[test]
    fn mobility_forms_and_breaks_links_in_stats() {
        let mut net = NetworkBuilder::new(30)
            .gateways(2)
            .target_edges(240)
            .mobile_fraction(0.5)
            .min_initial_reachability(0.0)
            .build(7)
            .unwrap();
        let initial_edges = net.links().edge_count() as i64;
        for _ in 0..30 {
            net.advance();
        }
        let stats = net.stats();
        assert_eq!(stats.advances, 30);
        assert!(stats.links_formed > 0, "mobile nodes must have formed links: {stats:?}");
        assert!(stats.links_broken > 0, "mobile nodes must have broken links: {stats:?}");
        // Net churn is consistent with the observed edge-count change.
        let delta = net.links().edge_count() as i64 - initial_edges;
        assert_eq!(stats.links_formed as i64 - stats.links_broken as i64, delta);
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn out_of_order_ids_panic() {
        let nodes = vec![still_node(1, 0.0, 0.0, 1.0)];
        let _ = WirelessNetwork::from_nodes(Rect::square(10.0), nodes, 1);
    }

    #[test]
    fn empty_network_is_fine() {
        let mut net = WirelessNetwork::from_nodes(Rect::square(10.0), vec![], 1);
        net.advance();
        assert_eq!(net.node_count(), 0);
        assert_eq!(net.links().node_count(), 0);
    }
}
