//! Battery models: how a node's remaining charge scales its radio range.
//!
//! The paper assumes battery-powered nodes "power will decrease during the
//! experiment and as a result, their radio range decrease as time goes by",
//! and in the mapping study that "there will be some degradation on a
//! percentage of radio links due to rely on battery power for some nodes".

use serde::{Deserialize, Serialize};

/// How a node's charge evolves per simulation step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BatteryModel {
    /// Mains-powered: never decays.
    Mains,
    /// Charge drops by `per_step` each step, floored at `floor`
    /// (fractions of full charge).
    Linear {
        /// Charge lost per step.
        per_step: f64,
        /// Minimum charge fraction (a radio never turns fully off).
        floor: f64,
    },
    /// Charge multiplies by `(1 - rate)` each step, floored at `floor`.
    Exponential {
        /// Per-step decay rate in `[0, 1)`.
        rate: f64,
        /// Minimum charge fraction.
        floor: f64,
    },
}

impl BatteryModel {
    /// The paper-calibrated default for mobile nodes: lose ~20 % of charge
    /// over a 300-step routing run.
    pub fn paper_mobile() -> Self {
        BatteryModel::Linear { per_step: 0.2 / 300.0, floor: 0.5 }
    }

    /// Applies one step of decay to `charge`, returning the new charge.
    pub fn decay(&self, charge: f64) -> f64 {
        match *self {
            BatteryModel::Mains => charge,
            BatteryModel::Linear { per_step, floor } => (charge - per_step).max(floor),
            BatteryModel::Exponential { rate, floor } => (charge * (1.0 - rate)).max(floor),
        }
    }
}

/// A node's battery: remaining charge fraction plus its decay model.
///
/// The *range factor* is the square root of the charge: received power
/// falls off with distance squared, so range scales with the square root
/// of transmit power.
///
/// ```
/// use agentnet_radio::{BatteryModel, BatteryState};
/// let mut b = BatteryState::new(BatteryModel::Linear { per_step: 0.1, floor: 0.2 });
/// assert_eq!(b.charge(), 1.0);
/// b.step();
/// assert!((b.charge() - 0.9).abs() < 1e-12);
/// assert!((b.range_factor() - 0.9f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatteryState {
    charge: f64,
    model: BatteryModel,
}

impl BatteryState {
    /// Full battery with the given decay model.
    pub fn new(model: BatteryModel) -> Self {
        BatteryState { charge: 1.0, model }
    }

    /// Battery starting at `charge` (clamped to `[0, 1]`).
    pub fn with_charge(model: BatteryModel, charge: f64) -> Self {
        BatteryState { charge: charge.clamp(0.0, 1.0), model }
    }

    /// A mains-powered (non-decaying) battery.
    pub fn mains() -> Self {
        BatteryState::new(BatteryModel::Mains)
    }

    /// Remaining charge fraction in `[0, 1]`.
    pub fn charge(&self) -> f64 {
        self.charge
    }

    /// The decay model.
    pub fn model(&self) -> BatteryModel {
        self.model
    }

    /// Multiplier applied to the node's nominal radio range.
    pub fn range_factor(&self) -> f64 {
        self.charge.sqrt()
    }

    /// Advances the battery by one simulation step.
    pub fn step(&mut self) {
        self.charge = self.model.decay(self.charge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mains_never_decays() {
        let mut b = BatteryState::mains();
        for _ in 0..1000 {
            b.step();
        }
        assert_eq!(b.charge(), 1.0);
        assert_eq!(b.range_factor(), 1.0);
    }

    #[test]
    fn linear_decay_hits_floor() {
        let mut b = BatteryState::new(BatteryModel::Linear { per_step: 0.3, floor: 0.25 });
        b.step(); // 0.7
        b.step(); // 0.4
        b.step(); // floor
        b.step();
        assert_eq!(b.charge(), 0.25);
    }

    #[test]
    fn exponential_decay_is_multiplicative() {
        let mut b = BatteryState::new(BatteryModel::Exponential { rate: 0.5, floor: 0.1 });
        b.step();
        assert!((b.charge() - 0.5).abs() < 1e-12);
        b.step();
        assert!((b.charge() - 0.25).abs() < 1e-12);
        for _ in 0..10 {
            b.step();
        }
        assert_eq!(b.charge(), 0.1);
    }

    #[test]
    fn with_charge_clamps() {
        let b = BatteryState::with_charge(BatteryModel::Mains, 1.7);
        assert_eq!(b.charge(), 1.0);
        let b = BatteryState::with_charge(BatteryModel::Mains, -0.5);
        assert_eq!(b.charge(), 0.0);
    }

    #[test]
    fn range_factor_is_sqrt_of_charge() {
        let b = BatteryState::with_charge(BatteryModel::Mains, 0.49);
        assert!((b.range_factor() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn paper_mobile_loses_about_20_percent_over_run() {
        let mut b = BatteryState::new(BatteryModel::paper_mobile());
        for _ in 0..300 {
            b.step();
        }
        assert!((b.charge() - 0.8).abs() < 1e-9);
    }
}
