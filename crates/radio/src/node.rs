//! The wireless node model.

use crate::battery::BatteryState;
use crate::mobility::Motion;
use agentnet_graph::geometry::Point2;
use agentnet_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Role of a node in the network.
///
/// The paper's taxonomy: most nodes are plain wireless nodes (stationary or
/// mobile); "a small subset of nodes is gateways that have a high
/// computability and connectivity capability ... connected to the outside
/// world".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// Stationary gateway with high connectivity; routing targets.
    Gateway,
    /// Ordinary stationary node.
    Stationary,
    /// Battery-powered mobile node.
    Mobile,
}

impl NodeKind {
    /// Returns `true` for [`NodeKind::Gateway`].
    pub fn is_gateway(self) -> bool {
        matches!(self, NodeKind::Gateway)
    }

    /// Returns `true` for [`NodeKind::Mobile`].
    pub fn is_mobile(self) -> bool {
        matches!(self, NodeKind::Mobile)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Gateway => "gateway",
            NodeKind::Stationary => "stationary",
            NodeKind::Mobile => "mobile",
        };
        f.write_str(s)
    }
}

/// A wireless node: identity, kinematics and radio.
///
/// The node's *effective* radio range at any instant is
/// `nominal_range * battery.range_factor()` — battery decay shrinks
/// coverage over time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WirelessNode {
    /// Dense identifier (index into the network's node table).
    pub id: NodeId,
    /// Current position in the arena.
    pub position: Point2,
    /// Nominal (full-charge) radio range in metres.
    pub nominal_range: f64,
    /// Role.
    pub kind: NodeKind,
    /// Battery charge and decay model.
    pub battery: BatteryState,
    /// Motion state.
    pub motion: Motion,
}

impl WirelessNode {
    /// Effective radio range given the current battery charge.
    pub fn effective_range(&self) -> f64 {
        self.nominal_range * self.battery.range_factor()
    }

    /// Returns `true` if `other_pos` is inside this node's current radio
    /// range, i.e. this node can transmit *to* a node at `other_pos`.
    pub fn covers(&self, other_pos: Point2) -> bool {
        let r = self.effective_range();
        self.position.distance_sq(other_pos) <= r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::BatteryModel;

    fn node(range: f64, charge: f64) -> WirelessNode {
        WirelessNode {
            id: NodeId::new(0),
            position: Point2::new(0.0, 0.0),
            nominal_range: range,
            kind: NodeKind::Stationary,
            battery: BatteryState::with_charge(BatteryModel::Mains, charge),
            motion: Motion::Stationary,
        }
    }

    #[test]
    fn effective_range_scales_with_battery() {
        let n = node(100.0, 0.25);
        assert!((n.effective_range() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn covers_is_inclusive_on_boundary() {
        let n = node(10.0, 1.0);
        assert!(n.covers(Point2::new(10.0, 0.0)));
        assert!(!n.covers(Point2::new(10.01, 0.0)));
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Gateway.is_gateway());
        assert!(!NodeKind::Mobile.is_gateway());
        assert!(NodeKind::Mobile.is_mobile());
        assert!(!NodeKind::Stationary.is_mobile());
    }

    #[test]
    fn kind_display() {
        assert_eq!(NodeKind::Gateway.to_string(), "gateway");
        assert_eq!(NodeKind::Stationary.to_string(), "stationary");
        assert_eq!(NodeKind::Mobile.to_string(), "mobile");
    }
}
