//! Physical-layer invariants over a [`WirelessNetwork`].
//!
//! These are [`Invariant`] implementations the simulation crates thread
//! through checked runs (see `agentnet_engine::invariant`): battery
//! charge must decay monotonically (and stay a valid fraction), the link
//! digraph must stay internally consistent with no self-links, and a
//! network whose nodes all share one effective radio range must produce
//! a *symmetric* link graph — asymmetry can only come from heterogeneous
//! ranges or battery skew.

use crate::WirelessNetwork;
use agentnet_engine::invariant::{Invariant, InvariantSet};
use agentnet_engine::Step;

/// Tolerance for floating-point charge/range comparisons.
const EPS: f64 = 1e-9;

/// Battery charge is a fraction in `[0, 1]`, never increases from one
/// step to the next, and the effective range never exceeds the nominal
/// range.
///
/// A decay model whose floor sits *above* the current charge would lift
/// the charge back up; this checker flags that as a violation too, since
/// no physical battery recharges by decaying.
#[derive(Debug, Default)]
pub struct BatteryMonotone {
    prev: Vec<f64>,
}

impl BatteryMonotone {
    /// Creates an unprimed checker; the first check records a baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Invariant<WirelessNetwork> for BatteryMonotone {
    fn name(&self) -> &'static str {
        "radio-battery-monotone"
    }

    fn check(&mut self, net: &WirelessNetwork, _now: Step) -> Result<(), String> {
        let primed = self.prev.len() == net.node_count();
        for (i, node) in net.nodes().iter().enumerate() {
            let charge = node.battery.charge();
            if !(0.0..=1.0 + EPS).contains(&charge) {
                return Err(format!("node {i} charge {charge} outside [0, 1]"));
            }
            if node.effective_range() > node.nominal_range + EPS {
                return Err(format!(
                    "node {i} effective range {} exceeds nominal {}",
                    node.effective_range(),
                    node.nominal_range
                ));
            }
            if primed && charge > self.prev[i] + EPS {
                return Err(format!(
                    "node {i} charge rose {} -> {charge}; batteries only decay",
                    self.prev[i]
                ));
            }
        }
        self.prev.clear();
        self.prev.extend(net.nodes().iter().map(|n| n.battery.charge()));
        Ok(())
    }
}

/// The link digraph is internally consistent, covers exactly the node
/// set, and contains no self-links (a radio never links to itself).
#[derive(Debug, Default)]
pub struct LinksWellFormed;

impl Invariant<WirelessNetwork> for LinksWellFormed {
    fn name(&self) -> &'static str {
        "radio-links-consistent"
    }

    fn check(&mut self, net: &WirelessNetwork, _now: Step) -> Result<(), String> {
        let links = net.links();
        if links.node_count() != net.node_count() {
            return Err(format!(
                "link graph covers {} nodes, network has {}",
                links.node_count(),
                net.node_count()
            ));
        }
        links.check_consistency()?;
        for v in links.nodes() {
            if links.has_edge(v, v) {
                return Err(format!("self-link at node {v}"));
            }
        }
        Ok(())
    }
}

/// When every node currently has the same effective radio range, link
/// coverage is mutual, so the link digraph must be symmetric. (With
/// heterogeneous ranges one-way links are expected and nothing is
/// asserted.)
#[derive(Debug, Default)]
pub struct SymmetricWhenHomogeneous;

impl Invariant<WirelessNetwork> for SymmetricWhenHomogeneous {
    fn name(&self) -> &'static str {
        "radio-symmetry-homogeneous"
    }

    fn check(&mut self, net: &WirelessNetwork, _now: Step) -> Result<(), String> {
        let nodes = net.nodes();
        let mut ranges = nodes.iter().map(|n| n.effective_range());
        let Some(first) = ranges.next() else { return Ok(()) };
        let homogeneous = ranges.all(|r| (r - first).abs() <= EPS * first.max(1.0));
        if homogeneous && !net.links().is_symmetric() {
            return Err(format!(
                "all effective ranges equal ({first}) but the link graph is asymmetric"
            ));
        }
        Ok(())
    }
}

/// The standard invariant set over a bare wireless network.
pub fn network_invariants() -> InvariantSet<WirelessNetwork> {
    let mut set = InvariantSet::new();
    set.register(BatteryMonotone::new());
    set.register(LinksWellFormed);
    set.register(SymmetricWhenHomogeneous);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::{BatteryModel, BatteryState};
    use crate::NetworkBuilder;

    #[test]
    fn dynamic_network_satisfies_all_invariants() {
        let mut net =
            NetworkBuilder::new(30).gateways(2).target_edges(200).build(7).expect("buildable");
        let mut checks = network_invariants();
        assert_eq!(checks.len(), 3);
        for s in 0..50 {
            net.advance();
            checks.check_all(&net, Step::new(s)).expect("healthy network");
        }
    }

    #[test]
    fn homogeneous_static_network_must_be_symmetric() {
        // No gateways (no range boost), zero heterogeneity, no mobility:
        // every node shares one effective range.
        let net = NetworkBuilder::new(20)
            .target_edges(100)
            .mobile_fraction(0.0)
            .range_heterogeneity(0.0)
            .build(3)
            .expect("buildable");
        let mut check = SymmetricWhenHomogeneous;
        check.check(&net, Step::ZERO).expect("equal ranges imply symmetric links");
        assert!(net.links().is_symmetric());
    }

    #[test]
    fn recharged_battery_is_flagged() {
        let mut net =
            NetworkBuilder::new(10).gateways(1).target_edges(40).build(5).expect("buildable");
        let mut check = BatteryMonotone::new();
        check.check(&net, Step::ZERO).expect("baseline");
        let id = net.nodes()[3].id;
        net.node_mut(id).battery = BatteryState::with_charge(BatteryModel::Mains, 0.4);
        check.check(&net, Step::new(1)).expect("drain is legal");
        net.node_mut(id).battery = BatteryState::mains();
        let err = check.check(&net, Step::new(2)).unwrap_err();
        assert!(err.contains("charge rose"), "{err}");
    }
}
