//! Property-based tests for the experiment registry and reports.

use agentnet_engine::table::Table;
use agentnet_experiments::registry;
use agentnet_experiments::report::{Claim, ExperimentReport};
use proptest::prelude::*;

/// Strategy for a short lowercase ASCII identifier.
fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, 1..9)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii"))
}

/// Strategy for a short printable-ASCII sentence (may be empty).
fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..30)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii"))
}

/// Strategy for a small but arbitrary experiment report.
fn report_strategy() -> impl Strategy<Value = ExperimentReport> {
    (
        (ident(), text(), text()),
        proptest::collection::vec((text(), text(), 0u8..2), 0..5),
        proptest::collection::vec((0u64..10_000, 0u64..1_000_000), 0..6),
        (0u8..2, text()),
    )
        .prop_map(|((id, title, paper_claim), claims, rows, (has_figure, figure))| {
            let mut table = Table::new(["x", "y"]);
            for (x, y) in rows {
                table.push_row([x.to_string(), y.to_string()]);
            }
            ExperimentReport {
                id,
                title,
                paper_claim,
                table,
                claims: claims
                    .into_iter()
                    .map(|(statement, observed, holds)| Claim::new(statement, observed, holds == 1))
                    .collect(),
                figure: if has_figure == 1 { Some(figure) } else { None },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any two distinct registry positions hold distinct ids — the ids
    /// are cache namespaces, so a collision would silently cross-feed
    /// cached cells between experiments.
    #[test]
    fn registry_ids_pairwise_distinct(i in 0usize..64, offset in 1usize..64) {
        let all = registry::all();
        let i = i % all.len();
        let j = (i + 1 + offset % (all.len() - 1)) % all.len();
        prop_assert_ne!(i, j);
        prop_assert_ne!(all[i].id, all[j].id);
    }

    /// `by_id` is a retraction of the registry: looking up any listed
    /// experiment returns that experiment.
    #[test]
    fn registry_lookup_round_trips(i in 0usize..64) {
        let all = registry::all();
        let e = all[i % all.len()];
        let found = registry::by_id(e.id).expect("listed id resolves");
        prop_assert_eq!(found.id, e.id);
        prop_assert_eq!(found.title, e.title);
    }

    /// Lookup of a non-registry id fails rather than fuzzy-matching.
    #[test]
    fn registry_lookup_rejects_unknown_ids(id in ident()) {
        let id = format!("zz-{id}");
        prop_assert!(registry::all().iter().all(|e| e.id != id), "zz- ids stay unused");
        prop_assert!(registry::by_id(&id).is_none());
    }

    /// Reports survive a JSON round-trip exactly — this is what makes
    /// the result cache and `--json` exports trustworthy.
    #[test]
    fn report_serde_round_trips(report in report_strategy()) {
        let text = serde_json::to_string(&report).expect("report serializes");
        let back: ExperimentReport = serde_json::from_str(&text).expect("report parses");
        prop_assert_eq!(back, report);
    }

    /// `passed()` is the conjunction of the claims.
    #[test]
    fn report_passes_iff_all_claims_hold(report in report_strategy()) {
        let expected = report.claims.iter().all(|c| c.holds);
        prop_assert_eq!(report.passed(), expected);
    }
}
