//! End-to-end tests of the `repro` binary: report bytes must not
//! depend on the jobs count or cache state, and a second (resumed)
//! invocation must be served from the result cache.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(out.status.success(), "repro failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout.clone()).expect("stdout is utf-8")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agentnet-repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn stdout_is_identical_across_jobs_counts() {
    let serial = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "1", "fig1"]));
    let parallel = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "4", "fig1"]));
    assert!(serial.contains("## fig1"), "unexpected report:\n{serial}");
    assert_eq!(serial, parallel, "--jobs must not change report bytes");
}

#[test]
fn second_resumed_run_hits_the_cache_with_identical_output() {
    let cache = tmpdir("cache");
    let cache_arg = cache.to_str().unwrap();
    let args = ["--smoke", "--jobs", "2", "--resume", "--trace", "--cache-dir", cache_arg, "fig1"];

    let first = repro(&args);
    let second = repro(&args);
    assert_eq!(stdout(&first), stdout(&second), "resumed run must reproduce report bytes");

    let first_err = String::from_utf8_lossy(&first.stderr).to_string();
    let second_err = String::from_utf8_lossy(&second.stderr).to_string();
    // fig1 in smoke mode is 2 configurations x 2 replicates = 4 cells.
    assert_eq!(first_err.matches("cached=false").count(), 4, "stderr:\n{first_err}");
    assert_eq!(second_err.matches("cached=true").count(), 4, "stderr:\n{second_err}");
    assert!(second_err.contains("100%"), "stderr should report a full hit rate:\n{second_err}");

    std::fs::remove_dir_all(&cache).unwrap();
}

#[test]
fn no_cache_runs_leave_no_cache_directory() {
    let cache = tmpdir("nocache");
    let out = repro(&[
        "--smoke",
        "--no-cache",
        "--jobs",
        "1",
        "--cache-dir",
        cache.to_str().unwrap(),
        "fig1",
    ]);
    stdout(&out);
    assert!(!cache.exists(), "--no-cache must not write {}", cache.display());
}

#[test]
fn filter_selects_by_id_substring() {
    let out = stdout(&repro(&["--smoke", "--no-cache", "--filter", "ext-degradation"]));
    assert!(out.contains("## ext-degradation"), "filtered report missing:\n{out}");
    assert!(!out.contains("## fig"), "--filter must drop unmatched experiments:\n{out}");
}

#[test]
fn unknown_id_is_rejected() {
    let out = repro(&["--smoke", "fig99"]);
    assert!(!out.status.success());
}

#[test]
fn check_flag_does_not_change_report_bytes() {
    // Invariant checking observes the sims; it must not perturb them.
    let plain = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "2", "fig1"]));
    let checked = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "2", "--check", "fig1"]));
    assert_eq!(plain, checked, "--check must not change report bytes");
}

#[test]
fn validate_subcommand_passes_and_prints_the_table() {
    let out = repro(&["validate", "--seed", "2010"]);
    let text = stdout(&out);
    assert!(text.contains("# agentnet validate"), "missing header:\n{text}");
    assert!(text.contains("| check"), "missing table header:\n{text}");
    assert!(text.contains("PASS"), "no passing rows:\n{text}");
    assert!(!text.contains("FAIL"), "battery should be green:\n{text}");
    // The acceptance floor: at least 8 invariants and 4 metamorphic or
    // differential relations actually ran (cells are padded, so match
    // on the kind word followed by padding).
    assert!(text.matches("| invariant ").count() >= 8, "too few invariant rows:\n{text}");
    let relations =
        text.matches("| metamorphic ").count() + text.matches("| differential ").count();
    assert!(relations >= 4, "too few relation rows:\n{text}");
}

#[test]
fn validate_injected_failure_exits_nonzero_and_names_the_invariant() {
    let out = repro(&["validate", "--inject-failure"]);
    assert!(!out.status.success(), "an invariant violation must fail the process");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("injected-failure"), "violation not reported:\n{text}");
    assert!(text.contains("FAIL"), "no FAIL row:\n{text}");
    assert!(text.contains("checks FAILED"), "no failure summary:\n{text}");
}
