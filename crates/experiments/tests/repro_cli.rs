//! End-to-end tests of the `repro` binary: report bytes must not
//! depend on the jobs count or cache state, and a second (resumed)
//! invocation must be served from the result cache.

use serde_json::Value;
use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(out.status.success(), "repro failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout.clone()).expect("stdout is utf-8")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agentnet-repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn stdout_is_identical_across_jobs_counts() {
    let serial = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "1", "fig1"]));
    let parallel = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "4", "fig1"]));
    assert!(serial.contains("## fig1"), "unexpected report:\n{serial}");
    assert_eq!(serial, parallel, "--jobs must not change report bytes");
}

#[test]
fn second_resumed_run_hits_the_cache_with_identical_output() {
    let cache = tmpdir("cache");
    let cache_arg = cache.to_str().unwrap();
    let args = ["--smoke", "--jobs", "2", "--resume", "--trace", "--cache-dir", cache_arg, "fig1"];

    let first = repro(&args);
    let second = repro(&args);
    assert_eq!(stdout(&first), stdout(&second), "resumed run must reproduce report bytes");

    let first_err = String::from_utf8_lossy(&first.stderr).to_string();
    let second_err = String::from_utf8_lossy(&second.stderr).to_string();
    // fig1 in smoke mode is 2 configurations x 2 replicates = 4 cells.
    assert_eq!(first_err.matches("cached=false").count(), 4, "stderr:\n{first_err}");
    assert_eq!(second_err.matches("cached=true").count(), 4, "stderr:\n{second_err}");
    assert!(second_err.contains("100%"), "stderr should report a full hit rate:\n{second_err}");

    std::fs::remove_dir_all(&cache).unwrap();
}

#[test]
fn no_cache_runs_leave_no_cache_directory() {
    let cache = tmpdir("nocache");
    let out = repro(&[
        "--smoke",
        "--no-cache",
        "--jobs",
        "1",
        "--cache-dir",
        cache.to_str().unwrap(),
        "fig1",
    ]);
    stdout(&out);
    assert!(!cache.exists(), "--no-cache must not write {}", cache.display());
}

#[test]
fn filter_selects_by_id_substring() {
    let out = stdout(&repro(&["--smoke", "--no-cache", "--filter", "ext-degradation"]));
    assert!(out.contains("## ext-degradation"), "filtered report missing:\n{out}");
    assert!(!out.contains("## fig"), "--filter must drop unmatched experiments:\n{out}");
}

#[test]
fn zoo_report_bytes_survive_jobs_and_check_flags() {
    // The protocol-zoo figure family is golden: byte-identical across
    // parallelism and with the invariant checker observing every arm.
    let serial = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "1", "ext-zoo"]));
    assert!(serial.contains("## ext-zoo"), "unexpected report:\n{serial}");
    for arm in ["agents", "stigmergic", "antnet", "epidemic", "spray-and-wait"] {
        assert!(serial.contains(arm), "report missing the {arm} arm:\n{serial}");
    }
    let parallel = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "4", "ext-zoo"]));
    assert_eq!(serial, parallel, "--jobs must not change zoo report bytes");
    let checked = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "4", "--check", "ext-zoo"]));
    assert_eq!(serial, checked, "--check must not change zoo report bytes");
}

#[test]
fn zoo_manifest_records_the_protocol_arms() {
    let dir = tmpdir("zoo-manifest");
    std::fs::create_dir_all(&dir).unwrap();
    let manifest_path = dir.join("manifest.json");
    stdout(&repro(&[
        "--smoke",
        "--no-cache",
        "--jobs",
        "2",
        "--metrics-out",
        manifest_path.to_str().unwrap(),
        "ext-zoo-cache",
    ]));
    let manifest_text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let manifest = agentnet_experiments::RunManifest::from_json(&manifest_text)
        .expect("manifest parses under the committed schema");
    assert_eq!(
        manifest.protocols,
        ["agents", "stigmergic", "antnet", "epidemic", "spray-and-wait"],
        "manifest:\n{manifest_text}"
    );
    assert!(
        manifest.metrics.counters.contains_key("zoo_replicates_total"),
        "zoo counters missing:\n{manifest_text}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn validate_protocol_flag_restricts_the_battery_to_one_arm() {
    let out = repro(&["validate", "--protocol", "antnet"]);
    let text = stdout(&out);
    assert!(text.contains("zoo-tables-antnet"), "missing arm tables check:\n{text}");
    assert!(text.contains("zoo-claims-antnet"), "missing arm claims check:\n{text}");
    assert!(!text.contains("zoo-tables-agents"), "other arms must be skipped:\n{text}");
    assert!(!text.contains("FAIL"), "restricted battery should be green:\n{text}");

    let bad = repro(&["validate", "--protocol", "bogus"]);
    assert!(!bad.status.success(), "an unknown arm must be rejected");
}

#[test]
fn unknown_id_is_rejected() {
    let out = repro(&["--smoke", "fig99"]);
    assert!(!out.status.success());
}

#[test]
fn check_flag_does_not_change_report_bytes() {
    // Invariant checking observes the sims; it must not perturb them.
    let plain = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "2", "fig1"]));
    let checked = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "2", "--check", "fig1"]));
    assert_eq!(plain, checked, "--check must not change report bytes");
}

#[test]
fn validate_subcommand_passes_and_prints_the_table() {
    let out = repro(&["validate", "--seed", "2010"]);
    let text = stdout(&out);
    assert!(text.contains("# agentnet validate"), "missing header:\n{text}");
    assert!(text.contains("| check"), "missing table header:\n{text}");
    assert!(text.contains("PASS"), "no passing rows:\n{text}");
    assert!(!text.contains("FAIL"), "battery should be green:\n{text}");
    // The acceptance floor: at least 8 invariants and 4 metamorphic or
    // differential relations actually ran (cells are padded, so match
    // on the kind word followed by padding).
    assert!(text.matches("| invariant ").count() >= 8, "too few invariant rows:\n{text}");
    let relations =
        text.matches("| metamorphic ").count() + text.matches("| differential ").count();
    assert!(relations >= 4, "too few relation rows:\n{text}");
}

#[test]
fn bench_subcommand_writes_the_report_and_passes_against_itself() {
    let dir = tmpdir("bench");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_test.json");
    let out_arg = out.to_str().unwrap();

    let first = repro(&["bench", "--warmup", "0", "--iters", "1", "--out", out_arg]);
    let text = stdout(&first);
    assert!(text.contains("# agentnet bench"), "missing header:\n{text}");
    assert!(text.contains("calibration"), "missing calibration row:\n{text}");
    assert!(text.contains("route_revalidation"), "missing kernel row:\n{text}");

    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out).expect("bench report written"))
            .expect("bench report is JSON");
    assert_eq!(report["schema"], 1);
    assert!(report["kernels"].as_array().map(Vec::len).unwrap_or(0) >= 6, "report:\n{report:?}");

    // A second run gated against the first passes with a threshold far
    // above single-iteration timing noise.
    let gated = repro(&[
        "bench",
        "--warmup",
        "0",
        "--iters",
        "1",
        "--max-regression",
        "100000",
        "--out",
        dir.join("BENCH_second.json").to_str().unwrap(),
        "--baseline",
        out_arg,
    ]);
    let gated_text = stdout(&gated);
    assert!(gated_text.contains("no kernel regressed"), "gate output:\n{gated_text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_regression_gate_fails_against_a_doctored_baseline() {
    let dir = tmpdir("bench-gate");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_current.json");
    stdout(&repro(&["bench", "--warmup", "0", "--iters", "1", "--out", out.to_str().unwrap()]));

    // Doctor the baseline so every simulation kernel looks 100x faster
    // than what the gated run will measure. `min_ns` is the value the
    // gate normalizes and compares; the others are doctored alongside
    // so the file stays self-consistent.
    let mut report: agentnet_engine::perf::BenchReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    for kernel in &mut report.kernels {
        if kernel.kernel != agentnet_engine::perf::CALIBRATION_KERNEL {
            kernel.ns_per_iter /= 100.0;
            kernel.mean_ns /= 100.0;
            kernel.min_ns /= 100.0;
        }
    }
    let doctored = dir.join("BENCH_doctored.json");
    std::fs::write(&doctored, serde_json::to_string_pretty(&report).unwrap()).unwrap();

    let gated = repro(&[
        "bench",
        "--warmup",
        "0",
        "--iters",
        "1",
        "--out",
        dir.join("BENCH_gated.json").to_str().unwrap(),
        "--baseline",
        doctored.to_str().unwrap(),
    ]);
    assert!(!gated.status.success(), "doctored baseline must trip the gate");
    let text = String::from_utf8_lossy(&gated.stdout);
    assert!(text.contains("regressed more than"), "gate output:\n{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_filter_matching_no_kernel_is_a_hard_error() {
    // A typo'd (or stale, post-rename) filter used to time an empty
    // kernel set and exit 0 — a CI smoke running it would gate nothing
    // and pass vacuously, the same blind spot as a calibration-less
    // baseline.
    let run = repro(&["bench", "--warmup", "0", "--iters", "1", "--filter", "no_such_kernel"]);
    assert!(!run.status.success(), "zero-match filter must fail");
    let err = String::from_utf8_lossy(&run.stderr);
    assert!(err.contains("--filter no_such_kernel matches no kernel"), "stderr:\n{err}");
    assert!(err.contains("known kernels:"), "stderr must list the suite:\n{err}");
    assert!(err.contains("grid_rebuild_sharded_100k"), "stderr:\n{err}");

    // One bogus filter among valid ones still fails — the valid matches
    // must not mask the dead pattern.
    let mixed = repro(&[
        "bench",
        "--warmup",
        "0",
        "--iters",
        "1",
        "--filter",
        "shard_rebuild",
        "--filter",
        "bogus",
    ]);
    assert!(!mixed.status.success(), "a dead filter among live ones must still fail");
}

#[test]
fn observability_flags_do_not_change_stdout_bytes() {
    let dir = tmpdir("obs");
    std::fs::create_dir_all(&dir).unwrap();
    let manifest_path = dir.join("manifest.json");
    let prom_path = dir.join("metrics.prom");
    let trace_path = dir.join("trace.jsonl");

    for fig in ["fig1", "fig7"] {
        let plain = stdout(&repro(&["--smoke", "--no-cache", "--jobs", "2", fig]));
        let observed = stdout(&repro(&[
            "--smoke",
            "--no-cache",
            "--jobs",
            "2",
            "--metrics-out",
            manifest_path.to_str().unwrap(),
            "--metrics-prom",
            prom_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
            fig,
        ]));
        assert_eq!(plain, observed, "{fig}: observability flags must not change stdout");
    }

    // The last iteration's files (fig7) must be well-formed.
    let manifest_text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    let manifest = agentnet_experiments::RunManifest::from_json(&manifest_text)
        .expect("manifest parses under the committed schema");
    assert_eq!(manifest.schema, agentnet_experiments::MANIFEST_SCHEMA);
    assert_eq!(manifest.mode, "smoke");
    assert!(!manifest.cache.enabled, "--no-cache run must record a disabled cache");
    assert_eq!(manifest.experiments.len(), 1);
    assert_eq!(manifest.experiments[0].id, "fig7");
    assert!(manifest.experiments[0].cells > 0, "manifest:\n{manifest_text}");
    let cells: u64 = manifest
        .metrics
        .counters
        .get("exec_cells_total")
        .copied()
        .expect("executor cell counter present");
    assert_eq!(cells, manifest.experiments[0].cells);
    assert!(
        manifest.metrics.counters.contains_key("routing_replicates_total"),
        "simulation counters missing:\n{manifest_text}"
    );
    assert!(
        manifest.metrics.histograms.contains_key("exec_cell_micros"),
        "cell-time histogram missing:\n{manifest_text}"
    );

    let prom = std::fs::read_to_string(&prom_path).expect("prom file written");
    assert!(prom.contains("# TYPE agentnet_exec_cells_total counter"), "prom:\n{prom}");
    assert!(prom.contains("agentnet_exec_cell_micros_bucket{le=\"+Inf\"}"), "prom:\n{prom}");

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(trace.ends_with('\n'), "trace export must be newline-terminated");
    let mut events = 0usize;
    for line in trace.lines() {
        let value = serde_json::parse(line).expect("every trace line is JSON");
        assert_eq!(value.get("experiment").and_then(|v| v.as_str()), Some("fig7"), "{line}");
        let event = value.get("event").expect("tagged simulation event");
        let _: agentnet_core::trace::TraceEvent =
            serde_json::from_value(event).expect("event deserializes");
        events += 1;
    }
    assert!(events > 0, "fig7 replicates should trace at least one event");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_gate_refuses_a_baseline_without_a_calibration_kernel() {
    let dir = tmpdir("bench-nocal");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_current.json");
    stdout(&repro(&["bench", "--warmup", "0", "--iters", "1", "--out", out.to_str().unwrap()]));

    let mut report: agentnet_engine::perf::BenchReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    report.kernels.retain(|k| k.kernel != agentnet_engine::perf::CALIBRATION_KERNEL);
    let doctored = dir.join("BENCH_nocal.json");
    std::fs::write(&doctored, serde_json::to_string_pretty(&report).unwrap()).unwrap();

    let gated = repro(&[
        "bench",
        "--warmup",
        "0",
        "--iters",
        "1",
        "--out",
        dir.join("BENCH_gated.json").to_str().unwrap(),
        "--baseline",
        doctored.to_str().unwrap(),
    ]);
    assert!(!gated.status.success(), "a calibration-less baseline must not gate anything");
    let err = String::from_utf8_lossy(&gated.stderr);
    assert!(err.contains("calibration"), "stderr should name the missing kernel:\n{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_gate_fails_on_kernels_absent_from_the_baseline() {
    let dir = tmpdir("bench-ungated");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_current.json");
    stdout(&repro(&["bench", "--warmup", "0", "--iters", "1", "--out", out.to_str().unwrap()]));

    // Drop one simulation kernel from the baseline, as if it was added
    // to the suite after the baseline was committed.
    let mut report: agentnet_engine::perf::BenchReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    report.kernels.retain(|k| k.kernel != "route_revalidation");
    let doctored = dir.join("BENCH_missing.json");
    std::fs::write(&doctored, serde_json::to_string_pretty(&report).unwrap()).unwrap();

    let gated = repro(&[
        "bench",
        "--warmup",
        "0",
        "--iters",
        "1",
        "--max-regression",
        "100000",
        "--out",
        dir.join("BENCH_gated.json").to_str().unwrap(),
        "--baseline",
        doctored.to_str().unwrap(),
    ]);
    assert!(!gated.status.success(), "an ungated kernel must fail the gate");
    let text = String::from_utf8_lossy(&gated.stdout);
    assert!(text.contains("NOT gated"), "gate output:\n{text}");
    assert!(text.contains("route_revalidation"), "gate output should list the kernel:\n{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_dump_routes_is_deterministic_and_matches_the_batch_route_index() {
    let args = ["serve", "--nodes", "120", "--seed", "9", "--warmup", "50", "--dump-routes"];
    let first = stdout(&repro(&args));
    let second = stdout(&repro(&args));
    assert_eq!(first, second, "--dump-routes must be a pure function of its flags");

    // Recompute the expected dump in-process: the daemon's frozen
    // answers are exactly what a batch `RouteIndex` capture of the
    // same arm at the same seed and step produces.
    use agentnet_baselines::zoo::{build_protocol, ZooParams};
    use agentnet_core::routing::{ProtocolKind, RouteIndex};
    use agentnet_engine::Step;
    use agentnet_graph::NodeId;
    use agentnet_radio::NetworkBuilder;
    use agentnet_serve::{wire, MapSnapshot};

    let net = NetworkBuilder::scaled_preset(120).build(9).unwrap();
    let mut protocol = build_protocol(ProtocolKind::Agents, net, &ZooParams::default(), 9).unwrap();
    for s in 0..50 {
        protocol.step(Step::new(s));
    }
    let mut index = RouteIndex::new(120);
    let snap = MapSnapshot::capture(protocol.as_ref(), &mut index, Step::new(50));
    let mut expected = String::new();
    expected.push_str(&wire::respond(0, wire::Request::Info, &snap));
    expected.push('\n');
    for v in 0..120 {
        let node = NodeId::new(v);
        expected.push_str(&wire::respond(v as u64, wire::Request::Route(node), &snap));
        expected.push('\n');
        expected.push_str(&wire::respond(v as u64, wire::Request::Reach(node), &snap));
        expected.push('\n');
    }
    assert_eq!(first, expected, "served routes diverged from the batch RouteIndex");
}

#[test]
fn serve_daemon_answers_udp_queries_started_from_the_cli() {
    use std::io::BufRead;

    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--nodes", "80", "--seed", "5", "--warmup", "40", "--duration-secs", "30"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("repro serve spawns");
    let mut startup = String::new();
    std::io::BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut startup)
        .expect("startup line");
    let result = std::panic::catch_unwind(|| {
        let udp = startup
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("udp="))
            .unwrap_or_else(|| panic!("no udp= in startup line: {startup}"))
            .to_string();
        let socket = std::net::UdpSocket::bind("127.0.0.1:0").expect("client socket");
        socket.set_read_timeout(Some(std::time::Duration::from_secs(5))).expect("timeout set");
        socket.send_to(b"7 INFO", &udp).expect("query sent");
        let mut buf = [0u8; 512];
        let (n, _) = socket.recv_from(&mut buf).expect("daemon replied");
        let reply = String::from_utf8_lossy(&buf[..n]).into_owned();
        assert!(reply.starts_with("7 OK "), "unexpected reply: {reply}");
        assert!(reply.contains("nodes=80"), "unexpected reply: {reply}");
    });
    let _ = child.kill();
    let _ = child.wait();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn validate_injected_failure_exits_nonzero_and_names_the_invariant() {
    let out = repro(&["validate", "--inject-failure"]);
    assert!(!out.status.success(), "an invariant violation must fail the process");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("injected-failure"), "violation not reported:\n{text}");
    assert!(text.contains("FAIL"), "no FAIL row:\n{text}");
    assert!(text.contains("checks FAILED"), "no failure summary:\n{text}");
}

/// `repro lint --format json` against a planted workspace: the schema-1
/// payload pins file, line, rule, message routing and source snippets,
/// and the exit code still reflects the baseline diff.
#[test]
fn lint_json_schema_is_pinned_on_planted_findings() {
    let dir = tmpdir("lint-json");
    std::fs::create_dir_all(dir.join("crates/core/src")).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(dir.join("lint.toml"), "").unwrap();
    // policy.rs is on the kernel list: the Mutex import trips
    // no-lock-in-kernel and the Relaxed load trips no-relaxed-atomics.
    std::fs::write(
        dir.join("crates/core/src/policy.rs"),
        "use std::sync::Mutex;\n\
         fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n\
         \x20   a.load(Ordering::Relaxed)\n\
         }\n",
    )
    .unwrap();
    let out = repro(&["lint", "--root", dir.to_str().unwrap(), "--format", "json"]);
    assert!(!out.status.success(), "planted findings must fail the gate");
    let text = String::from_utf8(out.stdout.clone()).expect("stdout is utf-8");
    let v = serde_json::parse(&text).expect("--format json emits one valid JSON object");
    assert_eq!(v.get("schema").and_then(Value::as_u64), Some(1), "{text}");

    let findings = v.get("findings").and_then(Value::as_array).expect("findings array");
    let rows: Vec<(&str, u64, &str, &str)> = findings
        .iter()
        .map(|f| {
            (
                f.get("file").and_then(Value::as_str).expect("file"),
                f.get("line").and_then(Value::as_u64).expect("line"),
                f.get("rule").and_then(Value::as_str).expect("rule"),
                f.get("snippet").and_then(Value::as_str).expect("snippet"),
            )
        })
        .collect();
    assert_eq!(
        rows,
        [
            ("crates/core/src/policy.rs", 1, "no-lock-in-kernel", "use std::sync::Mutex;"),
            ("crates/core/src/policy.rs", 3, "no-relaxed-atomics", "a.load(Ordering::Relaxed)"),
        ],
        "{text}"
    );
    assert!(
        findings.iter().all(|f| f.get("message").and_then(Value::as_str).is_some()),
        "every finding carries a message: {text}"
    );
    // With an empty baseline, everything is new and nothing is stale.
    assert_eq!(v.get("new").and_then(Value::as_array).map(Vec::len), Some(2), "{text}");
    assert_eq!(v.get("stale").and_then(Value::as_array).map(Vec::len), Some(0), "{text}");
    let counts = v.get("counts").expect("counts object");
    assert_eq!(counts.get("findings").and_then(Value::as_u64), Some(2), "{text}");
    assert_eq!(counts.get("new").and_then(Value::as_u64), Some(2), "{text}");
    assert_eq!(counts.get("baselined").and_then(Value::as_u64), Some(0), "{text}");
    assert_eq!(counts.get("stale").and_then(Value::as_u64), Some(0), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The committed tree is clean under `--format json` too, and the rule
/// catalogue in the payload is the full 8-rule set in registry order.
#[test]
fn lint_json_on_the_workspace_is_clean_with_the_full_rule_catalogue() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = repro(&["lint", "--root", root.to_str().unwrap(), "--format", "json"]);
    let text = stdout(&out);
    let v = serde_json::parse(&text).expect("--format json emits one valid JSON object");
    let names: Vec<&str> = v
        .get("rules")
        .and_then(Value::as_array)
        .expect("rules array")
        .iter()
        .map(|r| r.get("name").and_then(Value::as_str).expect("rule name"))
        .collect();
    assert_eq!(
        names,
        [
            "no-unordered-iteration",
            "no-ambient-entropy",
            "no-panic-in-kernel",
            "no-alloc-in-hot-path",
            "no-lossy-cast",
            "no-relaxed-atomics",
            "no-lock-in-kernel",
            "no-bare-spawn",
        ],
        "{text}"
    );
    assert_eq!(v.get("findings").and_then(Value::as_array).map(Vec::len), Some(0), "{text}");
    assert_eq!(v.get("counts").and_then(|c| c.get("new")).and_then(Value::as_u64), Some(0));
}
