//! `netinfo` — diagnostics for generated wireless topologies.
//!
//! ```text
//! netinfo [--nodes N] [--edges E] [--seed S] [--gateways G] [--steps T]
//! ```
//!
//! Generates the seeded topology the experiments run on and prints its
//! structural profile: degree distribution, symmetry, strong
//! connectivity, diameter, and (with gateways) reachability over a
//! simulated horizon. Useful when porting the experiments to other
//! network shapes.

use agentnet_engine::stats::{percentile, Summary};
use agentnet_engine::table::Table;
use agentnet_graph::connectivity::{is_strongly_connected, strongly_connected_components};
use agentnet_graph::paths::diameter;
use agentnet_graph::DiGraph;
use agentnet_radio::NetworkBuilder;

struct Args {
    nodes: usize,
    edges: usize,
    seed: u64,
    gateways: usize,
    steps: u64,
}

fn parse_args() -> Args {
    let mut args = Args { nodes: 300, edges: 2164, seed: 42, gateways: 0, steps: 0 };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut next = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--nodes" => args.nodes = next("--nodes").parse().expect("integer"),
            "--edges" => args.edges = next("--edges").parse().expect("integer"),
            "--seed" => args.seed = next("--seed").parse().expect("integer"),
            "--gateways" => args.gateways = next("--gateways").parse().expect("integer"),
            "--steps" => args.steps = next("--steps").parse().expect("integer"),
            _ => {
                eprintln!(
                    "usage: netinfo [--nodes N] [--edges E] [--seed S] [--gateways G] [--steps T]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn degree_row(name: &str, degrees: &[f64]) -> [String; 5] {
    let s = Summary::from_samples(degrees.iter().copied()).expect("nonempty graph");
    [
        name.to_string(),
        format!("{:.2}", s.mean),
        format!("{:.0}", percentile(degrees, 0.5).unwrap()),
        format!("{:.0}", percentile(degrees, 0.9).unwrap()),
        format!("{:.0}", s.max),
    ]
}

fn print_graph_profile(graph: &DiGraph) {
    let out_degrees: Vec<f64> = graph.nodes().map(|v| graph.out_degree(v) as f64).collect();
    let in_degrees: Vec<f64> = graph.nodes().map(|v| graph.in_degree(v) as f64).collect();

    let mut table = Table::new(["metric", "value"]);
    table.push_row(["nodes", &graph.node_count().to_string()]);
    table.push_row(["directed edges", &graph.edge_count().to_string()]);
    table.push_row(["density", &format!("{:.4}", graph.density())]);
    let sym = graph.edges().filter(|e| graph.has_edge(e.to, e.from)).count();
    table.push_row([
        "bidirectional edge fraction",
        &format!("{:.3}", sym as f64 / graph.edge_count().max(1) as f64),
    ]);
    table.push_row(["strongly connected", &is_strongly_connected(graph).to_string()]);
    table.push_row([
        "strongly connected components",
        &strongly_connected_components(graph).len().to_string(),
    ]);
    table.push_row([
        "directed diameter",
        &diameter(graph).map_or("∞ (not strongly connected)".into(), |d| d.to_string()),
    ]);
    println!("{}", table.to_markdown());

    let mut table = Table::new(["degree", "mean", "p50", "p90", "max"]);
    table.push_row(degree_row("out", &out_degrees));
    table.push_row(degree_row("in", &in_degrees));
    println!("{}", table.to_markdown());
}

fn main() {
    let args = parse_args();
    let mut builder = NetworkBuilder::new(args.nodes)
        .target_edges(args.edges)
        .gateways(args.gateways)
        .min_initial_reachability(if args.gateways > 0 { 0.9 } else { 0.0 });
    if args.gateways == 0 {
        builder = builder.mobile_fraction(0.0);
    }
    let mut net = match builder.build(args.seed) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("failed to build network: {e}");
            std::process::exit(1);
        }
    };

    println!("# netinfo — {} nodes, target {} edges, seed {}\n", args.nodes, args.edges, args.seed);
    print_graph_profile(net.links());

    if args.gateways > 0 {
        println!("gateway reachability at t=0: {:.3}", net.reachability_upper_bound());
    }
    if args.steps > 0 {
        let mut series = Vec::new();
        for _ in 0..args.steps {
            net.advance();
            series.push(net.reachability_upper_bound());
        }
        let s = Summary::from_samples(series.iter().copied()).expect("steps > 0");
        println!(
            "reachability over {} steps: mean {:.3} min {:.3} max {:.3}",
            args.steps, s.mean, s.min, s.max
        );
        println!("\nfinal-topology profile after {} steps:\n", args.steps);
        print_graph_profile(net.links());
    }
}
