//! `repro` — regenerate every table/figure of the paper.
//!
//! ```text
//! repro [--full] [--json FILE] [--out DIR] [--list] [EXPERIMENT_ID ...]
//! ```
//!
//! Without ids, runs the whole registry. `--full` uses the paper's 40
//! replicates per setting (default is a quick 8-replicate pass).
//! `--json FILE` additionally writes machine-readable results and
//! `--out DIR` writes one CSV per experiment.

use agentnet_experiments::{registry, Mode};
use std::io::Write as _;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: repro [--full] [--json FILE] [--out DIR] [--list] [EXPERIMENT_ID ...]");
    eprintln!("experiments:");
    for e in registry::all() {
        eprintln!("  {:<16} {}", e.id, e.title);
    }
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut mode = Mode::Quick;
    let mut json_path: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => mode = Mode::Full,
            "--quick" => mode = Mode::Quick,
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => usage(),
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(dir),
                None => usage(),
            },
            "--list" => {
                for e in registry::all() {
                    println!("{:<16} {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }

    let experiments: Vec<_> = if ids.is_empty() {
        registry::all()
    } else {
        ids.iter()
            .map(|id| registry::by_id(id).unwrap_or_else(|| {
                eprintln!("unknown experiment id: {id}");
                usage()
            }))
            .collect()
    };

    println!(
        "# agentnet repro — {} mode ({} replicates per setting)\n",
        if mode == Mode::Full { "full" } else { "quick" },
        mode.runs()
    );

    let mut reports = Vec::new();
    let mut failures = 0usize;
    for exp in &experiments {
        eprintln!("running {} ...", exp.id);
        let started = std::time::Instant::now();
        let report = (exp.run)(mode);
        let secs = started.elapsed().as_secs_f64();
        if !report.passed() {
            failures += 1;
        }
        println!("{}", report.to_markdown());
        println!("_elapsed: {secs:.1}s_\n");
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("failed to create {dir}: {e}");
                return ExitCode::FAILURE;
            }
            let path = format!("{dir}/{}.csv", report.id);
            if let Err(e) = std::fs::write(&path, report.table.to_csv()) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        reports.push(report);
    }

    println!("---\n## Summary\n");
    for r in &reports {
        println!("- {}: **{}** — {}", r.id, if r.passed() { "PASS" } else { "FAIL" }, r.title);
    }

    if let Some(path) = json_path {
        let json = serde_json::json!({
            "mode": if mode == Mode::Full { "full" } else { "quick" },
            "reports": reports.iter().map(|r| r.to_json()).collect::<Vec<_>>(),
        });
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) = writeln!(f, "{}", serde_json::to_string_pretty(&json).unwrap()) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) had failing shape claims");
    }
    ExitCode::SUCCESS
}
