//! `repro` — regenerate every table/figure of the paper.
//!
//! ```text
//! repro [--smoke|--quick|--full] [--jobs N] [--resume] [--no-cache]
//!       [--cache-dir DIR] [--filter SUBSTRING]... [--json FILE]
//!       [--out DIR] [--metrics-out FILE] [--metrics-prom FILE]
//!       [--trace-out FILE] [--trace] [--list] [EXPERIMENT_ID ...]
//! ```
//!
//! Without ids, runs the whole registry; `--filter` keeps the
//! experiments whose id contains a substring. `--full` uses the paper's
//! 40 replicates per setting (default is a quick 8-replicate pass;
//! `--smoke` runs 2 for a fast shape check).
//!
//! Experiments run concurrently, their replicate cells flattened across
//! a shared pool of `--jobs` workers (default: all cores). Every
//! computed cell is persisted to `--cache-dir` (default
//! `results_cache/`); `--resume` loads cached cells instead of
//! recomputing them, so an interrupted run picks up where it stopped
//! and a repeated run is nearly free. Reports are printed in registry
//! order and are byte-identical for every `--jobs` value and cache
//! state.
//!
//! Progress, per-cell trace events (`--trace`), and a final run-metrics
//! table (cells, cache hit rate, wall-clock, cells/s per experiment)
//! go to stderr; only reports and the summary go to stdout. `--json
//! FILE` additionally writes machine-readable results and `--out DIR`
//! writes one CSV per experiment.
//!
//! Observability is a side channel: `--metrics-out FILE` writes a
//! versioned JSON run manifest (configuration, per-experiment cell
//! stats, cache stats, wall clock, and the full metrics registry of
//! counters/gauges/histograms), `--metrics-prom FILE` writes the same
//! registry in the Prometheus text exposition format, and `--trace-out
//! FILE` exports every replicate's simulation trace as JSON lines.
//! None of the three changes a byte of stdout.
//!
//! `--check` reruns every replicate under the simulator's per-step
//! invariant set (monotone knowledge, bounded histories, live-link
//! routing entries, …); a violation aborts the run naming the invariant
//! and step. Off by default, the checks cost nothing.
//!
//! ```text
//! repro validate [--seed N] [--inject-failure]
//! ```
//!
//! runs the standalone validation battery — invariant sweeps over
//! representative scenarios plus metamorphic (relabeling, population
//! monotonicity) and differential (executor determinism, BFS agreement)
//! checks — printing a pass/fail table and exiting non-zero if any
//! check fails. `--inject-failure` registers a deliberately failing
//! invariant to prove violations surface.
//!
//! ```text
//! repro bench [--out FILE] [--baseline FILE] [--max-regression PCT]
//!             [--warmup N] [--iters N]
//! ```
//!
//! times the simulation kernels (see `agentnet_experiments::benchkit`)
//! and writes a `BENCH_<date>.json` report (override with `--out`).
//! With `--baseline`, compares calibration-normalized timings against
//! the baseline report and exits non-zero if any kernel regressed by
//! more than `--max-regression` percent (default 25) — the CI perf
//! gate.
//!
//! ```text
//! repro lint [--baseline] [--root DIR] [--rules] [--format text|json]
//! ```
//!
//! runs the `agentlint` static-analysis pass (see `agentnet_lint`) over
//! the workspace sources, printing findings as `file:line rule message`
//! and exiting non-zero on any finding not grandfathered by the
//! committed `lint.toml` — or on a stale `lint.toml` entry that no
//! longer matches, so the baseline can only shrink. `--baseline`
//! rewrites `lint.toml` from the current findings; `--rules` lists the
//! rule catalogue. `--format json` prints one machine-readable object
//! (schema 1: rule catalogue, sorted findings with source snippets,
//! new/stale baseline diff, counts) to stdout instead of text lines,
//! with the same exit-code contract.
//!
//! ```text
//! repro serve [--nodes N] [--protocol ARM] [--population P] [--cache C]
//!             [--seed S] [--warmup W] [--steps K] [--step-micros U]
//!             [--port P] [--http-port P] [--threads T]
//!             [--duration-secs D] [--metrics-out FILE]
//!             [--metrics-prom FILE] [--dump-routes]
//! ```
//!
//! boots the route-query daemon (see `agentnet_serve`): a step thread
//! advances the chosen protocol arm on a `--nodes`-node scaled preset
//! while UDP worker threads answer route/link/reachability queries from
//! a double-buffered map snapshot, and `--http-port` serves
//! `GET /metrics` for scraping. The startup line on stdout names the
//! bound addresses; `--duration-secs` bounds the serving window (0 =
//! until the step budget completes, or forever for a frozen map). On
//! exit, query counts and p50/p95/p99 latency quantiles go to stderr,
//! `--metrics-prom` writes the registry as Prometheus text, and
//! `--metrics-out` writes a run manifest with a `serve` section.
//! `--dump-routes` skips the sockets entirely and prints every node's
//! frozen route reply deterministically (the golden check that serving
//! answers match the batch `RouteIndex`).

use agentnet_core::routing::ProtocolKind;
use agentnet_engine::obs::{Metrics, DURATION_MICROS_BUCKETS};
use agentnet_engine::perf::{BenchOptions, BenchReport};
use agentnet_engine::table::Table;
use agentnet_engine::{Executor, ResultCache, RunEvent};
use agentnet_experiments::obs::{
    percent_or_dash, rate_or_dash, CacheStats, ExperimentCellStats, RunManifest, TraceSink,
    MANIFEST_SCHEMA,
};
use agentnet_experiments::{benchkit, registry, Ctx, Mode};
use agentnet_validate::{run_battery, ValidateConfig};
use crossbeam::channel;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke|--quick|--full] [--jobs N] [--resume] [--no-cache]\n\
         \x20            [--cache-dir DIR] [--filter SUBSTRING]... [--json FILE]\n\
         \x20            [--out DIR] [--metrics-out FILE] [--metrics-prom FILE]\n\
         \x20            [--trace-out FILE] [--trace] [--check] [--list] [EXPERIMENT_ID ...]\n\
         \x20      repro validate [--seed N] [--inject-failure] [--protocol ARM]\n\
         \x20      repro bench [--out FILE] [--baseline FILE] [--max-regression PCT]\n\
         \x20            [--warmup N] [--iters N] [--filter SUBSTRING]...\n\
         \x20      repro lint [--baseline] [--root DIR] [--rules] [--format text|json]\n\
         \x20      repro serve [--nodes N] [--protocol ARM] [--population P] [--cache C]\n\
         \x20            [--seed S] [--warmup W] [--steps K] [--step-micros U]\n\
         \x20            [--port P] [--http-port P] [--threads T] [--duration-secs D]\n\
         \x20            [--metrics-out FILE] [--metrics-prom FILE] [--dump-routes]"
    );
    eprintln!("experiments:");
    for e in registry::all() {
        eprintln!("  {:<16} {}", e.id, e.title);
    }
    std::process::exit(2);
}

fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Smoke => "smoke",
        Mode::Quick => "quick",
        Mode::Full => "full",
    }
}

/// Per-experiment cell counters aggregated from the executor's events.
#[derive(Default, Clone, Copy)]
struct CellStats {
    cells: usize,
    hits: usize,
}

/// Per-replicate event retention `--trace-out` asks simulations for.
/// Large enough for every event of a smoke/quick replicate; full-mode
/// overflow is reported via the export's dropped count.
const TRACE_EXPORT_CAPACITY: usize = 4096;

/// The `repro validate` subcommand: runs the validation battery, prints
/// its pass/fail table, exits non-zero on any failure.
fn run_validate(args: impl Iterator<Item = String>) -> ExitCode {
    let mut cfg = ValidateConfig::default();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(seed) => cfg.seed = seed,
                None => usage(),
            },
            "--inject-failure" => cfg.inject_failure = true,
            "--protocol" => match args.next().map(|a| a.parse::<ProtocolKind>()) {
                Some(Ok(kind)) => cfg.protocol = Some(kind),
                Some(Err(e)) => {
                    eprintln!("repro validate: {e}");
                    usage()
                }
                None => usage(),
            },
            _ => usage(),
        }
    }
    eprintln!(
        "repro validate: seed {}{}{}",
        cfg.seed,
        match cfg.protocol {
            Some(kind) => format!(", restricted to the {kind} arm"),
            None => String::new(),
        },
        if cfg.inject_failure { ", with an injected failing invariant" } else { "" }
    );
    let report = run_battery(cfg);
    println!("# agentnet validate — {} checks\n", report.len());
    println!("{}", report.to_table().to_markdown());
    let failures = report.failures();
    if failures.is_empty() {
        println!("\nall {} checks passed", report.len());
        ExitCode::SUCCESS
    } else {
        println!("\n{} of {} checks FAILED:", failures.len(), report.len());
        for f in failures {
            println!("- {}: {}", f.name, f.details);
        }
        ExitCode::FAILURE
    }
}

/// The `repro bench` subcommand: times the kernel suite, writes the
/// `BENCH_<date>.json` report, and (with `--baseline`) gates on
/// calibration-normalized regressions.
fn run_bench(args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = BenchOptions::default();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut max_regression_pct = 25.0f64;
    let mut filters: Vec<String> = Vec::new();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => usage(),
            },
            "--filter" => match args.next() {
                Some(f) => filters.push(f),
                None => usage(),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(path),
                None => usage(),
            },
            "--max-regression" => match args.next().and_then(|n| n.parse().ok()) {
                Some(pct) => max_regression_pct = pct,
                None => usage(),
            },
            "--warmup" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.warmup = n,
                None => usage(),
            },
            "--iters" => match args.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => opts.iters = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    // Stamps the report filename/date only; kernel timings are
    // calibration-normalized in perf.
    // agentlint::allow(no-ambient-entropy)
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    eprintln!(
        "repro bench: {} warmup + {} measured iterations per kernel",
        opts.warmup, opts.iters
    );
    // Load the baseline up front so the retry (below) can happen before
    // the report file is written.
    let baseline: Option<BenchReport> = match &baseline_path {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("failed to parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // A baseline without a usable calibration kernel would make
    // `normalized()` return `None` for every kernel and the gate pass
    // vacuously — refuse instead of silently comparing nothing.
    if let (Some(b), Some(path)) = (&baseline, &baseline_path) {
        if let Some(err) = b.calibration_error() {
            eprintln!("repro bench: baseline {path} is unusable: {err}");
            eprintln!(
                "repro bench: without a valid calibration kernel no timing can be \
                 normalized and the regression gate passes vacuously; refusing to run"
            );
            return ExitCode::FAILURE;
        }
    }

    // Kernel selection: with no --filter everything runs; otherwise a
    // kernel runs when any filter substring matches its name. The
    // calibration kernel always runs so the report stays normalizable.
    //
    // Every filter must match at least one kernel of the suite: a
    // filter matching nothing (a typo, or a kernel renamed since the CI
    // smoke was written) would silently time an empty set and the gate
    // would pass vacuously — the same blind spot as the PR 5
    // calibration-less baselines, so it hard-errors the same way.
    let names = benchkit::kernel_names();
    for f in &filters {
        if !names.iter().any(|n| n.contains(f.as_str())) {
            eprintln!("repro bench: --filter {f} matches no kernel");
            eprintln!("repro bench: known kernels: {}", names.join(", "));
            return ExitCode::FAILURE;
        }
    }
    let keep = |name: &str| filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()));

    // agentlint::allow(no-ambient-entropy) — stderr progress timing only.
    let started = Instant::now();
    let mut report = benchkit::run_kernels_matching(opts, unix_seconds, &keep);
    eprintln!("timed {} kernels in {:.1}s", report.kernels.len(), started.elapsed().as_secs_f64());
    if let Some(err) = report.calibration_error() {
        eprintln!("repro bench: this run's report is unusable: {err}");
        return ExitCode::FAILURE;
    }

    // An apparent regression on a loaded machine is usually noise: it
    // must survive a full re-measurement (per-kernel best of both runs)
    // before it fails the gate.
    if let Some(baseline) = &baseline {
        if !report.regressions(baseline, max_regression_pct).is_empty() {
            eprintln!("apparent regression; re-measuring to confirm");
            let second = benchkit::run_kernels_matching(opts, unix_seconds, &keep);
            for k in &mut report.kernels {
                if let Some(s) = second.kernel(&k.kernel) {
                    k.ns_per_iter = k.ns_per_iter.min(s.ns_per_iter);
                    k.mean_ns = k.mean_ns.min(s.mean_ns);
                    k.min_ns = k.min_ns.min(s.min_ns);
                }
            }
        }
    }

    println!("# agentnet bench — {}\n", report.date);
    let mut table = Table::new(["kernel", "ns/iter (median)", "min ns", "normalized"]);
    for k in &report.kernels {
        table.push_row([
            k.kernel.clone(),
            format!("{:.0}", k.ns_per_iter),
            format!("{:.0}", k.min_ns),
            match report.normalized(&k.kernel) {
                Some(n) => format!("{n:.3}"),
                None => "-".to_string(),
            },
        ]);
    }
    println!("{}", table.to_markdown());

    let out_path = out_path.unwrap_or_else(|| format!("BENCH_{}.json", report.date));
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    if let Err(e) = std::fs::write(&out_path, json + "\n") {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    let (Some(baseline), Some(baseline_path)) = (baseline, baseline_path) else {
        return ExitCode::SUCCESS;
    };
    let regressions = report.regressions(&baseline, max_regression_pct);
    if regressions.is_empty() {
        println!(
            "no kernel regressed more than {max_regression_pct}% vs baseline {baseline_path} \
             (dated {})",
            baseline.date
        );
    } else {
        println!("{} kernel(s) regressed more than {max_regression_pct}%:", regressions.len());
        for r in &regressions {
            println!(
                "- {}: normalized {:.3} -> {:.3} ({:.0}% slower)",
                r.kernel,
                r.baseline,
                r.current,
                (r.ratio - 1.0) * 100.0
            );
        }
    }
    // A kernel added since the baseline was taken has nothing to gate
    // against; surface it instead of letting the suite grow ungated.
    let ungated = report.ungated_kernels(&baseline);
    if !ungated.is_empty() {
        println!(
            "{} kernel(s) missing from baseline {baseline_path} (timed but NOT gated):",
            ungated.len()
        );
        for k in &ungated {
            println!("- {k}");
        }
        println!("refresh the baseline (repro bench --out {baseline_path}) to cover them");
    }
    if regressions.is_empty() && ungated.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The machine-readable `repro lint --format json` payload, schema 1:
/// the rule catalogue, every finding (sorted, with the trimmed source
/// line as `snippet`), the baseline diff, and summary counts. Keys
/// serialize in sorted order, so the output is byte-deterministic for a
/// given tree — CI and editor integrations can diff it directly.
fn lint_json(
    root: &std::path::Path,
    findings: &[agentnet_lint::Finding],
    diff: &agentnet_lint::baseline::Diff,
) -> serde_json::Value {
    let mut sources: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut finding_json = |f: &agentnet_lint::Finding| {
        let lines = sources.entry(f.file.clone()).or_insert_with(|| {
            std::fs::read_to_string(root.join(&f.file))
                .map(|s| s.lines().map(str::to_string).collect())
                .unwrap_or_default()
        });
        let snippet = (f.line as usize)
            .checked_sub(1)
            .and_then(|i| lines.get(i))
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        serde_json::json!({
            "file": f.file,
            "line": f.line,
            "rule": f.rule,
            "message": f.message,
            "snippet": snippet,
        })
    };
    serde_json::json!({
        "schema": 1,
        "rules": agentnet_lint::all_rules()
            .iter()
            .map(|r| serde_json::json!({ "name": r.name(), "description": r.description() }))
            .collect::<Vec<_>>(),
        "findings": findings.iter().map(&mut finding_json).collect::<Vec<_>>(),
        "new": diff.new.iter().map(&mut finding_json).collect::<Vec<_>>(),
        "stale": diff.stale
            .iter()
            .map(|e| serde_json::json!({ "file": e.file, "line": e.line, "rule": e.rule }))
            .collect::<Vec<_>>(),
        "counts": {
            "findings": findings.len(),
            "baselined": findings.len() - diff.new.len(),
            "new": diff.new.len(),
            "stale": diff.stale.len(),
        },
    })
}

/// The `repro lint` subcommand: runs the `agentlint` rules over the
/// workspace, diffs against the committed `lint.toml` baseline, prints
/// findings as `file:line rule message`, and exits non-zero on new
/// findings or stale baseline entries.
fn run_lint(args: impl Iterator<Item = String>) -> ExitCode {
    let mut snapshot = false;
    let mut show_rules = false;
    let mut json = false;
    let mut root_arg: Option<String> = None;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => snapshot = true,
            "--rules" => show_rules = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(dir),
                None => usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    if show_rules {
        println!("# agentlint rules\n");
        for rule in agentnet_lint::all_rules() {
            println!("{:<24} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    let root = match root_arg {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
            match agentnet_lint::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("repro lint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let findings = match agentnet_lint::run_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("repro lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let baseline_path = root.join("lint.toml");
    if snapshot {
        if let Err(e) = agentnet_lint::baseline::save(&baseline_path, &findings) {
            eprintln!("repro lint: failed to write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "repro lint: snapshot of {} finding(s) written to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match agentnet_lint::baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("repro lint: failed to read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let diff = agentnet_lint::baseline::diff(&findings, &baseline);
    if json {
        match serde_json::to_string(&lint_json(&root, &findings, &diff)) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("repro lint: failed to serialize findings: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for f in &diff.new {
            println!("{f}");
        }
        for s in &diff.stale {
            println!("lint.toml stale-entry {s}");
        }
    }
    eprintln!(
        "repro lint: {} finding(s) ({} baselined, {} new), {} stale baseline entr{}",
        findings.len(),
        findings.len() - diff.new.len(),
        diff.new.len(),
        diff.stale.len(),
        if diff.stale.len() == 1 { "y" } else { "ies" }
    );
    if diff.new.is_empty() && diff.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `repro serve` subcommand: boots the `agentnet_serve` daemon,
/// serves for the requested window, and reports query counts plus
/// latency quantiles (with optional Prometheus / manifest exports).
fn run_serve(args: impl Iterator<Item = String>) -> ExitCode {
    use agentnet_baselines::zoo::ZooParams;
    use agentnet_serve::{ServeConfig, Server};
    use std::net::SocketAddr;
    use std::time::Duration;

    let mut config = ServeConfig { metrics: Metrics::enabled(), ..ServeConfig::default() };
    let mut population: Option<usize> = None;
    let mut cache: Option<usize> = None;
    let mut step_micros = 0u64;
    let mut duration_secs = 0.0f64;
    let mut metrics_out: Option<String> = None;
    let mut metrics_prom: Option<String> = None;
    let mut dump_routes = false;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.nodes = n,
                None => usage(),
            },
            "--protocol" => match args.next().map(|a| a.parse::<ProtocolKind>()) {
                Some(Ok(kind)) => config.protocol = kind,
                Some(Err(e)) => {
                    eprintln!("repro serve: {e}");
                    usage()
                }
                None => usage(),
            },
            "--population" => match args.next().and_then(|n| n.parse().ok()) {
                Some(p) => population = Some(p),
                None => usage(),
            },
            "--cache" => match args.next().and_then(|n| n.parse().ok()) {
                Some(c) => cache = Some(c),
                None => usage(),
            },
            "--seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(s) => config.seed = s,
                None => usage(),
            },
            "--warmup" => match args.next().and_then(|n| n.parse().ok()) {
                Some(w) => config.warmup_steps = w,
                None => usage(),
            },
            "--steps" => match args.next().and_then(|n| n.parse().ok()) {
                Some(k) => config.steps = k,
                None => usage(),
            },
            "--step-micros" => match args.next().and_then(|n| n.parse().ok()) {
                Some(u) => step_micros = u,
                None => usage(),
            },
            "--port" => match args.next().and_then(|n| n.parse::<u16>().ok()) {
                Some(p) => config.udp_addr = SocketAddr::from(([127, 0, 0, 1], p)),
                None => usage(),
            },
            "--http-port" => match args.next().and_then(|n| n.parse::<u16>().ok()) {
                Some(p) => config.http_addr = Some(SocketAddr::from(([127, 0, 0, 1], p))),
                None => usage(),
            },
            "--threads" => match args.next().and_then(|n| n.parse().ok()) {
                Some(t) => config.query_threads = t,
                None => usage(),
            },
            "--duration-secs" => match args.next().and_then(|n| n.parse().ok()) {
                Some(d) => duration_secs = d,
                None => usage(),
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => usage(),
            },
            "--metrics-prom" => match args.next() {
                Some(path) => metrics_prom = Some(path),
                None => usage(),
            },
            "--dump-routes" => dump_routes = true,
            _ => usage(),
        }
    }
    let default_population = config.params.population;
    config.params = ZooParams::with_population(population.unwrap_or(default_population))
        .cache(cache.unwrap_or(0));
    config.step_interval = Duration::from_micros(step_micros);

    if dump_routes {
        return dump_frozen_routes(&config);
    }

    let steps = config.steps;
    let (nodes, protocol, seed, warmup) =
        (config.nodes, config.protocol, config.seed, config.warmup_steps);
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("repro serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The startup line is the daemon's contract with load generators:
    // bound addresses first, then flush, so a parent process can parse
    // the ephemeral ports before the first query.
    println!(
        "serve: udp={} http={} nodes={nodes} protocol={protocol} seed={seed} warmup={warmup} \
         steps={steps}",
        server.udp_addr(),
        match server.http_addr() {
            Some(addr) => addr.to_string(),
            None => "-".to_string(),
        },
    );
    let _ = std::io::stdout().flush();

    // Serving window: a positive --duration-secs bounds it by wall
    // clock; otherwise a stepping daemon exits when its budget is done
    // and a frozen one serves until killed.
    // agentlint::allow(no-ambient-entropy) — serve deadline only.
    let started = Instant::now();
    loop {
        let elapsed = started.elapsed().as_secs_f64();
        if duration_secs > 0.0 {
            if elapsed >= duration_secs {
                break;
            }
        } else if steps > 0 && server.stepping_done() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let served_secs = started.elapsed().as_secs_f64();

    let snapshot = server.metrics().snapshot();
    let queries = snapshot.counters.get("serve_queries_total").copied().unwrap_or(0);
    let query_errors = snapshot.counters.get("serve_query_errors_total").copied().unwrap_or(0);
    let latency = snapshot.histograms.get("serve_query_micros");
    let (p50, p95, p99) = match latency {
        Some(h) => (h.p50(), h.p95(), h.p99()),
        None => (None, None, None),
    };
    let quantile_or_dash =
        |q: Option<f64>| q.map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".to_string());
    let qps = if served_secs > 0.0 { queries as f64 / served_secs } else { 0.0 };
    eprintln!(
        "repro serve: {queries} queries ({query_errors} errors) in {served_secs:.1}s \
         ({qps:.0}/s); latency µs p50={} p95={} p99={}",
        quantile_or_dash(p50),
        quantile_or_dash(p95),
        quantile_or_dash(p99),
    );

    if let Some(path) = &metrics_prom {
        if let Err(e) = std::fs::write(path, snapshot.to_prometheus()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (Prometheus text exposition)");
    }
    if let Some(path) = &metrics_out {
        let manifest = RunManifest {
            schema: MANIFEST_SCHEMA,
            mode: "serve".to_string(),
            jobs: 0,
            invariant_checks: false,
            wall_secs: served_secs,
            cache: CacheStats { enabled: false, resume: false, dir: None, hits: 0, misses: 0 },
            experiments: Vec::new(),
            protocols: vec![protocol.name().to_string()],
            serve: Some(agentnet_experiments::obs::ServeStats {
                nodes: nodes as u64,
                protocol: protocol.name().to_string(),
                seed,
                warmup_steps: warmup,
                steps,
                udp_addr: server.udp_addr().to_string(),
                http_addr: server.http_addr().map(|a| a.to_string()),
                served_secs,
                queries,
                query_errors,
                qps,
                p50_micros: p50,
                p95_micros: p95,
                p99_micros: p99,
            }),
            metrics: snapshot,
        };
        if let Err(e) = std::fs::write(path, manifest.to_json_pretty()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (run manifest, schema {MANIFEST_SCHEMA}, serve section)");
    }
    server.shutdown();
    ExitCode::SUCCESS
}

/// `repro serve --dump-routes`: skip the sockets, freeze the map after
/// warmup, and print every node's wire-format route reply — the golden
/// surface pinning "a frozen daemon answers exactly what the batch
/// `RouteIndex` computes".
fn dump_frozen_routes(config: &agentnet_serve::ServeConfig) -> ExitCode {
    use agentnet_baselines::zoo::build_protocol;
    use agentnet_core::routing::RouteIndex;
    use agentnet_engine::Step;
    use agentnet_graph::NodeId;
    use agentnet_radio::NetworkBuilder;
    use agentnet_serve::{wire, MapSnapshot};

    let net = match NetworkBuilder::scaled_preset(config.nodes).build(config.seed) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("repro serve: build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut protocol = match build_protocol(config.protocol, net, &config.params, config.seed) {
        Ok(protocol) => protocol,
        Err(e) => {
            eprintln!("repro serve: build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for s in 0..config.warmup_steps {
        protocol.step(Step::new(s));
    }
    let n = protocol.network().node_count();
    let mut index = RouteIndex::new(n);
    let snap = MapSnapshot::capture(protocol.as_ref(), &mut index, Step::new(config.warmup_steps));
    println!("{}", wire::respond(0, wire::Request::Info, &snap));
    for v in 0..n {
        let node = NodeId::new(v);
        println!("{}", wire::respond(v as u64, wire::Request::Route(node), &snap));
        println!("{}", wire::respond(v as u64, wire::Request::Reach(node), &snap));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut mode = Mode::Quick;
    let mut jobs = 0usize; // 0 = all cores
    let mut resume = false;
    let mut no_cache = false;
    let mut cache_dir = String::from("results_cache");
    let mut filters: Vec<String> = Vec::new();
    let mut trace = false;
    let mut check = false;
    let mut json_path: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_prom: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("validate") {
        args.next();
        return run_validate(args);
    }
    if args.peek().map(String::as_str) == Some("bench") {
        args.next();
        return run_bench(args);
    }
    if args.peek().map(String::as_str) == Some("lint") {
        args.next();
        return run_lint(args);
    }
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        return run_serve(args);
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => mode = Mode::Full,
            "--quick" => mode = Mode::Quick,
            "--smoke" => mode = Mode::Smoke,
            "--jobs" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => usage(),
            },
            "--resume" => resume = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => match args.next() {
                Some(dir) => cache_dir = dir,
                None => usage(),
            },
            "--filter" => match args.next() {
                Some(sub) => filters.push(sub),
                None => usage(),
            },
            "--trace" => trace = true,
            "--check" => check = true,
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => usage(),
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(dir),
                None => usage(),
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => usage(),
            },
            "--metrics-prom" => match args.next() {
                Some(path) => metrics_prom = Some(path),
                None => usage(),
            },
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => usage(),
            },
            "--list" => {
                for e in registry::all() {
                    println!("{:<16} {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }

    let mut experiments: Vec<_> = if ids.is_empty() {
        registry::all()
    } else {
        ids.iter()
            .map(|id| {
                registry::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id: {id}");
                    usage()
                })
            })
            .collect()
    };
    if !filters.is_empty() {
        experiments.retain(|e| filters.iter().any(|f| e.id.contains(f.as_str())));
    }
    if experiments.is_empty() {
        eprintln!("no experiments selected");
        return ExitCode::FAILURE;
    }

    // Observability is opt-in: the registry is live only when an output
    // flag will consume it, so the default path records nothing and the
    // reports on stdout are byte-identical either way.
    let want_obs = metrics_out.is_some() || metrics_prom.is_some() || trace_out.is_some();
    let obs = if want_obs { Metrics::enabled() } else { Metrics::disabled() };
    let trace_sink = trace_out.as_ref().map(|_| TraceSink::new(TRACE_EXPORT_CAPACITY));

    let mut exec = Executor::new(jobs);
    if !no_cache {
        exec = exec.with_cache(ResultCache::new(&cache_dir), resume);
    }
    let (event_tx, event_rx) = channel::unbounded::<RunEvent>();
    let exec = exec.with_event_sink(event_tx);
    eprintln!(
        "repro: {} experiment(s), {} mode, {} worker(s), cache {}{}",
        experiments.len(),
        mode_name(mode),
        exec.jobs(),
        if no_cache {
            "off".to_string()
        } else {
            format!("{cache_dir} ({})", if resume { "resume" } else { "write-only" })
        },
        if check { ", invariant checks on" } else { "" },
    );

    // Drains trace events while experiments run; returns the per-
    // experiment counters once the executor (the only sender) drops.
    let collector_obs = obs.clone();
    // The collector must outlive the executor's thread scope (it drains
    // the channel the scoped workers send into), so it cannot itself be
    // scoped; joined explicitly below once the sender side drops.
    // agentlint::allow(no-bare-spawn)
    let collector = std::thread::spawn(move || {
        let mut stats: BTreeMap<String, CellStats> = BTreeMap::new();
        for event in event_rx {
            let RunEvent::CellFinished { experiment, replicate, seed, cached, micros, wait_micros } =
                event;
            if trace {
                eprintln!(
                    "cell {experiment} replicate={replicate} seed={seed:016x} \
                     cached={cached} micros={micros}"
                );
            }
            collector_obs.counter_add("exec_cells_total", 1);
            if cached {
                collector_obs.counter_add("exec_cache_hits_total", 1);
            } else {
                collector_obs.counter_add("exec_cache_misses_total", 1);
                collector_obs.observe("exec_cell_micros", micros as f64, DURATION_MICROS_BUCKETS);
                collector_obs.observe(
                    "exec_queue_wait_micros",
                    wait_micros as f64,
                    DURATION_MICROS_BUCKETS,
                );
            }
            let entry = stats.entry(experiment).or_default();
            entry.cells += 1;
            if cached {
                entry.hits += 1;
            }
        }
        stats
    });

    // One thread per experiment; the shared executor flattens their
    // cells over its worker permits. Reports fan back in indexed so
    // stdout order (and content) is independent of scheduling.
    // Wall-clock for the stderr run-metrics table; reports depend only
    // on seeds.
    // agentlint::allow(no-ambient-entropy)
    let run_started = Instant::now();
    let (report_tx, report_rx) = channel::unbounded();
    std::thread::scope(|scope| {
        for (idx, exp) in experiments.iter().enumerate() {
            let report_tx = report_tx.clone();
            let exec = &exec;
            let obs = &obs;
            let trace_sink = trace_sink.as_ref();
            scope.spawn(move || {
                eprintln!("running {} ...", exp.id);
                // agentlint::allow(no-ambient-entropy) — stderr metrics only.
                let started = Instant::now();
                let mut ctx = Ctx::new(exec, exp.id, mode).checked(check).with_metrics(obs);
                if let Some(sink) = trace_sink {
                    ctx = ctx.with_trace_sink(sink);
                }
                let report = (exp.run)(&ctx);
                let secs = started.elapsed().as_secs_f64();
                eprintln!("finished {} in {secs:.1}s", exp.id);
                let _ = report_tx.send((idx, report, secs));
            });
        }
    });
    drop(report_tx);
    let total_secs = run_started.elapsed().as_secs_f64();

    let mut slots: Vec<Option<(agentnet_experiments::report::ExperimentReport, f64)>> =
        (0..experiments.len()).map(|_| None).collect();
    for (idx, report, secs) in report_rx {
        slots[idx] = Some((report, secs));
    }
    let results: Vec<_> =
        slots.into_iter().map(|s| s.expect("experiment thread dropped its report")).collect();

    // Executor dropped here: its event sender closes and the collector
    // sees end-of-stream.
    let jobs_used = exec.jobs();
    drop(exec);
    let stats = collector.join().expect("event collector panicked");

    println!(
        "# agentnet repro — {} mode ({} replicates per setting)\n",
        mode_name(mode),
        mode.runs()
    );

    let mut failures = 0usize;
    for (report, _) in &results {
        if !report.passed() {
            failures += 1;
        }
        println!("{}", report.to_markdown());
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("failed to create {dir}: {e}");
                return ExitCode::FAILURE;
            }
            let path = format!("{dir}/{}.csv", report.id);
            if let Err(e) = std::fs::write(&path, report.table.to_csv()) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("---\n## Summary\n");
    for (r, _) in &results {
        println!("- {}: **{}** — {}", r.id, if r.passed() { "PASS" } else { "FAIL" }, r.title);
    }

    // Run metrics (stderr, so stdout stays byte-identical across jobs
    // counts and cache states).
    let mut metrics =
        Table::new(["experiment", "cells", "cache hits", "hit rate", "wall s", "cells/s"]);
    let (mut all_cells, mut all_hits) = (0usize, 0usize);
    for (exp, (_, secs)) in experiments.iter().zip(&results) {
        let st = stats.get(exp.id).copied().unwrap_or_default();
        all_cells += st.cells;
        all_hits += st.hits;
        metrics.push_row([
            exp.id.to_string(),
            st.cells.to_string(),
            st.hits.to_string(),
            percent_or_dash(st.hits as u64, st.cells as u64),
            format!("{secs:.1}"),
            rate_or_dash(st.cells as u64, *secs),
        ]);
    }
    eprintln!("\nrun metrics:\n{}", metrics.to_markdown());
    eprintln!(
        "total: {all_cells} cells, {all_hits} cache hits ({:.0}%), {total_secs:.1}s wall, \
         {:.1} cells/s",
        if all_cells == 0 { 0.0 } else { 100.0 * all_hits as f64 / all_cells as f64 },
        if total_secs > 0.0 { all_cells as f64 / total_secs } else { 0.0 },
    );

    // Observability side channel: files and stderr only, after every
    // stdout byte above has been printed.
    if let (Some(path), Some(sink)) = (&trace_out, &trace_sink) {
        let export = sink.export();
        obs.counter_add("trace_dropped_events_total", export.dropped);
        if let Err(e) = std::fs::write(path, &export.text) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {path} ({} trace event(s) from {} cell(s), {} dropped)",
            export.events, export.cells, export.dropped
        );
    }
    if want_obs {
        obs.gauge_set("run_wall_secs", total_secs);
    }
    if let Some(path) = &metrics_out {
        let manifest = RunManifest {
            schema: MANIFEST_SCHEMA,
            mode: mode_name(mode).to_string(),
            jobs: jobs_used,
            invariant_checks: check,
            wall_secs: total_secs,
            cache: CacheStats {
                enabled: !no_cache,
                resume,
                dir: if no_cache { None } else { Some(cache_dir.clone()) },
                hits: all_hits as u64,
                misses: (all_cells - all_hits) as u64,
            },
            experiments: experiments
                .iter()
                .zip(&results)
                .map(|(exp, (r, secs))| {
                    let st = stats.get(exp.id).copied().unwrap_or_default();
                    ExperimentCellStats {
                        id: exp.id.to_string(),
                        title: exp.title.to_string(),
                        passed: r.passed(),
                        cells: st.cells as u64,
                        cache_hits: st.hits as u64,
                        wall_secs: *secs,
                    }
                })
                .collect(),
            // The registry's zoo experiments drive every arm; a manifest
            // listing them says which protocols this run's figures cover.
            protocols: if experiments.iter().any(|e| e.id.starts_with("ext-zoo")) {
                ProtocolKind::ALL.iter().map(|k| k.name().to_string()).collect()
            } else {
                Vec::new()
            },
            serve: None,
            metrics: obs.snapshot(),
        };
        if let Err(e) = std::fs::write(path, manifest.to_json_pretty()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (run manifest, schema {MANIFEST_SCHEMA})");
    }
    if let Some(path) = &metrics_prom {
        if let Err(e) = std::fs::write(path, obs.snapshot().to_prometheus()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (Prometheus text exposition)");
    }

    if let Some(path) = json_path {
        let json = serde_json::json!({
            "mode": mode_name(mode),
            "reports": results.iter().map(|(r, _)| r.to_json()).collect::<Vec<_>>(),
        });
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) = writeln!(f, "{}", serde_json::to_string_pretty(&json).unwrap()) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) had failing shape claims");
    }
    ExitCode::SUCCESS
}
