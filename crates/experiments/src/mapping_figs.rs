//! Figures 1–6: the network-mapping study (§II).

use crate::report::{Claim, ExperimentReport};
use crate::{
    mapping_finishing_times, mapping_knowledge_curve, paper_mapping_graph, sample_curve, Ctx,
};
use agentnet_core::mapping::MappingConfig;
use agentnet_core::policy::MappingPolicy;
use agentnet_engine::table::Table;
use agentnet_engine::Summary;

/// Population axis of Figs. 5 and 6.
pub const POPULATIONS: [usize; 8] = [1, 2, 5, 10, 15, 20, 30, 50];

fn finish(ctx: &Ctx, policy: MappingPolicy, pop: usize, stig: bool, stream: u64) -> Summary {
    let graph = paper_mapping_graph();
    let config = MappingConfig::new(policy, pop).stigmergic(stig);
    mapping_finishing_times(ctx, &graph, &config, stream)
}

fn summary_row(label: &str, s: &Summary) -> [String; 5] {
    [
        label.to_string(),
        format!("{:.0}", s.mean),
        format!("{:.0}", s.std),
        format!("{:.0}", s.min),
        format!("{:.0}", s.max),
    ]
}

/// Fig. 1 — single N. Minar agent: random vs conscientious finishing
/// time (paper: ≈8000 vs ≈3000 steps).
pub fn fig1(ctx: &Ctx) -> ExperimentReport {
    let random = finish(ctx, MappingPolicy::Random, 1, false, 100);
    let consc = finish(ctx, MappingPolicy::Conscientious, 1, false, 101);
    let mut table = Table::new(["agent", "finish (mean)", "std", "min", "max"]);
    table.push_row(summary_row("random", &random));
    table.push_row(summary_row("conscientious", &consc));
    let claims = vec![Claim::new(
        "a single conscientious agent maps much faster than a random agent",
        format!("random {:.0} vs conscientious {:.0} steps", random.mean, consc.mean),
        consc.mean * 1.5 < random.mean,
    )];
    ExperimentReport {
        id: "fig1".into(),
        title: "single agent, N. Minar baselines".into(),
        paper_claim: "conscientious finishes ≈3000 steps vs random ≈8000".into(),
        table,
        claims,
        figure: None,
    }
}

/// Fig. 2 — single **stigmergic** agent: random vs conscientious
/// (paper: ≈6600 vs ≈2500; both beat their Fig. 1 counterparts).
pub fn fig2(ctx: &Ctx) -> ExperimentReport {
    let random = finish(ctx, MappingPolicy::Random, 1, false, 100);
    let consc = finish(ctx, MappingPolicy::Conscientious, 1, false, 101);
    let srandom = finish(ctx, MappingPolicy::Random, 1, true, 102);
    let sconsc = finish(ctx, MappingPolicy::Conscientious, 1, true, 103);
    let mut table = Table::new(["agent", "finish (mean)", "std", "min", "max"]);
    table.push_row(summary_row("random", &random));
    table.push_row(summary_row("stigmergic random", &srandom));
    table.push_row(summary_row("conscientious", &consc));
    table.push_row(summary_row("stigmergic conscientious", &sconsc));
    let claims = vec![
        Claim::new(
            "stigmergy speeds up the single random agent",
            format!("{:.0} -> {:.0} steps", random.mean, srandom.mean),
            srandom.mean < random.mean,
        ),
        Claim::new(
            "stigmergic conscientious stays within 25% of plain conscientious \
             (paper reports a speed-up; our conscientious baseline is near-optimal, \
             so stigmergy is neutral — see EXPERIMENTS.md)",
            format!("{:.0} vs {:.0} steps", sconsc.mean, consc.mean),
            sconsc.mean <= consc.mean * 1.25,
        ),
        Claim::new(
            "stigmergic conscientious beats stigmergic random",
            format!("{:.0} vs {:.0} steps", sconsc.mean, srandom.mean),
            sconsc.mean < srandom.mean,
        ),
    ];
    ExperimentReport {
        id: "fig2".into(),
        title: "single agent, stigmergic variants".into(),
        paper_claim: "stigmergic random ≈6600 / conscientious ≈2500; both beat Fig. 1".into(),
        table,
        claims,
        figure: None,
    }
}

fn knowledge_fig(
    ctx: &Ctx,
    id: &str,
    title: &str,
    paper_claim: &str,
    stig: bool,
    stream: u64,
) -> ExperimentReport {
    let graph = paper_mapping_graph();
    let config = MappingConfig::new(MappingPolicy::Conscientious, 15).stigmergic(stig);
    let curve = mapping_knowledge_curve(ctx, &graph, &config, stream);
    let finishing = mapping_finishing_times(ctx, &graph, &config, stream + 1);
    let mut table = Table::new(["step", "mean knowledge"]);
    for (step, k) in sample_curve(&curve, 15) {
        table.push_row([step.to_string(), format!("{k:.4}")]);
    }
    let monotone = curve.values().windows(2).all(|w| w[1] >= w[0] - 1e-9);
    let claims = vec![
        Claim::new(
            "knowledge grows monotonically to a perfect map",
            format!(
                "final knowledge {:.3}, monotone: {monotone}",
                curve.values().last().copied().unwrap_or(0.0)
            ),
            monotone && curve.values().last().is_some_and(|&v| v > 0.999),
        ),
        Claim::new(
            "15 cooperating agents finish an order of magnitude faster than one",
            format!("finishing time {:.0} steps", finishing.mean),
            finishing.mean * 2.0 < finish(ctx, MappingPolicy::Conscientious, 1, stig, 104).mean,
        ),
    ];
    ExperimentReport {
        id: id.into(),
        title: title.into(),
        paper_claim: paper_claim.into(),
        table,
        claims,
        figure: Some(agentnet_engine::plot::chart(&curve, 60, 8)),
    }
}

/// Fig. 3 — knowledge over time for 15 N. Minar conscientious agents
/// (paper: finish ≈140 steps).
pub fn fig3(ctx: &Ctx) -> ExperimentReport {
    knowledge_fig(
        ctx,
        "fig3",
        "knowledge over time, 15 Minar conscientious agents",
        "the team completes the map in ≈140 steps",
        false,
        110,
    )
}

/// Fig. 4 — knowledge over time for 15 **stigmergic** conscientious
/// agents (paper: finish ≈125 steps, ≈10 % faster than Fig. 3).
pub fn fig4(ctx: &Ctx) -> ExperimentReport {
    let mut report = knowledge_fig(
        ctx,
        "fig4",
        "knowledge over time, 15 stigmergic conscientious agents",
        "the stigmergic team is ≈10% faster (≈125 vs ≈140 steps)",
        true,
        120,
    );
    let minar = finish(ctx, MappingPolicy::Conscientious, 15, false, 111);
    let ours = finish(ctx, MappingPolicy::Conscientious, 15, true, 121);
    report.claims.push(Claim::new(
        "stigmergic conscientious team stays within 10% of the Minar team \
         (paper reports ≈10% faster; our salted tie-breaks already disperse \
         the plain team, so stigmergy is neutral at pop 15 — see EXPERIMENTS.md)",
        format!("{:.0} vs {:.0} steps", ours.mean, minar.mean),
        ours.mean <= minar.mean * 1.10,
    ));
    report
}

fn population_sweep(ctx: &Ctx, stig: bool, base_stream: u64) -> (Table, Vec<(usize, f64, f64)>) {
    let mut table = Table::new(["population", "conscientious", "super-conscientious", "winner"]);
    let mut rows = Vec::new();
    for (i, &pop) in POPULATIONS.iter().enumerate() {
        let c = finish(ctx, MappingPolicy::Conscientious, pop, stig, base_stream + 2 * i as u64);
        let s = finish(
            ctx,
            MappingPolicy::SuperConscientious,
            pop,
            stig,
            base_stream + 2 * i as u64 + 1,
        );
        let winner = if s.mean < c.mean * 0.97 {
            "super"
        } else if c.mean < s.mean * 0.97 {
            "conscientious"
        } else {
            "tie"
        };
        table.push_row([
            pop.to_string(),
            c.mean_ci_string(0),
            s.mean_ci_string(0),
            winner.to_string(),
        ]);
        rows.push((pop, c.mean, s.mean));
    }
    (table, rows)
}

/// Fig. 5 — conscientious vs super-conscientious across population sizes,
/// N. Minar agents. The paper's "surprising result": super-conscientious
/// wins at small populations but **loses** at large ones, because agents
/// that met hold identical knowledge and herd.
pub fn fig5(ctx: &Ctx) -> ExperimentReport {
    let (table, rows) = population_sweep(ctx, false, 200);
    let small = &rows[1]; // population 2
    let large: Vec<_> = rows.iter().filter(|r| r.0 >= 20).collect();
    let claims = vec![
        Claim::new(
            "at a small population super-conscientious is at least as good",
            format!("pop {}: super {:.0} vs conscientious {:.0}", small.0, small.2, small.1),
            small.2 <= small.1 * 1.05,
        ),
        Claim::new(
            "at large populations conscientious beats super-conscientious",
            large
                .iter()
                .map(|r| format!("pop {}: {:.0} vs {:.0}", r.0, r.1, r.2))
                .collect::<Vec<_>>()
                .join("; "),
            large.iter().all(|r| r.1 < r.2),
        ),
    ];
    ExperimentReport {
        id: "fig5".into(),
        title: "population sweep, Minar conscientious vs super-conscientious".into(),
        paper_claim:
            "super-conscientious wins small populations, ties moderate ones, loses large ones"
                .into(),
        table,
        claims,
        figure: None,
    }
}

/// Fig. 6 — the same sweep with **stigmergic** agents: footprints
/// disperse agents after meetings, so super-conscientious is at least as
/// good as conscientious at *every* population size.
pub fn fig6(ctx: &Ctx) -> ExperimentReport {
    let (table, rows) = population_sweep(ctx, true, 300);
    let claims = vec![Claim::new(
        "stigmergic super-conscientious ≤ stigmergic conscientious at every population",
        rows.iter()
            .map(|r| format!("pop {}: {:.0} vs {:.0}", r.0, r.2, r.1))
            .collect::<Vec<_>>()
            .join("; "),
        rows.iter().all(|r| r.2 <= r.1 * 1.05),
    )];
    ExperimentReport {
        id: "fig6".into(),
        title: "population sweep, stigmergic conscientious vs super-conscientious".into(),
        paper_claim: "with stigmergy, super-conscientious outperforms at all population sizes"
            .into(),
        table,
        claims,
        figure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full figure runs are exercised by the integration suite and the
    // repro binary; here we sanity-check the cheap helpers.

    #[test]
    fn populations_match_paper_axis() {
        assert_eq!(POPULATIONS.first(), Some(&1));
        assert_eq!(POPULATIONS.last(), Some(&50));
        assert!(POPULATIONS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn summary_row_formats_whole_steps() {
        let s = Summary::from_samples([10.4, 11.6]).unwrap();
        let row = summary_row("x", &s);
        assert_eq!(row[0], "x");
        assert_eq!(row[1], "11");
    }
}
