//! Figures 7–11: the dynamic-routing study (§III).

use crate::report::{Claim, ExperimentReport};
use crate::{
    routing_connectivity, routing_connectivity_curve, routing_temporal_wobble, sample_curve, Ctx,
    ROUTING_WINDOW,
};
use agentnet_core::policy::RoutingPolicy;
use agentnet_core::routing::RoutingConfig;
use agentnet_engine::table::Table;

/// Population axis of Fig. 8.
pub const POPULATIONS: [usize; 5] = [10, 25, 50, 100, 200];

/// History-size axis of Fig. 9. (The axis starts at 5: below that the
/// bounded route claim expires within a couple of hops of a gateway and
/// *neither* algorithm can cover the network — see EXPERIMENTS.md.)
pub const HISTORY_SIZES: [usize; 5] = [5, 10, 20, 40, 80];

/// Fig. 7 — connectivity over time for 100 oldest-node agents: starts at
/// zero, rises quickly, then fluctuates around its converged mean.
pub fn fig7(ctx: &Ctx) -> ExperimentReport {
    let config = RoutingConfig::new(RoutingPolicy::OldestNode, 100);
    let curve = routing_connectivity_curve(ctx, &config, 700);
    let mut table = Table::new(["step", "connectivity"]);
    for (step, c) in sample_curve(&curve, 20) {
        table.push_row([step.to_string(), format!("{c:.4}")]);
    }
    let first = curve.values().first().copied().unwrap_or(1.0);
    let converged = curve.window_mean(ROUTING_WINDOW).unwrap_or(0.0);
    let wobble = curve.window_std(ROUTING_WINDOW).unwrap_or(1.0);
    let claims = vec![
        Claim::new(
            "the network starts with (near) zero connectivity",
            format!("step 0 connectivity {first:.3}"),
            first < 0.2,
        ),
        Claim::new(
            "connectivity converges to a substantial level",
            format!("mean over steps 150-300: {converged:.3}"),
            converged > 0.4 && converged > 3.0 * first,
        ),
        Claim::new(
            "after convergence connectivity fluctuates around its mean",
            format!("within-window std {wobble:.4}"),
            wobble < 0.1,
        ),
    ];
    ExperimentReport {
        id: "fig7".into(),
        title: "connectivity over time, 100 oldest-node agents".into(),
        paper_claim: "connectivity rises from zero and fluctuates around a converged value".into(),
        table,
        claims,
        figure: Some(agentnet_engine::plot::chart(&curve, 60, 8)),
    }
}

/// Fig. 8 — population sweep: more agents mean higher and more stable
/// connectivity; oldest-node beats random at every population.
pub fn fig8(ctx: &Ctx) -> ExperimentReport {
    let mut table =
        Table::new(["population", "oldest-node", "random", "oldest wobble (temporal CV)"]);
    let mut oldest = Vec::new();
    let mut random = Vec::new();
    let mut wobbles = Vec::new();
    for (i, &pop) in POPULATIONS.iter().enumerate() {
        let o = routing_connectivity(
            ctx,
            &RoutingConfig::new(RoutingPolicy::OldestNode, pop),
            800 + 2 * i as u64,
        );
        let r = routing_connectivity(
            ctx,
            &RoutingConfig::new(RoutingPolicy::Random, pop),
            801 + 2 * i as u64,
        );
        // Relative fluctuation (std / mean): the visual "stability" of
        // the paper's plots, comparable across very different levels.
        let wobble = routing_temporal_wobble(
            ctx,
            &RoutingConfig::new(RoutingPolicy::OldestNode, pop),
            810 + i as u64,
        )
        .mean
            / o.mean.max(1e-9);
        table.push_row([
            pop.to_string(),
            o.mean_ci_string(3),
            r.mean_ci_string(3),
            format!("{wobble:.4}"),
        ]);
        oldest.push((pop, o.mean));
        random.push((pop, r.mean));
        wobbles.push((pop, wobble));
    }
    let claims = vec![
        Claim::new(
            "higher population yields higher connectivity",
            format!(
                "oldest-node: {:.3} at pop {} vs {:.3} at pop {}",
                oldest[0].1,
                oldest[0].0,
                oldest.last().unwrap().1,
                oldest.last().unwrap().0
            ),
            oldest.last().unwrap().1 > oldest[0].1,
        ),
        Claim::new(
            "oldest-node beats random at every population size",
            oldest
                .iter()
                .zip(&random)
                .map(|(o, r)| format!("pop {}: {:.3} vs {:.3}", o.0, o.1, r.1))
                .collect::<Vec<_>>()
                .join("; "),
            oldest.iter().zip(&random).all(|(o, r)| o.1 > r.1),
        ),
        Claim::new(
            "higher population yields more stable connectivity",
            format!(
                "relative fluctuation {:.4} at pop {} vs {:.4} at pop {}",
                wobbles[0].1,
                wobbles[0].0,
                wobbles.last().unwrap().1,
                wobbles.last().unwrap().0
            ),
            wobbles.last().unwrap().1 < wobbles[0].1,
        ),
    ];
    ExperimentReport {
        id: "fig8".into(),
        title: "connectivity vs agent population".into(),
        paper_claim: "the higher the population, the higher and more stable the connectivity; \
             oldest-node always beats random"
            .into(),
        table,
        claims,
        figure: None,
    }
}

/// Fig. 9 — history-size sweep: the more history, the higher (and more
/// stable) the connectivity; oldest-node beats random at every setting.
pub fn fig9(ctx: &Ctx) -> ExperimentReport {
    let mut table = Table::new(["history size", "oldest-node", "random"]);
    let mut oldest = Vec::new();
    let mut random = Vec::new();
    for (i, &h) in HISTORY_SIZES.iter().enumerate() {
        let o = routing_connectivity(
            ctx,
            &RoutingConfig::new(RoutingPolicy::OldestNode, 100).history_size(h),
            900 + 2 * i as u64,
        );
        let r = routing_connectivity(
            ctx,
            &RoutingConfig::new(RoutingPolicy::Random, 100).history_size(h),
            901 + 2 * i as u64,
        );
        table.push_row([h.to_string(), o.mean_ci_string(3), r.mean_ci_string(3)]);
        oldest.push((h, o.mean));
        random.push((h, r.mean));
    }
    let claims = vec![
        Claim::new(
            "more history yields higher connectivity",
            format!(
                "oldest-node: {:.3} at h={} vs {:.3} at h={}",
                oldest[0].1,
                oldest[0].0,
                oldest.last().unwrap().1,
                oldest.last().unwrap().0
            ),
            oldest.last().unwrap().1 > 1.5 * oldest[0].1,
        ),
        Claim::new(
            "oldest-node beats random at every history size",
            oldest
                .iter()
                .zip(&random)
                .map(|(o, r)| format!("h {}: {:.3} vs {:.3}", o.0, o.1, r.1))
                .collect::<Vec<_>>()
                .join("; "),
            oldest.iter().zip(&random).all(|(o, r)| o.1 > r.1),
        ),
    ];
    ExperimentReport {
        id: "fig9".into(),
        title: "connectivity vs history (cache) size".into(),
        paper_claim: "the more the history size, the higher the connectivity and stability".into(),
        table,
        claims,
        figure: None,
    }
}

/// Fig. 10 — direct communication for **random** agents: meeting agents
/// exchange their best route; connectivity improves.
pub fn fig10(ctx: &Ctx) -> ExperimentReport {
    let base = RoutingConfig::new(RoutingPolicy::Random, 100);
    let plain = routing_connectivity(ctx, &base, 1000);
    let comm = routing_connectivity(ctx, &base.clone().communication(true), 1001);
    let mut table = Table::new(["variant", "connectivity"]);
    table.push_row(["random, no visiting", &plain.mean_ci_string(3)]);
    table.push_row(["random, visiting", &comm.mean_ci_string(3)]);
    let claims = vec![Claim::new(
        "visiting (best-route exchange) improves random agents",
        format!("{:.3} -> {:.3}", plain.mean, comm.mean),
        comm.mean > plain.mean,
    )];
    ExperimentReport {
        id: "fig10".into(),
        title: "random agents, visiting vs not".into(),
        paper_claim: "direct communication has a positive effect for random agents".into(),
        table,
        claims,
        figure: None,
    }
}

/// Fig. 11 — direct communication for **oldest-node** agents: after a
/// meeting the participants hold identical histories, make identical
/// decisions and chase one another; connectivity *drops*.
pub fn fig11(ctx: &Ctx) -> ExperimentReport {
    let base = RoutingConfig::new(RoutingPolicy::OldestNode, 100);
    let plain = routing_connectivity(ctx, &base, 1100);
    let comm = routing_connectivity(ctx, &base.clone().communication(true), 1101);
    let mut table = Table::new(["variant", "connectivity"]);
    table.push_row(["oldest-node, no visiting", &plain.mean_ci_string(3)]);
    table.push_row(["oldest-node, visiting", &comm.mean_ci_string(3)]);
    let claims = vec![Claim::new(
        "visiting hurts oldest-node agents (identical histories cause chasing)",
        format!("{:.3} -> {:.3}", plain.mean, comm.mean),
        comm.mean < plain.mean,
    )];
    ExperimentReport {
        id: "fig11".into(),
        title: "oldest-node agents, visiting vs not".into(),
        paper_claim: "direct communication has a negative effect for oldest-node agents".into(),
        table,
        claims,
        figure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_match_paper() {
        assert_eq!(POPULATIONS, [10, 25, 50, 100, 200]);
        assert_eq!(HISTORY_SIZES, [5, 10, 20, 40, 80]);
    }
}
