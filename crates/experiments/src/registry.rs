//! The experiment registry: every figure and extension by id.

use crate::report::ExperimentReport;
use crate::{comparisons, extensions, mapping_figs, protocols, routing_figs, Ctx, Mode};
use agentnet_engine::Executor;

/// A runnable experiment.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Stable id (`fig1` ... `fig11`, `ext-*`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Regenerates the figure and checks its shape claims.
    pub run: fn(&Ctx) -> ExperimentReport,
}

impl Experiment {
    /// Runs the experiment one cell at a time with no cache — the
    /// reference configuration every parallel/cached run must match
    /// bit-for-bit. Tests and benches use this.
    pub fn run_serial(&self, mode: Mode) -> ExperimentReport {
        let exec = Executor::serial();
        (self.run)(&Ctx::new(&exec, self.id, mode))
    }
}

/// Every experiment, in paper order followed by extensions.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment { id: "fig1", title: "single agent, Minar baselines", run: mapping_figs::fig1 },
        Experiment {
            id: "fig2",
            title: "single agent, stigmergic variants",
            run: mapping_figs::fig2,
        },
        Experiment {
            id: "fig3",
            title: "knowledge over time, 15 Minar conscientious agents",
            run: mapping_figs::fig3,
        },
        Experiment {
            id: "fig4",
            title: "knowledge over time, 15 stigmergic conscientious agents",
            run: mapping_figs::fig4,
        },
        Experiment { id: "fig5", title: "population sweep, Minar agents", run: mapping_figs::fig5 },
        Experiment {
            id: "fig6",
            title: "population sweep, stigmergic agents",
            run: mapping_figs::fig6,
        },
        Experiment {
            id: "fig7",
            title: "connectivity over time, 100 oldest-node agents",
            run: routing_figs::fig7,
        },
        Experiment { id: "fig8", title: "connectivity vs population", run: routing_figs::fig8 },
        Experiment { id: "fig9", title: "connectivity vs history size", run: routing_figs::fig9 },
        Experiment {
            id: "fig10",
            title: "random agents, visiting vs not",
            run: routing_figs::fig10,
        },
        Experiment {
            id: "fig11",
            title: "oldest-node agents, visiting vs not",
            run: routing_figs::fig11,
        },
        Experiment {
            id: "ext-stigroute",
            title: "stigmergic dynamic routing (future work)",
            run: extensions::ext_stigroute,
        },
        Experiment {
            id: "ext-tiebreak",
            title: "tie-breaking ablation",
            run: extensions::ext_tiebreak,
        },
        Experiment {
            id: "ext-degradation",
            title: "battery-driven link degradation",
            run: extensions::ext_degradation,
        },
        Experiment {
            id: "ext-overhead",
            title: "overhead accounting: stigmergy vs communication",
            run: comparisons::ext_overhead,
        },
        Experiment {
            id: "ext-traffic",
            title: "packet delivery over agent tables",
            run: comparisons::ext_traffic,
        },
        Experiment {
            id: "ext-aco",
            title: "ant-colony routing baseline",
            run: comparisons::ext_aco,
        },
        Experiment {
            id: "ext-dv",
            title: "distance-vector protocol baseline",
            run: comparisons::ext_dv,
        },
        Experiment {
            id: "ext-failure",
            title: "gateway-failure resilience",
            run: comparisons::ext_failure,
        },
        Experiment {
            id: "ext-livemap",
            title: "continuous mapping of a drifting topology",
            run: extensions::ext_livemap,
        },
        Experiment {
            id: "ext-zoo",
            title: "protocol zoo: five routing arms head-to-head",
            run: protocols::ext_zoo,
        },
        Experiment {
            id: "ext-zoo-pop",
            title: "protocol zoo: population sweep",
            run: protocols::ext_zoo_pop,
        },
        Experiment {
            id: "ext-zoo-cache",
            title: "protocol zoo: cache-size sweep",
            run: protocols::ext_zoo_cache,
        },
    ]
}

/// Looks an experiment up by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_figures_and_extensions() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for fig in 1..=11 {
            assert!(ids.contains(&format!("fig{fig}").as_str()), "missing fig{fig}");
        }
        for ext in [
            "ext-stigroute",
            "ext-tiebreak",
            "ext-degradation",
            "ext-overhead",
            "ext-traffic",
            "ext-aco",
            "ext-dv",
            "ext-failure",
            "ext-livemap",
            "ext-zoo",
            "ext-zoo-pop",
            "ext-zoo-cache",
        ] {
            assert!(ids.contains(&ext), "missing {ext}");
        }
        assert_eq!(ids.len(), 23);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all().len());
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("fig5").is_some());
        assert!(by_id("fig99").is_none());
    }
}
