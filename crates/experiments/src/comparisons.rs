//! Comparison experiments beyond the paper's figures: overhead
//! accounting (E15), packet-level delivery (E16), and head-to-head runs
//! against the ant-colony and distance-vector baselines (E17/E18).

use crate::report::{Claim, ExperimentReport};
use crate::{
    paper_routing_network, routing_connectivity, Ctx, ROUTING_STEPS, ROUTING_WINDOW, TOPOLOGY_SEED,
};
use agentnet_baselines::{AcoConfig, AcoSim, DvConfig, DvSim};
use agentnet_core::overhead::Overhead;
use agentnet_core::policy::RoutingPolicy;
use agentnet_core::routing::{RoutingConfig, RoutingSim, TrafficConfig, TrafficSim, TrafficStats};
use agentnet_engine::table::Table;
use agentnet_engine::{Summary, TimeSeries};

/// Replicated routing run returning connectivity plus overhead.
fn routing_with_overhead(ctx: &Ctx, config: &RoutingConfig, stream: u64) -> (Summary, Overhead) {
    let results: Vec<(f64, Overhead)> =
        ctx.replicated("routing-overhead", config, stream, |_, s| {
            let net = paper_routing_network().build(TOPOLOGY_SEED).expect("network builds");
            let mut sim =
                RoutingSim::new(net, config.clone(), s.seed()).expect("valid routing config");
            let out = sim.run(ROUTING_STEPS);
            (out.mean_connectivity(ROUTING_WINDOW).expect("window inside run"), sim.overhead())
        });
    let conn = Summary::from_samples(results.iter().map(|r| r.0)).expect("replicates ran");
    let mut total = Overhead::default();
    for (_, o) in &results {
        total += *o;
    }
    // Mean per replicate.
    let k = results.len() as u64;
    let avg = Overhead {
        migrations: total.migrations / k,
        migrated_bytes: total.migrated_bytes / k,
        meeting_messages: total.meeting_messages / k,
        footprint_writes: total.footprint_writes / k,
        table_writes: total.table_writes / k,
    };
    (conn, avg)
}

/// E15 — overhead accounting: the paper claims stigmergic and
/// non-stigmergic agents have "identical overheads" and that footprints
/// impose "negligible overhead".
pub fn ext_overhead(ctx: &Ctx) -> ExperimentReport {
    let base = RoutingConfig::new(RoutingPolicy::OldestNode, 100);
    let (plain_c, plain_o) = routing_with_overhead(ctx, &base, 1500);
    let (stig_c, stig_o) = routing_with_overhead(ctx, &base.clone().stigmergic(true), 1501);
    let (comm_c, comm_o) = routing_with_overhead(ctx, &base.clone().communication(true), 1502);

    let mut table = Table::new([
        "variant",
        "connectivity",
        "migrations/step",
        "bytes/migration",
        "meeting msgs/step",
        "footprints/step",
    ]);
    let steps = ROUTING_STEPS as f64;
    let mut push = |name: &str, c: &Summary, o: &Overhead| {
        table.push_row([
            name.to_string(),
            c.mean_ci_string(3),
            format!("{:.1}", o.migrations as f64 / steps),
            format!("{:.0}", o.bytes_per_migration()),
            format!("{:.1}", o.meeting_messages as f64 / steps),
            format!("{:.1}", o.footprint_writes as f64 / steps),
        ]);
    };
    push("oldest-node", &plain_c, &plain_o);
    push("oldest-node + stigmergy", &stig_c, &stig_o);
    push("oldest-node + visiting", &comm_c, &comm_o);

    let claims = vec![
        Claim::new(
            "stigmergic agents carry exactly the same migration weight",
            format!(
                "{:.0} vs {:.0} bytes/migration",
                stig_o.bytes_per_migration(),
                plain_o.bytes_per_migration()
            ),
            // Counters are integer-averaged across replicates, so allow
            // sub-byte rounding noise.
            (stig_o.bytes_per_migration() - plain_o.bytes_per_migration()).abs() < 0.5,
        ),
        Claim::new(
            "footprint overhead is bounded by one write per migration",
            format!("{} footprints vs {} migrations", stig_o.footprint_writes, stig_o.migrations),
            stig_o.footprint_writes <= stig_o.migrations + 100,
        ),
        Claim::new(
            "direct communication is the costlier channel (extra messages, lower connectivity)",
            format!(
                "visiting: {:.1} msgs/step at {:.3} vs stigmergy: 0 msgs at {:.3}",
                comm_o.meeting_messages as f64 / steps,
                comm_c.mean,
                stig_c.mean
            ),
            comm_o.meeting_messages > 0
                && stig_o.meeting_messages == 0
                && stig_c.mean > comm_c.mean,
        ),
    ];
    ExperimentReport {
        id: "ext-overhead".into(),
        title: "overhead accounting: stigmergy vs direct communication".into(),
        paper_claim:
            "stigmergy imposes negligible overhead; stigmergic and plain agents have identical \
             overheads"
                .into(),
        table,
        claims,
        figure: None,
    }
}

fn traffic_stats(ctx: &Ctx, config: &RoutingConfig, stream: u64) -> (Summary, TrafficStats) {
    let results: Vec<(f64, TrafficStats)> =
        ctx.replicated("routing-traffic", config, stream, |_, s| {
            let net = paper_routing_network().build(TOPOLOGY_SEED).expect("network builds");
            let sim = RoutingSim::new(net, config.clone(), s.seed()).expect("valid routing config");
            let mut traffic = TrafficSim::new(
                sim,
                TrafficConfig { packets_per_step: 5, ttl: 64 },
                s.child(1).seed(),
            );
            let stats = traffic.run(ROUTING_STEPS);
            (stats.delivery_ratio(), stats)
        });
    let ratio = Summary::from_samples(results.iter().map(|r| r.0)).expect("replicates ran");
    let mut agg = TrafficStats::default();
    for (_, s) in &results {
        agg.sent += s.sent;
        agg.delivered += s.delivered;
        agg.dropped += s.dropped;
        agg.delivered_hops += s.delivered_hops;
        agg.delivered_ideal_hops += s.delivered_ideal_hops;
        agg.stretch_samples += s.stretch_samples;
    }
    (ratio, agg)
}

/// E16 — packet-level evaluation: do the agent-maintained tables
/// actually deliver packets, and at what stretch?
pub fn ext_traffic(ctx: &Ctx) -> ExperimentReport {
    let variants: [(&str, RoutingConfig); 3] = [
        ("random", RoutingConfig::new(RoutingPolicy::Random, 100)),
        ("oldest-node", RoutingConfig::new(RoutingPolicy::OldestNode, 100)),
        (
            "oldest-node + stigmergy",
            RoutingConfig::new(RoutingPolicy::OldestNode, 100).stigmergic(true),
        ),
    ];
    let mut table =
        Table::new(["tables maintained by", "delivery ratio", "mean latency", "mean stretch"]);
    let mut measured = Vec::new();
    for (i, (name, config)) in variants.iter().enumerate() {
        let (ratio, stats) = traffic_stats(ctx, config, 1600 + i as u64);
        table.push_row([
            name.to_string(),
            ratio.mean_ci_string(3),
            stats.mean_latency().map_or("-".into(), |l| format!("{l:.1}")),
            stats.mean_stretch().map_or("-".into(), |s| format!("{s:.2}")),
        ]);
        measured.push((*name, ratio.mean, stats));
    }
    let random = &measured[0];
    let oldest = &measured[1];
    let stretch_ok =
        measured.iter().filter_map(|(_, _, s)| s.mean_stretch()).all(|s| (0.8..8.0).contains(&s));
    let claims = vec![
        Claim::new(
            "oldest-node tables deliver more packets than random ones",
            format!("{:.3} vs {:.3}", oldest.1, random.1),
            oldest.1 > random.1,
        ),
        Claim::new(
            "delivered packets take near-shortest paths (stretch sane)",
            measured
                .iter()
                .map(|(n, _, s)| {
                    format!("{n}: {}", s.mean_stretch().map_or("-".into(), |v| format!("{v:.2}")))
                })
                .collect::<Vec<_>>()
                .join("; "),
            stretch_ok,
        ),
    ];
    ExperimentReport {
        id: "ext-traffic".into(),
        title: "packet delivery over agent-maintained tables".into(),
        paper_claim:
            "an average packet multi-hops to a gateway along the tables the agents maintain".into(),
        table,
        claims,
        figure: None,
    }
}

fn aco_connectivity(ctx: &Ctx, config: &AcoConfig, stream: u64) -> (Summary, f64) {
    let results: Vec<(f64, f64)> = ctx.replicated("aco-conn", config, stream, |_, s| {
        let net = paper_routing_network().build(TOPOLOGY_SEED).expect("network builds");
        let mut sim = AcoSim::new(net, config.clone(), s.seed()).expect("valid aco config");
        let series: TimeSeries = sim.run(ROUTING_STEPS);
        (
            series.window_mean(ROUTING_WINDOW).expect("window inside run"),
            sim.ant_moves() as f64 / ROUTING_STEPS as f64,
        )
    });
    let conn = Summary::from_samples(results.iter().map(|r| r.0)).expect("replicates ran");
    let moves = results.iter().map(|r| r.1).sum::<f64>() / results.len() as f64;
    (conn, moves)
}

/// E17 — ant-colony routing (the paper's related work \[9\]) vs the
/// paper's oldest-node agents at equal population.
pub fn ext_aco(ctx: &Ctx) -> ExperimentReport {
    let (aco, aco_moves) = aco_connectivity(ctx, &AcoConfig::new(100), 1700);
    let oldest =
        routing_connectivity(ctx, &RoutingConfig::new(RoutingPolicy::OldestNode, 100), 1701);
    let mut table = Table::new(["system", "connectivity", "agent moves/step"]);
    table.push_row(["100 ACO ants", &aco.mean_ci_string(3), &format!("{aco_moves:.0}")]);
    table.push_row(["100 oldest-node agents", &oldest.mean_ci_string(3), "≤100"]);
    let claims = vec![
        Claim::new(
            "ant-colony routing converges to substantial connectivity",
            format!("{:.3}", aco.mean),
            aco.mean > 0.3,
        ),
        Claim::new(
            "the paper's oldest-node agents are competitive with the ACO comparator",
            format!("{:.3} vs {:.3}", oldest.mean, aco.mean),
            oldest.mean > 0.75 * aco.mean,
        ),
    ];
    ExperimentReport {
        id: "ext-aco".into(),
        title: "ant-colony routing baseline (AntHocNet-style)".into(),
        paper_claim:
            "ant-based algorithms sample gateway paths Monte-Carlo style; bigger colonies \
             converge faster at higher bandwidth (related work [9], [11])"
                .into(),
        table,
        claims,
        figure: None,
    }
}

/// E18 — node-run distance-vector protocol vs the agents: near-ideal
/// connectivity, at a per-step message cost the agents never pay.
pub fn ext_dv(ctx: &Ctx) -> ExperimentReport {
    let dv_results: Vec<(f64, f64)> =
        ctx.replicated("dv-conn", &DvConfig::default(), 1800, |_, s| {
            // DV is deterministic given the network, but replicate over the
            // usual stream anyway so the table shape matches the others.
            let _ = s;
            let net = paper_routing_network().build(TOPOLOGY_SEED).expect("network builds");
            let mut sim = DvSim::new(net, DvConfig::default()).expect("valid dv config");
            let series = sim.run(ROUTING_STEPS);
            (
                series.window_mean(ROUTING_WINDOW).expect("window inside run"),
                sim.receptions() as f64 / ROUTING_STEPS as f64,
            )
        });
    let dv = Summary::from_samples(dv_results.iter().map(|r| r.0)).expect("replicates ran");
    let dv_msgs = dv_results[0].1;
    let (agents, agents_o) = {
        let base = RoutingConfig::new(RoutingPolicy::OldestNode, 100);
        routing_with_overhead(ctx, &base, 1801)
    };
    let agent_moves = agents_o.migrations as f64 / ROUTING_STEPS as f64;

    let mut table = Table::new(["system", "connectivity", "messages or moves / step"]);
    table.push_row([
        "distance-vector protocol (nodes run code)",
        &dv.mean_ci_string(3),
        &format!("{dv_msgs:.0} receptions"),
    ]);
    table.push_row([
        "100 oldest-node agents (nodes run nothing)",
        &agents.mean_ci_string(3),
        &format!("{agent_moves:.0} migrations"),
    ]);
    let claims = vec![
        Claim::new(
            "the full protocol achieves at least the agents' connectivity",
            format!("{:.3} vs {:.3}", dv.mean, agents.mean),
            dv.mean >= agents.mean - 0.02,
        ),
        Claim::new(
            "agents use an order of magnitude less bandwidth than per-step flooding",
            format!("{agent_moves:.0} migrations vs {dv_msgs:.0} receptions per step"),
            agent_moves * 10.0 < dv_msgs,
        ),
    ];
    ExperimentReport {
        id: "ext-dv".into(),
        title: "distance-vector protocol baseline".into(),
        paper_claim:
            "agent routing trades some connectivity for a drastically smaller, decentralized \
             footprint compared with protocols run by every node"
                .into(),
        table,
        claims,
        figure: None,
    }
}

/// E19 — gateway-failure resilience: at step 150 half the gateways'
/// radios die; the decentralized agents re-route the network onto the
/// survivors with no reconfiguration.
pub fn ext_failure(ctx: &Ctx) -> ExperimentReport {
    use agentnet_engine::sim::{Step, TimeStepSim};
    use agentnet_radio::BatteryModel;

    let config = RoutingConfig::new(RoutingPolicy::OldestNode, 100);
    let curves: Vec<TimeSeries> = ctx.replicated("failure-curve", &config, 1900, |_, s| {
        // Mains batteries everywhere so the only disturbance is the
        // failure itself.
        let net = paper_routing_network()
            .mobile_battery(BatteryModel::Mains)
            .build(TOPOLOGY_SEED)
            .expect("network builds");
        let mut sim = RoutingSim::new(net, config.clone(), s.seed()).expect("valid routing config");
        for step in 0..2 * ROUTING_STEPS {
            if step == 150 {
                // Half the gateways lose their uplink.
                let victims: Vec<_> = sim.network().gateways().iter().copied().step_by(2).collect();
                for gw in victims {
                    sim.fail_gateway(gw);
                }
            }
            sim.step(Step::new(step));
        }
        sim.connectivity_series().clone()
    });
    let curve = TimeSeries::mean_of(&curves);
    let before = curve.window_mean(100..150).expect("window inside run");
    let settled = curve.window_mean(450..600).expect("window inside run");

    // Reference: the steady state of a network that only ever had the
    // six surviving gateways.
    let ref_samples: Vec<f64> = ctx.replicated("failure-ref", &config, 1901, |_, s| {
        let net = paper_routing_network()
            .gateways(6)
            .mobile_battery(BatteryModel::Mains)
            .build(TOPOLOGY_SEED)
            .expect("reference network builds");
        let mut sim = RoutingSim::new(net, config.clone(), s.seed()).expect("valid routing config");
        sim.run(ROUTING_STEPS).mean_connectivity(ROUTING_WINDOW).expect("window inside run")
    });
    let reference = Summary::from_samples(ref_samples).expect("replicates ran");

    let mut table = Table::new(["phase", "steps", "mean connectivity"]);
    table.push_row(["12 gateways, before failure", "100-150", &format!("{before:.3}")]);
    table.push_row(["settled after 6/12 uplinks fail", "450-600", &format!("{settled:.3}")]);
    table.push_row(["reference: 6 gateways from scratch", "150-300", &reference.mean_ci_string(3)]);

    let claims = vec![
        Claim::new(
            "losing half the gateways costs connectivity",
            format!("{before:.3} -> {settled:.3}"),
            settled < before - 0.02,
        ),
        Claim::new(
            "with no reconfiguration the agents re-converge to at least the \
             surviving capacity (the steady state of a 6-gateway network; warm \
             tables let them settle above the from-scratch reference)",
            format!("settled {settled:.3} vs 6-gateway reference {:.3}", reference.mean),
            settled >= reference.mean - 0.03,
        ),
    ];
    ExperimentReport {
        id: "ext-failure".into(),
        title: "gateway-failure resilience".into(),
        paper_claim:
            "decentralized agent routing needs no human-mediated reconfiguration when              infrastructure fails (motivation, §I)"
                .into(),
        table,
        claims,
        figure: Some(agentnet_engine::plot::chart(&curve, 60, 8)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::Mode;
    use agentnet_engine::Executor;

    #[test]
    fn overhead_experiment_runs_in_smoke_mode() {
        let exec = Executor::serial();
        let report = ext_overhead(&Ctx::new(&exec, "ext-overhead", Mode::Smoke));
        assert_eq!(report.table.len(), 3);
        assert_eq!(report.claims.len(), 3);
    }

    #[test]
    fn dv_experiment_smoke() {
        let exec = Executor::serial();
        let report = ext_dv(&Ctx::new(&exec, "ext-dv", Mode::Smoke));
        assert_eq!(report.table.len(), 2);
        assert!(report.passed(), "{}", report.to_markdown());
    }
}
