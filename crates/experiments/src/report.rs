//! Experiment reports: measured tables plus checked shape claims.

use agentnet_engine::table::Table;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One checkable statement a figure makes, with the measured verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// The paper's qualitative statement (e.g. "conscientious beats
    /// random").
    pub statement: String,
    /// What we measured, phrased for a human.
    pub observed: String,
    /// Whether the measurement supports the statement.
    pub holds: bool,
}

impl Claim {
    /// Creates a checked claim.
    pub fn new(statement: impl Into<String>, observed: impl Into<String>, holds: bool) -> Self {
        Claim { statement: statement.into(), observed: observed.into(), holds }
    }
}

/// The output of one experiment: the regenerated figure data and the
/// shape-claim verdicts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id (e.g. `"fig5"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper's figure shows, in one sentence.
    pub paper_claim: String,
    /// The regenerated rows/series.
    pub table: Table,
    /// Checked shape claims.
    pub claims: Vec<Claim>,
    /// Optional pre-rendered terminal chart of the figure's curve.
    #[serde(default)]
    pub figure: Option<String>,
}

impl ExperimentReport {
    /// `true` iff every claim holds.
    pub fn passed(&self) -> bool {
        self.claims.iter().all(|c| c.holds)
    }

    /// Renders the report as markdown (title, claim verdicts, data
    /// table).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out, "\n*Paper:* {}\n", self.paper_claim);
        for c in &self.claims {
            let mark = if c.holds { "PASS" } else { "FAIL" };
            let _ = writeln!(out, "- [{mark}] {} — measured: {}", c.statement, c.observed);
        }
        out.push('\n');
        if let Some(figure) = &self.figure {
            out.push_str("```text\n");
            out.push_str(figure);
            out.push_str("\n```\n\n");
        }
        out.push_str(&self.table.to_markdown());
        out
    }

    /// Renders the report as a JSON value.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "id": self.id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "passed": self.passed(),
            "claims": self.claims,
            "table": self.table.to_json(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut table = Table::new(["k", "v"]);
        table.push_row(["a", "1"]);
        ExperimentReport {
            id: "fig0".into(),
            title: "sample".into(),
            paper_claim: "a beats b".into(),
            table,
            claims: vec![Claim::new("a < b", "1 < 2", true), Claim::new("b < c", "2 > 3", false)],
            figure: Some("▁▂█".into()),
        }
    }

    #[test]
    fn passed_requires_all_claims() {
        let mut r = sample();
        assert!(!r.passed());
        r.claims.pop();
        assert!(r.passed());
    }

    #[test]
    fn markdown_contains_verdicts_and_table() {
        let md = sample().to_markdown();
        assert!(md.contains("## fig0"));
        assert!(md.contains("[PASS] a < b"));
        assert!(md.contains("[FAIL] b < c"));
        assert!(md.contains("| a | 1 |"));
        assert!(md.contains("▁▂█"));
    }

    #[test]
    fn json_round_trips_status() {
        let j = sample().to_json();
        assert_eq!(j["passed"], false);
        assert_eq!(j["claims"].as_array().unwrap().len(), 2);
    }
}
