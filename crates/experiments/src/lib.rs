//! Experiment harness: one experiment per figure of the paper, plus
//! extensions and ablations.
//!
//! Every experiment regenerates the rows/series its figure reports and
//! checks the figure's *shape claims* — who wins, by roughly what factor,
//! where crossovers fall — against the measured data. Absolute step
//! counts are not expected to match the paper (different simulator,
//! different RNG, stronger baselines); directions and orderings are.
//!
//! * [`mapping_figs`] — Figs. 1–6 (network mapping, §II).
//! * [`routing_figs`] — Figs. 7–11 (dynamic routing, §III).
//! * [`extensions`] — E12 stigmergic routing (the paper's future work),
//!   E13 tie-breaking ablation, E14 link-degradation ablation.
//! * [`comparisons`] — E15 overhead accounting, E16 packet traffic,
//!   E17 ant-colony and E18 distance-vector baselines.
//! * [`registry`] — every experiment by id, for the `repro` binary.
//! * [`report`] — rendering of experiment reports as markdown/JSON.
//!
//! # Example
//!
//! ```no_run
//! use agentnet_experiments::{registry, Mode};
//!
//! for exp in registry::all() {
//!     let report = (exp.run)(Mode::Quick);
//!     println!("{}", report.to_markdown());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparisons;
pub mod extensions;
pub mod mapping_figs;
pub mod registry;
pub mod report;
pub mod routing_figs;

pub use registry::Experiment;
pub use report::{Claim, ExperimentReport};

use agentnet_core::mapping::{MappingConfig, MappingSim};
use agentnet_core::routing::{RoutingConfig, RoutingSim};
use agentnet_engine::replicate::run_replicates;
use agentnet_engine::rng::SeedSequence;
use agentnet_engine::{Summary, TimeSeries};
use agentnet_graph::generators::GeometricConfig;
use agentnet_graph::DiGraph;
use agentnet_radio::NetworkBuilder;
use serde::{Deserialize, Serialize};

/// How much compute an experiment run spends.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Mode {
    /// Two replicates — seconds; used by benches and integration tests
    /// to exercise the experiment code paths, not to judge shapes.
    Smoke,
    /// A few replicates — minutes for the whole suite; shapes are checked
    /// with generous tolerances.
    Quick,
    /// The paper's 40 replicates per parameter setting.
    Full,
}

impl Mode {
    /// Replicates per parameter setting (paper: 40).
    pub fn runs(self) -> usize {
        match self {
            Mode::Smoke => 2,
            Mode::Quick => 8,
            Mode::Full => 40,
        }
    }
}

/// Master seed all experiments derive their randomness from.
pub const MASTER_SEED: u64 = 2010;

/// Seed of the fixed shared topologies ("a single connected network ...
/// for all experiments", "same configuration and movement path").
pub const TOPOLOGY_SEED: u64 = 42;

/// Step budget for mapping runs (every run in practice finishes far
/// earlier; a run hitting the budget is a bug).
pub const MAPPING_STEP_BUDGET: u64 = 2_000_000;

/// Routing run length (paper: 300 steps).
pub const ROUTING_STEPS: u64 = 300;

/// The paper's measurement window: "the average fraction of connectivity
/// for all nodes from time 150 to 300".
pub const ROUTING_WINDOW: std::ops::Range<usize> = 150..300;

/// The shared mapping topology: the paper's 300-node, ≈2164-edge
/// strongly connected wireless digraph.
pub fn paper_mapping_graph() -> DiGraph {
    GeometricConfig::paper_mapping()
        .generate(TOPOLOGY_SEED)
        .expect("paper mapping topology must generate")
        .graph
}

/// The shared routing network builder: 250 nodes, 12 gateways, half the
/// nodes mobile. Every replicate re-instantiates it with
/// [`TOPOLOGY_SEED`] so all runs share "the same configuration and
/// movement path of nodes"; only agent placement/decisions vary.
pub fn paper_routing_network() -> NetworkBuilder {
    NetworkBuilder::paper_routing()
}

/// Replicated mapping finishing times for a config on a fixed graph.
///
/// # Panics
///
/// Panics if any replicate fails to finish within
/// [`MAPPING_STEP_BUDGET`] — only possible on a non-strongly-connected
/// graph, which the generator excludes.
pub fn mapping_finishing_times(
    graph: &DiGraph,
    config: &MappingConfig,
    mode: Mode,
    stream: u64,
) -> Summary {
    let seeds = SeedSequence::new(MASTER_SEED).child(stream);
    let samples = run_replicates(mode.runs(), seeds, |_, s| {
        let mut sim = MappingSim::new(graph.clone(), config.clone(), s.seed())
            .expect("mapping config must be valid");
        let out = sim.run(MAPPING_STEP_BUDGET);
        assert!(out.finished, "mapping run exhausted its step budget");
        out.finishing_time.as_f64()
    });
    Summary::from_samples(samples).expect("at least one replicate")
}

/// Replicated mean knowledge-over-time curve for a mapping config.
pub fn mapping_knowledge_curve(
    graph: &DiGraph,
    config: &MappingConfig,
    mode: Mode,
    stream: u64,
) -> TimeSeries {
    let seeds = SeedSequence::new(MASTER_SEED).child(stream);
    let curves = run_replicates(mode.runs(), seeds, |_, s| {
        let mut sim = MappingSim::new(graph.clone(), config.clone(), s.seed())
            .expect("mapping config must be valid");
        let out = sim.run(MAPPING_STEP_BUDGET);
        assert!(out.finished, "mapping run exhausted its step budget");
        out.knowledge
    });
    TimeSeries::mean_of(&curves)
}

/// Replicated routing connectivity (mean over the paper's 150–300
/// window).
pub fn routing_connectivity(config: &RoutingConfig, mode: Mode, stream: u64) -> Summary {
    let seeds = SeedSequence::new(MASTER_SEED).child(stream);
    let samples = run_replicates(mode.runs(), seeds, |_, s| {
        let net = paper_routing_network()
            .build(TOPOLOGY_SEED)
            .expect("paper routing network must build");
        let mut sim =
            RoutingSim::new(net, config.clone(), s.seed()).expect("routing config must be valid");
        let out = sim.run(ROUTING_STEPS);
        out.mean_connectivity(ROUTING_WINDOW).expect("window inside run")
    });
    Summary::from_samples(samples).expect("at least one replicate")
}

/// Replicated per-run temporal fluctuation: the within-window standard
/// deviation of each run's connectivity series, summarized across
/// replicates. This is the "stability" the paper reads off its plots —
/// it must be measured per run, not on the replicate-averaged curve
/// (averaging smooths fluctuations away).
pub fn routing_temporal_wobble(config: &RoutingConfig, mode: Mode, stream: u64) -> Summary {
    let seeds = SeedSequence::new(MASTER_SEED).child(stream);
    let samples = run_replicates(mode.runs(), seeds, |_, s| {
        let net = paper_routing_network()
            .build(TOPOLOGY_SEED)
            .expect("paper routing network must build");
        let mut sim =
            RoutingSim::new(net, config.clone(), s.seed()).expect("routing config must be valid");
        let out = sim.run(ROUTING_STEPS);
        out.connectivity.window_std(ROUTING_WINDOW).expect("window inside run")
    });
    Summary::from_samples(samples).expect("at least one replicate")
}

/// Replicated mean connectivity-over-time curve for a routing config.
pub fn routing_connectivity_curve(config: &RoutingConfig, mode: Mode, stream: u64) -> TimeSeries {
    let seeds = SeedSequence::new(MASTER_SEED).child(stream);
    let curves = run_replicates(mode.runs(), seeds, |_, s| {
        let net = paper_routing_network()
            .build(TOPOLOGY_SEED)
            .expect("paper routing network must build");
        let mut sim =
            RoutingSim::new(net, config.clone(), s.seed()).expect("routing config must be valid");
        sim.run(ROUTING_STEPS).connectivity
    });
    TimeSeries::mean_of(&curves)
}

/// Decimates a time series into at most `points` evenly spaced samples —
/// the series a figure plots, at table-friendly resolution.
pub fn sample_curve(series: &TimeSeries, points: usize) -> Vec<(usize, f64)> {
    let len = series.len();
    if len == 0 || points == 0 {
        return Vec::new();
    }
    let stride = (len / points).max(1);
    let mut out: Vec<(usize, f64)> =
        (0..len).step_by(stride).map(|i| (i, series.values()[i])).collect();
    if out.last().map(|&(i, _)| i) != Some(len - 1) {
        out.push((len - 1, series.values()[len - 1]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_core::policy::MappingPolicy;

    #[test]
    fn paper_mapping_graph_matches_paper_constants() {
        let g = paper_mapping_graph();
        assert_eq!(g.node_count(), 300);
        let err = (g.edge_count() as i64 - 2164).unsigned_abs() as usize;
        assert!(err <= 2164 / 50 + 1, "edge count {} too far from 2164", g.edge_count());
    }

    #[test]
    fn paper_routing_network_matches_paper_constants() {
        let net = paper_routing_network().build(TOPOLOGY_SEED).unwrap();
        assert_eq!(net.node_count(), 250);
        assert_eq!(net.gateways().len(), 12);
    }

    #[test]
    fn modes_have_expected_replicates() {
        assert_eq!(Mode::Smoke.runs(), 2);
        assert_eq!(Mode::Quick.runs(), 8);
        assert_eq!(Mode::Full.runs(), 40);
    }

    #[test]
    fn sample_curve_keeps_endpoints() {
        let s: TimeSeries = (0..100).map(|i| i as f64).collect();
        let pts = sample_curve(&s, 10);
        assert_eq!(pts.first(), Some(&(0, 0.0)));
        assert_eq!(pts.last(), Some(&(99, 99.0)));
        assert!(pts.len() <= 12);
        assert!(sample_curve(&TimeSeries::new(), 5).is_empty());
    }

    #[test]
    fn mapping_helper_is_deterministic() {
        let g = agentnet_graph::generators::grid(5, 5);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 3);
        let a = mapping_finishing_times(&g, &cfg, Mode::Quick, 1);
        let b = mapping_finishing_times(&g, &cfg, Mode::Quick, 1);
        assert_eq!(a, b);
    }
}
