//! Experiment harness: one experiment per figure of the paper, plus
//! extensions and ablations.
//!
//! Every experiment regenerates the rows/series its figure reports and
//! checks the figure's *shape claims* — who wins, by roughly what factor,
//! where crossovers fall — against the measured data. Absolute step
//! counts are not expected to match the paper (different simulator,
//! different RNG, stronger baselines); directions and orderings are.
//!
//! * [`benchkit`] — the `repro bench` kernel suite behind the
//!   `BENCH_<date>.json` perf-regression gate.
//! * [`mapping_figs`] — Figs. 1–6 (network mapping, §II).
//! * [`routing_figs`] — Figs. 7–11 (dynamic routing, §III).
//! * [`extensions`] — E12 stigmergic routing (the paper's future work),
//!   E13 tie-breaking ablation, E14 link-degradation ablation.
//! * [`comparisons`] — E15 overhead accounting, E16 packet traffic,
//!   E17 ant-colony and E18 distance-vector baselines.
//! * [`protocols`] — E19–E21, the protocol zoo: every
//!   [`agentnet_core::routing::RoutingProtocol`] arm (legacy agents,
//!   stigmergic trails, AntNet ants, epidemic and spray-and-wait
//!   flooding) under identical mobility, swept over population and
//!   cache size.
//! * [`obs`] — run-level observability: the versioned run manifest
//!   (`--metrics-out`), Prometheus exposition (`--metrics-prom`), and
//!   the cross-experiment trace sink (`--trace-out`).
//! * [`registry`] — every experiment by id, for the `repro` binary.
//! * [`report`] — rendering of experiment reports as markdown/JSON.
//!
//! # Example
//!
//! ```no_run
//! use agentnet_experiments::{registry, Mode};
//!
//! for exp in registry::all() {
//!     let report = exp.run_serial(Mode::Quick);
//!     println!("{}", report.to_markdown());
//! }
//! ```
//!
//! Experiments take a [`Ctx`], which carries the shared cell
//! [`Executor`] — attach a cache and a jobs count to it (as the `repro`
//! binary does) and every replicate cell is scheduled across the worker
//! pool and persisted for later resumption:
//!
//! ```no_run
//! use agentnet_engine::{Executor, ResultCache};
//! use agentnet_experiments::{registry, Ctx, Mode};
//!
//! let exec = Executor::new(4).with_cache(ResultCache::new("results_cache"), true);
//! let exp = registry::by_id("fig5").unwrap();
//! let report = (exp.run)(&Ctx::new(&exec, exp.id, Mode::Full));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchkit;
pub mod comparisons;
pub mod extensions;
pub mod mapping_figs;
pub mod obs;
pub mod protocols;
pub mod registry;
pub mod report;
pub mod routing_figs;

pub use obs::{RunManifest, TraceSink, MANIFEST_SCHEMA};
pub use registry::Experiment;
pub use report::{Claim, ExperimentReport};

use agentnet_core::mapping::{MappingConfig, MappingOutcome, MappingSim};
use agentnet_core::routing::{RoutingConfig, RoutingOutcome, RoutingProtocol, RoutingSim};
use agentnet_core::validate::{mapping_invariants, routing_invariants};
use agentnet_engine::cache::hash_config;
use agentnet_engine::obs::{Metrics, SpanTimer};
use agentnet_engine::rng::SeedSequence;
use agentnet_engine::{Executor, Summary, TimeSeries};
use agentnet_graph::generators::GeometricConfig;
use agentnet_graph::DiGraph;
use agentnet_radio::NetworkBuilder;
use serde::{Deserialize, Serialize};

/// How much compute an experiment run spends.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Mode {
    /// Two replicates — seconds; used by benches and integration tests
    /// to exercise the experiment code paths, not to judge shapes.
    Smoke,
    /// A few replicates — minutes for the whole suite; shapes are checked
    /// with generous tolerances.
    Quick,
    /// The paper's 40 replicates per parameter setting.
    Full,
}

impl Mode {
    /// Replicates per parameter setting (paper: 40).
    pub fn runs(self) -> usize {
        match self {
            Mode::Smoke => 2,
            Mode::Quick => 8,
            Mode::Full => 40,
        }
    }
}

/// Everything an experiment needs to run: the shared cell executor
/// (which carries the jobs limit, result cache, and event sink), the
/// experiment's id (its cache namespace), and the compute budget.
///
/// One executor is shared by reference across all concurrently running
/// experiments, so their replicate cells compete for the same worker
/// permits and land in the same cache.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    exec: &'a Executor,
    id: &'static str,
    mode: Mode,
    check: bool,
    metrics: Option<&'a Metrics>,
    traces: Option<&'a TraceSink>,
}

impl<'a> Ctx<'a> {
    /// Binds an executor to one experiment at one compute budget.
    pub fn new(exec: &'a Executor, id: &'static str, mode: Mode) -> Self {
        Ctx { exec, id, mode, check: false, metrics: None, traces: None }
    }

    /// Attaches the run's metrics registry: replicate helpers fold
    /// per-sim overhead counters (migrations, meetings, footprints,
    /// table writes, radio churn) and span timings into it. Detached —
    /// or attached to a disabled handle — nothing is recorded and
    /// nothing is paid; report bytes are identical either way.
    pub fn with_metrics(mut self, metrics: &'a Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches the run's trace sink: replicate helpers enable event
    /// tracing on their sim configs (ring capacity
    /// [`TraceSink::capacity`]) and deposit each replicate's
    /// [`agentnet_core::trace::TraceLog`] for the `--trace-out` export.
    /// Because the config then retains events, traced replicates have a
    /// different cache identity from untraced ones — they recompute
    /// rather than alias untraced cache entries, and produce the same
    /// report bytes (tracing never touches simulation randomness).
    pub fn with_trace_sink(mut self, sink: &'a TraceSink) -> Self {
        self.traces = Some(sink);
        self
    }

    /// Enables per-step invariant checking inside every replicate (the
    /// `repro --check` flag). Off by default: an unchecked run takes the
    /// plain `run` path and pays nothing for the machinery.
    pub fn checked(mut self, check: bool) -> Self {
        self.check = check;
        self
    }

    /// Whether replicates run under per-step invariant checking.
    pub fn check(&self) -> bool {
        self.check
    }

    /// The experiment id this context runs under.
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// The compute budget.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Replicates per parameter setting under this budget.
    pub fn runs(&self) -> usize {
        self.mode.runs()
    }

    /// Runs one replicate group — [`runs`](Ctx::runs) cells of `job` on
    /// the seed stream `MASTER_SEED → stream` — through the executor,
    /// returning results in replicate order.
    ///
    /// `kind` names the metric the cells compute and `params` is
    /// everything that determines a cell's value besides its seed;
    /// together (with the stream) they form the group's cache identity,
    /// so any config change invalidates exactly the affected cells.
    /// Because a cell's seed depends only on `stream` and its index,
    /// cache entries are shared across modes: a `Full` run reuses the
    /// cells a `Quick` run already computed.
    pub fn replicated<T, P, F>(&self, kind: &str, params: &P, stream: u64, job: F) -> Vec<T>
    where
        T: serde::Serialize + serde::Deserialize + Send,
        P: serde::Serialize,
        F: Fn(usize, SeedSequence) -> T + Sync,
    {
        let seeds = SeedSequence::new(MASTER_SEED).child(stream);
        let hash = hash_config(kind, params) ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.exec.run_cells(self.id, hash, self.runs(), seeds, job)
    }

    /// Starts a span timer on the attached registry, if any. The guard
    /// records elapsed microseconds on drop; `None` costs nothing.
    fn span(&self, name: &str) -> Option<SpanTimer> {
        self.metrics.map(|m| m.span(name))
    }

    /// The event retention replicate configs should run with: the trace
    /// sink's ring capacity, or 0 (tracing off) without a sink.
    fn trace_capacity(&self) -> usize {
        self.traces.map_or(0, TraceSink::capacity)
    }

    /// Folds a finished mapping replicate into the run's observability
    /// side channels: overhead counters into the metrics registry, the
    /// replicate's trace into the sink. Cache-hit cells never execute,
    /// so these counters cover *computed* cells only (cache traffic is
    /// counted separately from executor events).
    pub fn observe_mapping(&self, sim: &MappingSim, kind: &str, stream: u64, replicate: usize) {
        if let Some(m) = self.metrics {
            let o = sim.overhead();
            m.counter_add("mapping_replicates_total", 1);
            m.counter_add("mapping_migrations_total", o.migrations);
            m.counter_add("mapping_migrated_bytes_total", o.migrated_bytes);
            m.counter_add("mapping_meeting_messages_total", o.meeting_messages);
            m.counter_add("mapping_footprint_writes_total", o.footprint_writes);
            m.counter_add("trace_events_total", sim.trace().total_recorded());
        }
        if let Some(t) = self.traces {
            t.record(self.id, kind, stream, replicate, sim.trace());
        }
    }

    /// Routing counterpart of [`Ctx::observe_mapping`]; additionally
    /// folds the substrate's [`agentnet_radio::NetStats`] (link churn,
    /// topology bumps, battery decay).
    pub fn observe_routing(&self, sim: &RoutingSim, kind: &str, stream: u64, replicate: usize) {
        if let Some(m) = self.metrics {
            let o = sim.overhead();
            m.counter_add("routing_replicates_total", 1);
            m.counter_add("routing_migrations_total", o.migrations);
            m.counter_add("routing_migrated_bytes_total", o.migrated_bytes);
            m.counter_add("routing_meeting_messages_total", o.meeting_messages);
            m.counter_add("routing_footprint_writes_total", o.footprint_writes);
            m.counter_add("routing_table_writes_total", o.table_writes);
            m.counter_add("trace_events_total", sim.trace().total_recorded());
            let s = sim.network().stats();
            m.counter_add("radio_steps_total", s.advances);
            m.counter_add("radio_link_rebuilds_total", s.link_rebuilds);
            m.counter_add("radio_topology_bumps_total", s.topology_bumps);
            m.counter_add("radio_links_formed_total", s.links_formed);
            m.counter_add("radio_links_broken_total", s.links_broken);
            m.counter_add("radio_battery_decay_steps_total", s.battery_decay_steps);
            m.counter_add("radio_grid_cell_clamps_total", s.grid_cell_clamps);
            m.counter_add("radio_grid_incremental_total", s.grid_incremental_updates);
            // Gauge, not counter: the shard count is configuration. A
            // nonzero clamp counter or an unexpected shard gauge in a
            // repro artifact flags a run whose spatial index degraded
            // or whose parallelism differed from the manifest.
            m.gauge_set("radio_advance_shards", sim.network().advance_shards() as f64);
        }
        if let Some(t) = self.traces {
            t.record(self.id, kind, stream, replicate, sim.trace());
        }
    }

    /// Protocol-zoo counterpart of [`Ctx::observe_routing`], over any
    /// [`RoutingProtocol`] arm. Zoo arms carry no
    /// [`agentnet_core::trace::TraceLog`], so there is no trace-sink
    /// leg; overhead counters land under a `zoo_` prefix (labelled
    /// metrics would need a richer registry) together with the shared
    /// substrate's [`agentnet_radio::NetStats`].
    pub fn observe_protocol(
        &self,
        sim: &dyn RoutingProtocol,
        _kind: &str,
        _stream: u64,
        _replicate: usize,
    ) {
        if let Some(m) = self.metrics {
            let o = sim.overhead();
            m.counter_add("zoo_replicates_total", 1);
            m.counter_add("zoo_migrations_total", o.migrations);
            m.counter_add("zoo_migrated_bytes_total", o.migrated_bytes);
            m.counter_add("zoo_meeting_messages_total", o.meeting_messages);
            m.counter_add("zoo_footprint_writes_total", o.footprint_writes);
            m.counter_add("zoo_table_writes_total", o.table_writes);
            let s = sim.network().stats();
            m.counter_add("radio_steps_total", s.advances);
            m.counter_add("radio_link_rebuilds_total", s.link_rebuilds);
            m.counter_add("radio_topology_bumps_total", s.topology_bumps);
            m.counter_add("radio_links_formed_total", s.links_formed);
            m.counter_add("radio_links_broken_total", s.links_broken);
            m.counter_add("radio_battery_decay_steps_total", s.battery_decay_steps);
            m.counter_add("radio_grid_cell_clamps_total", s.grid_cell_clamps);
            m.counter_add("radio_grid_incremental_total", s.grid_incremental_updates);
            m.gauge_set("radio_advance_shards", sim.network().advance_shards() as f64);
        }
    }
}

/// Order-sensitive fingerprint of a graph's structure, for keying
/// cached results computed on ad-hoc (non-paper) topologies.
pub fn graph_fingerprint(graph: &DiGraph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ graph.node_count() as u64;
    for e in graph.edges() {
        h ^= ((e.from.index() as u64) << 32) | e.to.index() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Master seed all experiments derive their randomness from.
pub const MASTER_SEED: u64 = 2010;

/// Seed of the fixed shared topologies ("a single connected network ...
/// for all experiments", "same configuration and movement path").
pub const TOPOLOGY_SEED: u64 = 42;

/// Step budget for mapping runs (every run in practice finishes far
/// earlier; a run hitting the budget is a bug).
pub const MAPPING_STEP_BUDGET: u64 = 2_000_000;

/// Routing run length (paper: 300 steps).
pub const ROUTING_STEPS: u64 = 300;

/// The paper's measurement window: "the average fraction of connectivity
/// for all nodes from time 150 to 300".
pub const ROUTING_WINDOW: std::ops::Range<usize> = 150..300;

/// The shared mapping topology: the paper's 300-node, ≈2164-edge
/// strongly connected wireless digraph.
pub fn paper_mapping_graph() -> DiGraph {
    GeometricConfig::paper_mapping()
        .generate(TOPOLOGY_SEED)
        .expect("paper mapping topology must generate")
        .graph
}

/// The shared routing network builder: 250 nodes, 12 gateways, half the
/// nodes mobile. Every replicate re-instantiates it with
/// [`TOPOLOGY_SEED`] so all runs share "the same configuration and
/// movement path of nodes"; only agent placement/decisions vary.
pub fn paper_routing_network() -> NetworkBuilder {
    NetworkBuilder::paper_routing()
}

/// Runs one mapping replicate to its budget — under the standard
/// invariant set when `check` is on. An invariant violation inside an
/// experiment replicate is always a simulator bug, so it panics (and
/// the failing invariant, step and message surface in the panic).
fn run_mapping_replicate(sim: &mut MappingSim, ctx: &Ctx) -> MappingOutcome {
    if ctx.check() {
        // The checked histogram covers simulation *plus* per-step
        // invariant evaluation; its gap to the unchecked histogram is
        // the invariant-check cost.
        let _span = ctx.span("mapping_checked_replicate_micros");
        let mut checks = mapping_invariants();
        sim.run_checked(MAPPING_STEP_BUDGET, &mut checks)
            .unwrap_or_else(|v| panic!("mapping replicate failed validation: {v}"))
    } else {
        let _span = ctx.span("mapping_replicate_micros");
        sim.run(MAPPING_STEP_BUDGET)
    }
}

/// Runs one routing replicate for the paper's step count — under the
/// standard invariant set when `check` is on (see
/// [`run_mapping_replicate`]).
fn run_routing_replicate(sim: &mut RoutingSim, ctx: &Ctx) -> RoutingOutcome {
    if ctx.check() {
        let _span = ctx.span("routing_checked_replicate_micros");
        let mut checks = routing_invariants();
        sim.run_checked(ROUTING_STEPS, &mut checks)
            .unwrap_or_else(|v| panic!("routing replicate failed validation: {v}"))
    } else {
        let _span = ctx.span("routing_replicate_micros");
        sim.run(ROUTING_STEPS)
    }
}

/// Replicated mapping finishing times for a config on a fixed graph.
///
/// # Panics
///
/// Panics if any replicate fails to finish within
/// [`MAPPING_STEP_BUDGET`] — only possible on a non-strongly-connected
/// graph, which the generator excludes.
pub fn mapping_finishing_times(
    ctx: &Ctx,
    graph: &DiGraph,
    config: &MappingConfig,
    stream: u64,
) -> Summary {
    let mut config = config.clone();
    config.trace_capacity = config.trace_capacity.max(ctx.trace_capacity());
    let params = (graph_fingerprint(graph), config.clone());
    let samples: Vec<f64> = ctx.replicated("mapping-finish", &params, stream, |i, s| {
        let mut sim = MappingSim::new(graph.clone(), config.clone(), s.seed())
            .expect("mapping config must be valid");
        let out = run_mapping_replicate(&mut sim, ctx);
        ctx.observe_mapping(&sim, "mapping-finish", stream, i);
        assert!(out.finished, "mapping run exhausted its step budget");
        out.finishing_time.as_f64()
    });
    Summary::from_samples(samples).expect("at least one replicate")
}

/// Replicated mean knowledge-over-time curve for a mapping config.
pub fn mapping_knowledge_curve(
    ctx: &Ctx,
    graph: &DiGraph,
    config: &MappingConfig,
    stream: u64,
) -> TimeSeries {
    let mut config = config.clone();
    config.trace_capacity = config.trace_capacity.max(ctx.trace_capacity());
    let params = (graph_fingerprint(graph), config.clone());
    let curves: Vec<TimeSeries> = ctx.replicated("mapping-curve", &params, stream, |i, s| {
        let mut sim = MappingSim::new(graph.clone(), config.clone(), s.seed())
            .expect("mapping config must be valid");
        let out = run_mapping_replicate(&mut sim, ctx);
        ctx.observe_mapping(&sim, "mapping-curve", stream, i);
        assert!(out.finished, "mapping run exhausted its step budget");
        out.knowledge
    });
    TimeSeries::mean_of(&curves)
}

/// Replicated routing connectivity (mean over the paper's 150–300
/// window).
pub fn routing_connectivity(ctx: &Ctx, config: &RoutingConfig, stream: u64) -> Summary {
    let mut config = config.clone();
    config.trace_capacity = config.trace_capacity.max(ctx.trace_capacity());
    let samples: Vec<f64> = ctx.replicated("routing-conn", &config, stream, |i, s| {
        let net =
            paper_routing_network().build(TOPOLOGY_SEED).expect("paper routing network must build");
        let mut sim =
            RoutingSim::new(net, config.clone(), s.seed()).expect("routing config must be valid");
        let out = run_routing_replicate(&mut sim, ctx);
        ctx.observe_routing(&sim, "routing-conn", stream, i);
        out.mean_connectivity(ROUTING_WINDOW).expect("window inside run")
    });
    Summary::from_samples(samples).expect("at least one replicate")
}

/// Replicated per-run temporal fluctuation: the within-window standard
/// deviation of each run's connectivity series, summarized across
/// replicates. This is the "stability" the paper reads off its plots —
/// it must be measured per run, not on the replicate-averaged curve
/// (averaging smooths fluctuations away).
pub fn routing_temporal_wobble(ctx: &Ctx, config: &RoutingConfig, stream: u64) -> Summary {
    let mut config = config.clone();
    config.trace_capacity = config.trace_capacity.max(ctx.trace_capacity());
    let samples: Vec<f64> = ctx.replicated("routing-wobble", &config, stream, |i, s| {
        let net =
            paper_routing_network().build(TOPOLOGY_SEED).expect("paper routing network must build");
        let mut sim =
            RoutingSim::new(net, config.clone(), s.seed()).expect("routing config must be valid");
        let out = run_routing_replicate(&mut sim, ctx);
        ctx.observe_routing(&sim, "routing-wobble", stream, i);
        out.connectivity.window_std(ROUTING_WINDOW).expect("window inside run")
    });
    Summary::from_samples(samples).expect("at least one replicate")
}

/// Replicated mean connectivity-over-time curve for a routing config.
pub fn routing_connectivity_curve(ctx: &Ctx, config: &RoutingConfig, stream: u64) -> TimeSeries {
    let mut config = config.clone();
    config.trace_capacity = config.trace_capacity.max(ctx.trace_capacity());
    let curves: Vec<TimeSeries> = ctx.replicated("routing-curve", &config, stream, |i, s| {
        let net =
            paper_routing_network().build(TOPOLOGY_SEED).expect("paper routing network must build");
        let mut sim =
            RoutingSim::new(net, config.clone(), s.seed()).expect("routing config must be valid");
        let out = run_routing_replicate(&mut sim, ctx);
        ctx.observe_routing(&sim, "routing-curve", stream, i);
        out.connectivity
    });
    TimeSeries::mean_of(&curves)
}

/// Decimates a time series into at most `points` evenly spaced samples —
/// the series a figure plots, at table-friendly resolution.
pub fn sample_curve(series: &TimeSeries, points: usize) -> Vec<(usize, f64)> {
    let len = series.len();
    if len == 0 || points == 0 {
        return Vec::new();
    }
    let stride = (len / points).max(1);
    let mut out: Vec<(usize, f64)> =
        (0..len).step_by(stride).map(|i| (i, series.values()[i])).collect();
    if out.last().map(|&(i, _)| i) != Some(len - 1) {
        out.push((len - 1, series.values()[len - 1]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_core::policy::MappingPolicy;

    #[test]
    fn paper_mapping_graph_matches_paper_constants() {
        let g = paper_mapping_graph();
        assert_eq!(g.node_count(), 300);
        let err = (g.edge_count() as i64 - 2164).unsigned_abs() as usize;
        assert!(err <= 2164 / 50 + 1, "edge count {} too far from 2164", g.edge_count());
    }

    #[test]
    fn paper_routing_network_matches_paper_constants() {
        let net = paper_routing_network().build(TOPOLOGY_SEED).unwrap();
        assert_eq!(net.node_count(), 250);
        assert_eq!(net.gateways().len(), 12);
    }

    #[test]
    fn paper_network_is_shard_count_invariant_over_the_fig7_horizon() {
        // The figure reports are derived from this network's links and
        // stats, so identity here is identity of every routing report.
        let mut sequential = paper_routing_network().build(TOPOLOGY_SEED).unwrap();
        let mut sharded = paper_routing_network().advance_shards(8).build(TOPOLOGY_SEED).unwrap();
        for _ in 0..300 {
            sequential.advance();
            sharded.advance();
            assert_eq!(sharded.links(), sequential.links());
            assert_eq!(sharded.topology_version(), sequential.topology_version());
            assert_eq!(sharded.stats(), sequential.stats());
        }
        assert_eq!(sharded.nodes(), sequential.nodes());
    }

    #[test]
    fn modes_have_expected_replicates() {
        assert_eq!(Mode::Smoke.runs(), 2);
        assert_eq!(Mode::Quick.runs(), 8);
        assert_eq!(Mode::Full.runs(), 40);
    }

    #[test]
    fn sample_curve_keeps_endpoints() {
        let s: TimeSeries = (0..100).map(|i| i as f64).collect();
        let pts = sample_curve(&s, 10);
        assert_eq!(pts.first(), Some(&(0, 0.0)));
        assert_eq!(pts.last(), Some(&(99, 99.0)));
        assert!(pts.len() <= 12);
        assert!(sample_curve(&TimeSeries::new(), 5).is_empty());
    }

    #[test]
    fn mapping_helper_is_deterministic() {
        let g = agentnet_graph::generators::grid(5, 5);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 3);
        let serial = Executor::serial();
        let parallel = Executor::new(4);
        let a = mapping_finishing_times(&Ctx::new(&serial, "t", Mode::Quick), &g, &cfg, 1);
        let b = mapping_finishing_times(&Ctx::new(&parallel, "t", Mode::Quick), &g, &cfg, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn checked_replicates_match_unchecked() {
        // Invariant checking is a pure observer: same samples, and no
        // violations on a healthy config.
        let g = agentnet_graph::generators::grid(5, 5);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 3);
        let exec = Executor::serial();
        let plain = mapping_finishing_times(&Ctx::new(&exec, "t", Mode::Smoke), &g, &cfg, 2);
        let checked =
            mapping_finishing_times(&Ctx::new(&exec, "t", Mode::Smoke).checked(true), &g, &cfg, 2);
        assert_eq!(plain, checked);
        assert!(Ctx::new(&exec, "t", Mode::Smoke).checked(true).check());
        assert!(!Ctx::new(&exec, "t", Mode::Smoke).check());
    }

    #[test]
    fn observability_is_a_pure_side_channel() {
        // Metrics and tracing attached must not change a single sample,
        // while the registry and sink fill with replicate activity.
        let g = agentnet_graph::generators::grid(5, 5);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 3);
        let exec = Executor::serial();
        let plain = mapping_finishing_times(&Ctx::new(&exec, "t", Mode::Smoke), &g, &cfg, 5);

        let metrics = Metrics::enabled();
        let sink = TraceSink::new(64);
        let ctx = Ctx::new(&exec, "t", Mode::Smoke).with_metrics(&metrics).with_trace_sink(&sink);
        let observed = mapping_finishing_times(&ctx, &g, &cfg, 5);
        assert_eq!(plain, observed);

        let snap = metrics.snapshot();
        assert_eq!(snap.counters["mapping_replicates_total"], 2);
        assert!(snap.counters["mapping_migrations_total"] > 0, "agents must have migrated");
        assert_eq!(snap.histograms["mapping_replicate_micros"].count(), 2);
        let export = sink.export();
        assert_eq!(export.cells, 2);
        assert!(export.events > 0, "migrations must have been traced");
        assert_eq!(export.dropped, 0);
    }

    #[test]
    fn graph_fingerprint_tracks_structure() {
        let a = graph_fingerprint(&agentnet_graph::generators::grid(4, 4));
        let b = graph_fingerprint(&agentnet_graph::generators::grid(4, 4));
        let c = graph_fingerprint(&agentnet_graph::generators::grid(4, 5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
