//! Extension and ablation experiments (E12–E14 in DESIGN.md).

use crate::report::{Claim, ExperimentReport};
use crate::{routing_connectivity, Ctx, TOPOLOGY_SEED};
use agentnet_core::policy::{RoutingPolicy, TieBreak};
use agentnet_core::routing::RoutingConfig;
use agentnet_engine::table::Table;
use agentnet_radio::{BatteryModel, BatteryState, NetworkBuilder, WirelessNetwork};

/// E12 — the paper's stated future work: "employing indirect
/// communication, stigmergy, in dynamic routing ... we strongly believe
/// stigmergy can improve the agents performance effectively."
///
/// Footprints repel followers, so they break exactly the chasing that
/// direct communication induces in oldest-node agents (Fig. 11).
pub fn ext_stigroute(ctx: &Ctx) -> ExperimentReport {
    let base = RoutingConfig::new(RoutingPolicy::OldestNode, 100);
    let plain = routing_connectivity(ctx, &base, 1200);
    let stig = routing_connectivity(ctx, &base.clone().stigmergic(true), 1201);
    let comm = routing_connectivity(ctx, &base.clone().communication(true), 1202);
    let comm_stig =
        routing_connectivity(ctx, &base.clone().communication(true).stigmergic(true), 1203);
    let mut table = Table::new(["variant", "connectivity"]);
    table.push_row(["oldest-node", &plain.mean_ci_string(3)]);
    table.push_row(["oldest-node + stigmergy", &stig.mean_ci_string(3)]);
    table.push_row(["oldest-node + visiting", &comm.mean_ci_string(3)]);
    table.push_row(["oldest-node + visiting + stigmergy", &comm_stig.mean_ci_string(3)]);
    let claims = vec![
        Claim::new(
            "stigmergy recovers the connectivity lost to visiting",
            format!(
                "visiting {:.3} -> visiting+stigmergy {:.3} (plain {:.3})",
                comm.mean, comm_stig.mean, plain.mean
            ),
            comm_stig.mean > comm.mean && comm_stig.mean >= plain.mean * 0.95,
        ),
        Claim::new(
            "stigmergy does not hurt the non-visiting baseline",
            format!("{:.3} vs {:.3}", stig.mean, plain.mean),
            stig.mean >= plain.mean * 0.95,
        ),
    ];
    ExperimentReport {
        id: "ext-stigroute".into(),
        title: "stigmergic dynamic routing (paper future work)".into(),
        paper_claim: "stigmergy should effectively improve routing agents".into(),
        table,
        claims,
        figure: None,
    }
}

/// E13 — tie-breaking ablation. The paper suggests randomness as the fix
/// for meeting-induced herding ("use randomness in wandering for the
/// oldest-node agents like what N. Minar did for super-conscientious
/// agents"). We compare three rules:
///
/// * `hashed` (default) — deterministic given the agent's knowledge:
///   reproduces the paper's chasing after meetings;
/// * `random` — the paper's fix: the chasing penalty disappears;
/// * `lowest-id` — globally-biased determinism: herds catastrophically
///   even *without* meetings.
pub fn ext_tiebreak(ctx: &Ctx) -> ExperimentReport {
    let variants = [
        ("hashed", TieBreak::Hashed),
        ("random", TieBreak::Random),
        ("lowest-id", TieBreak::LowestId),
    ];
    let mut table = Table::new(["tie-break", "no visiting", "visiting", "penalty"]);
    let mut results = Vec::new();
    for (i, (name, tie)) in variants.iter().enumerate() {
        let base = RoutingConfig::new(RoutingPolicy::OldestNode, 100).tie_break(*tie);
        let plain = routing_connectivity(ctx, &base, 1300 + 2 * i as u64);
        let comm =
            routing_connectivity(ctx, &base.clone().communication(true), 1301 + 2 * i as u64);
        table.push_row([
            name.to_string(),
            plain.mean_ci_string(3),
            comm.mean_ci_string(3),
            format!("{:+.3}", comm.mean - plain.mean),
        ]);
        results.push((*name, plain.mean, comm.mean));
    }
    let hashed = results[0];
    let random = results[1];
    let lowest = results[2];
    let claims = vec![
        Claim::new(
            "randomized tie-breaking removes most of the visiting penalty",
            format!(
                "penalty {:.3} under hashed vs {:.3} under random",
                hashed.1 - hashed.2,
                random.1 - random.2
            ),
            (random.1 - random.2) < 0.5 * (hashed.1 - hashed.2),
        ),
        Claim::new(
            "globally-biased determinism (lowest-id) collapses the baseline",
            format!("{:.3} vs {:.3} under hashed", lowest.1, hashed.1),
            lowest.1 < 0.6 * hashed.1,
        ),
    ];
    ExperimentReport {
        id: "ext-tiebreak".into(),
        title: "tie-breaking ablation for oldest-node routing".into(),
        paper_claim: "adding randomness to decisions disperses agents (paper §III.F)".into(),
        table,
        claims,
        figure: None,
    }
}

/// Builds a stationary 300-node wireless network in which `fraction` of
/// the nodes run on decaying batteries (the mapping study's "degradation
/// on a percentage of radio links due to rely on battery power").
fn degradable_network(fraction: f64, seed: u64) -> WirelessNetwork {
    let net = NetworkBuilder::new(300)
        .mobile_fraction(0.0)
        .target_edges(2164)
        .min_initial_reachability(0.0)
        .build(seed)
        .expect("degradation network must build");
    let arena = net.arena();
    let count = (net.node_count() as f64 * fraction).round() as usize;
    let nodes = net
        .nodes()
        .iter()
        .cloned()
        .map(|mut node| {
            // Deterministically mark the first `count` ids battery-powered.
            if node.id.index() < count {
                node.battery =
                    BatteryState::new(BatteryModel::Linear { per_step: 0.5 / 300.0, floor: 0.3 });
            }
            node
        })
        .collect();
    WirelessNetwork::from_nodes(arena, nodes, seed)
}

/// E14 — link degradation in the mapping environment: battery decay
/// invalidates a once-perfect map over time ("the topology knowledge of
/// the network become invalid after awhile, such that we need to fire up
/// the agents again").
pub fn ext_degradation(_ctx: &Ctx) -> ExperimentReport {
    let horizon = 300u64;
    let mut table = Table::new(["battery fraction", "edges lost by t=150", "edges lost by t=300"]);
    let mut losses = Vec::new();
    for &fraction in &[0.0f64, 0.15, 0.3, 0.6] {
        let mut net = degradable_network(fraction, TOPOLOGY_SEED);
        let initial = net.links().clone();
        let mut lost_mid = 0usize;
        let mut lost_end = 0usize;
        for t in 1..=horizon {
            net.advance();
            let lost = initial.edges().filter(|e| !net.links().has_edge(e.from, e.to)).count();
            if t == 150 {
                lost_mid = lost;
            }
            if t == horizon {
                lost_end = lost;
            }
        }
        let total = initial.edge_count().max(1);
        table.push_row([
            format!("{fraction:.2}"),
            format!("{:.1}%", 100.0 * lost_mid as f64 / total as f64),
            format!("{:.1}%", 100.0 * lost_end as f64 / total as f64),
        ]);
        losses.push((fraction, lost_mid as f64 / total as f64, lost_end as f64 / total as f64));
    }
    let claims = vec![
        Claim::new(
            "without battery decay the map never goes stale",
            format!("{:.1}% of edges lost", 100.0 * losses[0].2),
            losses[0].2 == 0.0,
        ),
        Claim::new(
            "staleness grows with time",
            losses
                .iter()
                .skip(1)
                .map(|l| format!("{:.0}%: {:.1}% -> {:.1}%", l.0 * 100.0, l.1 * 100.0, l.2 * 100.0))
                .collect::<Vec<_>>()
                .join("; "),
            losses.iter().skip(1).all(|l| l.2 >= l.1),
        ),
        Claim::new(
            "staleness grows with the battery-powered fraction",
            format!(
                "{:.1}% lost at fraction 0.15 vs {:.1}% at 0.6",
                100.0 * losses[1].2,
                100.0 * losses[3].2
            ),
            losses[3].2 > losses[1].2 && losses[1].2 > 0.0,
        ),
    ];
    ExperimentReport {
        id: "ext-degradation".into(),
        title: "battery-driven link degradation invalidates a finished map".into(),
        paper_claim: "some links degrade over the network lifetime, so mapping must be re-fired \
             periodically (§II.A)"
            .into(),
        table,
        claims,
        figure: None,
    }
}

/// E20 — continuous mapping of a drifting topology: instead of
/// re-firing agents from scratch when the map goes stale (§II.A), leave
/// them running; first-hand refresh unlearns dead links while meetings
/// keep spreading fresh ones. Measures the steady-state map accuracy a
/// team sustains against continuous battery-driven link loss.
pub fn ext_livemap(ctx: &Ctx) -> ExperimentReport {
    use agentnet_core::mapping::{MappingConfig, MappingSim};
    use agentnet_core::policy::MappingPolicy;
    use agentnet_engine::sim::{Step, TimeStepSim};
    use agentnet_engine::Summary;

    const STEPS: u64 = 400;
    const WINDOW: std::ops::Range<usize> = 200..400;

    let mut table = Table::new(["population", "steady accuracy", "stale edges / agent"]);
    let mut rows = Vec::new();
    for (i, &pop) in [5usize, 15, 40].iter().enumerate() {
        let results: Vec<(f64, f64)> =
            ctx.replicated("livemap", &(pop as u64), 2000 + i as u64, |_, s| {
                // A stationary wireless field whose battery-powered nodes
                // keep losing range: links die throughout the run.
                let mut net = degradable_network(0.3, TOPOLOGY_SEED);
                let config = MappingConfig::new(MappingPolicy::Conscientious, pop).stigmergic(true);
                let mut sim = MappingSim::new(net.links().clone(), config, s.seed())
                    .expect("valid mapping config");
                let mut accuracy = Vec::new();
                let mut stale = Vec::new();
                for step in 0..STEPS {
                    net.advance();
                    sim.set_graph(net.links().clone());
                    sim.step(Step::new(step));
                    accuracy.push(sim.mean_accuracy());
                    stale.push(sim.mean_stale_edges());
                }
                let acc = accuracy[WINDOW].iter().sum::<f64>() / WINDOW.len() as f64;
                let stl = stale[WINDOW].iter().sum::<f64>() / WINDOW.len() as f64;
                (acc, stl)
            });
        let acc = Summary::from_samples(results.iter().map(|r| r.0)).expect("replicates ran");
        let stl = Summary::from_samples(results.iter().map(|r| r.1)).expect("replicates ran");
        table.push_row([pop.to_string(), acc.mean_ci_string(3), format!("{:.1}", stl.mean)]);
        rows.push((pop, acc.mean, stl.mean));
    }
    let claims = vec![
        Claim::new(
            "a live team sustains a mostly accurate map against continuous drift",
            format!("accuracy {:.3} at population 15, {:.3} at 40", rows[1].1, rows[2].1),
            rows[1].1 > 0.75 && rows[2].1 > 0.95,
        ),
        Claim::new(
            "more agents sustain a fresher map",
            rows.iter().map(|r| format!("pop {}: {:.3}", r.0, r.1)).collect::<Vec<_>>().join("; "),
            rows[2].1 > rows[0].1,
        ),
        Claim::new(
            "perfect knowledge is unattainable on a drifting topology",
            format!("best accuracy {:.4} < 1", rows[2].1),
            rows[2].1 < 0.9999,
        ),
        Claim::new(
            "meetings spread stale knowledge: stale edges per agent grow with population",
            rows.iter().map(|r| format!("pop {}: {:.0}", r.0, r.2)).collect::<Vec<_>>().join("; "),
            rows[2].2 > rows[0].2,
        ),
    ];
    ExperimentReport {
        id: "ext-livemap".into(),
        title: "continuous mapping of a drifting topology".into(),
        paper_claim:
            "the topology knowledge becomes invalid after a while, so mapping must be              maintained, not computed once (§II.A)"
                .into(),
        table,
        claims,
        figure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradable_network_marks_requested_fraction() {
        let net = degradable_network(0.3, 7);
        let battery =
            net.nodes().iter().filter(|n| n.battery.model() != BatteryModel::Mains).count();
        assert_eq!(battery, 90);
    }

    #[test]
    fn degradation_report_is_cheap_and_passes() {
        let exec = agentnet_engine::Executor::serial();
        let report = ext_degradation(&Ctx::new(&exec, "ext-degradation", crate::Mode::Quick));
        assert!(report.passed(), "{}", report.to_markdown());
        assert_eq!(report.table.len(), 4);
    }
}
