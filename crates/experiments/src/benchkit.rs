//! The `repro bench` kernel suite.
//!
//! Each kernel times one steady-state hot path of the simulators on the
//! paper's fixed topologies ([`TOPOLOGY_SEED`]), so successive runs are
//! comparable. Results are packaged as a
//! [`BenchReport`](agentnet_engine::perf::BenchReport) and gated against
//! a committed baseline on calibration-normalized timings (see
//! [`agentnet_engine::perf`] for the normalization rationale).

use crate::{paper_mapping_graph, paper_routing_network, TOPOLOGY_SEED};
use agentnet_core::mapping::{MappingConfig, MappingSim};
use agentnet_core::policy::{MappingPolicy, RoutingPolicy};
use agentnet_core::routing::{
    AntNetConfig, AntNetSim, RouteIndex, RoutingConfig, RoutingProtocol, RoutingSim,
};
use agentnet_engine::perf::{
    calibration_kernel, time_kernel, utc_date_string, BenchOptions, BenchReport, CALIBRATION_KERNEL,
};
use agentnet_engine::sim::{Step, TimeStepSim};
use agentnet_graph::geometry::{Point2, Rect};
use agentnet_radio::{NetworkBuilder, SpatialGrid};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// Network advances timed per bench iteration.
const ADVANCES_PER_ITER: u64 = 64;

/// Simulation steps timed per bench iteration.
const STEPS_PER_ITER: u64 = 16;

/// Scaling-preset kernels: name, node count, advances per iteration
/// (scaled down with population so one iteration stays OS-timeable
/// without taking seconds at 100k).
const SCALED_KERNELS: &[(&str, usize, u64)] = &[
    ("sharded_advance_1k", 1_000, 8),
    ("sharded_advance_10k", 10_000, 2),
    ("sharded_advance_100k", 100_000, 1),
];

/// Grid-only kernel names, in suite order. These time the spatial index
/// directly on synthetic preset-density scatters — no network build, so
/// even the 1M rebuild is cheap to set up and runs in the default suite.
const GRID_KERNEL_NAMES: &[&str] = &[
    "grid_rebuild_single_100k",
    "grid_rebuild_sharded_100k",
    "grid_rebuild_sharded_1m",
    "grid_incremental_100k",
];

/// Cell size for the grid kernels: the scaled presets' pinned base
/// radio range, i.e. the cell size the network layer derives.
const GRID_CELL: f64 = 101.0;

/// Every kernel of the default suite, in suite order (calibration
/// first). The CLI checks `--filter` patterns against this list so a
/// filter matching nothing is a hard error instead of a vacuous run.
pub fn kernel_names() -> Vec<&'static str> {
    let mut names = vec![
        CALIBRATION_KERNEL,
        "wireless_advance_static",
        "wireless_advance_mobile",
        "routing_step",
        "route_revalidation",
        "antnet_step",
        "mapping_step",
        "shard_rebuild",
    ];
    names.extend(SCALED_KERNELS.iter().map(|&(name, _, _)| name));
    names.extend(GRID_KERNEL_NAMES);
    names
}

/// Runs the full kernel suite and returns the stamped report.
pub fn run_kernels(opts: BenchOptions, unix_seconds: u64) -> BenchReport {
    run_kernels_matching(opts, unix_seconds, &|_| true)
}

/// Runs the kernels whose names pass `keep` (the calibration kernel is
/// always timed — without it nothing normalizes), skipping the setup of
/// filtered-out kernels entirely, and returns the stamped report.
///
/// The kernels:
///
/// * `calibration` — the pure-CPU normalization workload.
/// * `wireless_advance_static` — [`WirelessNetwork::advance`] on the
///   paper routing network with every non-gateway node stationary and
///   mains-powered: the steady state the allocation-free fast path
///   targets (no movement, no battery decay, links unchanged).
/// * `wireless_advance_mobile` — the same network with the paper's
///   mobile fraction: movement, link recomputation, grid rebuild.
/// * `routing_step` — full [`RoutingSim`] steps (decide / move /
///   exchange / revalidate) on the paper network.
/// * `antnet_step` — full [`AntNetSim`] steps (evaporate / move ants /
///   deposit / revalidate) on the paper network: the zoo's heaviest
///   per-step arm (per-candidate pheromone scans).
/// * `mapping_step` — full [`MappingSim`] steps on the paper graph.
/// * `route_revalidation` — a forced full [`RouteIndex`] resync plus
///   reverse-BFS connectivity on a warmed routing state.
/// * `shard_rebuild` — a forced full link rebuild (grid + out-rows +
///   ordered commit) on the 1k scaling preset, sharded across the
///   machine's cores.
/// * `sharded_advance_{1k,10k,100k}` — [`WirelessNetwork::advance`] on
///   the scaling presets with sharding at the machine's core count:
///   the deterministic parallel step this crate's scaling work targets.
/// * `grid_rebuild_single_100k` / `grid_rebuild_sharded_100k` — the
///   spatial grid's from-scratch re-index over a 100k preset-density
///   scatter, sequential vs sharded across the machine's cores (at
///   least 2): the pair that shows the sharded rebuild's wall-clock
///   win on multi-core machines.
/// * `grid_rebuild_sharded_1m` — the same sharded re-index at 1M
///   points: the million-node ambition's serial bottleneck in
///   isolation.
/// * `grid_incremental_100k` — the incremental splice with 1% of 100k
///   points oscillating half a cell: the low-mobility fast path that
///   replaces both full rebuilds above.
///
/// [`WirelessNetwork::advance`]: agentnet_radio::WirelessNetwork::advance
pub fn run_kernels_matching(
    opts: BenchOptions,
    unix_seconds: u64,
    keep: &dyn Fn(&str) -> bool,
) -> BenchReport {
    let mut report = BenchReport::new(utc_date_string(unix_seconds), opts);

    report.kernels.push(time_kernel(CALIBRATION_KERNEL, opts, || {
        black_box(calibration_kernel());
    }));

    if keep("wireless_advance_static") {
        let mut stationary = paper_routing_network()
            .mobile_fraction(0.0)
            .build(TOPOLOGY_SEED)
            .expect("paper routing topology must build");
        stationary.advance(); // settle: first advance builds the caches
        report.kernels.push(time_kernel("wireless_advance_static", opts, || {
            for _ in 0..ADVANCES_PER_ITER {
                stationary.advance();
            }
            black_box(stationary.topology_version());
        }));
    }

    if keep("wireless_advance_mobile") {
        let mut mobile = paper_routing_network()
            .build(TOPOLOGY_SEED)
            .expect("paper routing topology must build");
        report.kernels.push(time_kernel("wireless_advance_mobile", opts, || {
            for _ in 0..ADVANCES_PER_ITER {
                mobile.advance();
            }
            black_box(mobile.topology_version());
        }));
    }

    if keep("routing_step") || keep("route_revalidation") {
        let net = paper_routing_network().build(TOPOLOGY_SEED).expect("paper routing topology");
        let config = RoutingConfig::new(RoutingPolicy::OldestNode, 100);
        let mut routing =
            RoutingSim::new(net, config, TOPOLOGY_SEED).expect("valid routing config");
        let mut now = 0u64;
        if keep("routing_step") {
            report.kernels.push(time_kernel("routing_step", opts, || {
                for _ in 0..STEPS_PER_ITER {
                    routing.step(Step::new(now));
                    now += 1;
                }
                black_box(routing.connectivity_series().values().last().copied());
            }));
        }
        if keep("route_revalidation") {
            // Route revalidation in isolation: clone the warmed routing
            // state's tables and force a from-scratch index resync every
            // iteration by alternating the version stamp.
            let n = routing.network().node_count();
            let tables: Vec<_> =
                (0..n).map(|v| routing.table(agentnet_graph::NodeId::new(v)).clone()).collect();
            let mut is_gateway = vec![false; n];
            for &g in routing.network().gateways() {
                is_gateway[g.index()] = true;
            }
            let live = routing.live_gateways().to_vec();
            let mut index = RouteIndex::new(n);
            let mut version = 0u64;
            report.kernels.push(time_kernel("route_revalidation", opts, || {
                // A single resync is ~10µs — too short to time against OS
                // noise, so batch like the step kernels.
                for _ in 0..STEPS_PER_ITER {
                    index.refresh(&tables, routing.network().links(), &is_gateway, version);
                    version = version.wrapping_add(1);
                    black_box(index.connected_fraction(&live));
                }
            }));
        }
    }

    if keep("antnet_step") {
        let net = paper_routing_network().build(TOPOLOGY_SEED).expect("paper routing topology");
        let config = AntNetConfig::new(100);
        let mut antnet = AntNetSim::new(net, config, TOPOLOGY_SEED).expect("valid antnet config");
        let mut now = 0u64;
        report.kernels.push(time_kernel("antnet_step", opts, || {
            for _ in 0..STEPS_PER_ITER {
                antnet.step(Step::new(now));
                now += 1;
            }
            black_box(antnet.connectivity_series().values().last().copied());
        }));
    }

    if keep("mapping_step") {
        let graph = paper_mapping_graph();
        let config = MappingConfig::new(MappingPolicy::Conscientious, 15);
        let mut mapping =
            MappingSim::new(graph, config, TOPOLOGY_SEED).expect("valid mapping config");
        let mut now = 0u64;
        report.kernels.push(time_kernel("mapping_step", opts, || {
            for _ in 0..STEPS_PER_ITER {
                mapping.step(Step::new(now));
                now += 1;
            }
            black_box(mapping.is_done());
        }));
    }

    let shards = machine_shards();

    if keep("shard_rebuild") {
        // Incremental maintenance off: back-to-back refreshes with no
        // movement would otherwise splice zero nodes and time nothing.
        let mut net = NetworkBuilder::preset_1k()
            .advance_shards(shards)
            .grid_incremental(false)
            .build(TOPOLOGY_SEED)
            .expect("1k scaling preset must build");
        report.kernels.push(time_kernel("shard_rebuild", opts, || {
            net.refresh_links();
            black_box(net.topology_version());
        }));
    }

    for &(name, nodes, advances) in SCALED_KERNELS {
        if !keep(name) {
            continue;
        }
        let mut net = NetworkBuilder::scaled_preset(nodes)
            .advance_shards(shards)
            .build(TOPOLOGY_SEED)
            .expect("scaling preset must build");
        net.advance(); // settle: first advance warms grid and row scratch
        report.kernels.push(time_kernel(name, opts, || {
            for _ in 0..advances {
                net.advance();
            }
            black_box(net.topology_version());
        }));
    }

    // Grid-only kernels: the spatial re-index in isolation, at preset
    // density. The single/sharded 100k pair measures the sharded
    // rebuild's win over the sequential counting sort (equal on a
    // single-core machine); the incremental kernel times the 1%-moved
    // splice the low-mobility regime takes instead of either.
    for (name, nodes, kernel_shards) in [
        ("grid_rebuild_single_100k", 100_000, 1),
        ("grid_rebuild_sharded_100k", 100_000, shards.max(2)),
        ("grid_rebuild_sharded_1m", 1_000_000, shards.max(2)),
    ] {
        if !keep(name) {
            continue;
        }
        let (arena, pts) = grid_points(nodes);
        let mut grid = SpatialGrid::build(arena, GRID_CELL, &pts).expect("finite grid geometry");
        report.kernels.push(time_kernel(name, opts, || {
            grid.rebuild_sharded(arena, GRID_CELL, &pts, kernel_shards)
                .expect("finite grid geometry");
            black_box(grid.cell_count());
        }));
    }

    if keep("grid_incremental_100k") {
        let (arena, mut pts) = grid_points(100_000);
        let mut grid = SpatialGrid::build(arena, GRID_CELL, &pts).expect("finite grid geometry");
        // 1% of the points oscillate half a cell each iteration — under
        // the network layer's incremental budget, crossing cell borders
        // for roughly half the movers.
        let moved: Vec<usize> = (0..pts.len()).step_by(100).collect();
        let mut offset = 0.5 * GRID_CELL;
        report.kernels.push(time_kernel("grid_incremental_100k", opts, || {
            for &i in &moved {
                if let Some(p) = pts.get_mut(i) {
                    p.x += offset;
                }
            }
            offset = -offset;
            let applied = grid.incremental_update(arena, GRID_CELL, &pts, &moved);
            debug_assert!(applied, "incremental precondition must hold in the kernel");
            black_box(applied);
        }));
    }

    report
}

/// Deterministic uniform scatter at the scaled presets' density (250
/// nodes per km², arena side growing with `sqrt(nodes)`), without the
/// cost of building a full network.
fn grid_points(nodes: usize) -> (Rect, Vec<Point2>) {
    let side = 1000.0 * (nodes as f64 / 250.0).sqrt();
    let arena = Rect::square(side);
    let mut rng = StdRng::seed_from_u64(TOPOLOGY_SEED);
    let pts = (0..nodes)
        .map(|_| Point2::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect();
    (arena, pts)
}

/// Shard count for the scaling kernels: one per available core, so the
/// bench reflects what the machine can actually do. Determinism is not
/// at stake — results are bitwise identical at any shard count.
fn machine_shards() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The largest workloads are excluded here: building the 10k/100k
    /// networks or scattering a million grid points in a debug-profile
    /// unit test costs tens of seconds without exercising any wiring
    /// the smaller kernels don't.
    fn debug_sized(name: &str) -> bool {
        name != "sharded_advance_10k"
            && name != "sharded_advance_100k"
            && name != "grid_rebuild_sharded_1m"
    }

    #[test]
    fn kernel_suite_is_complete_and_timed() {
        let opts = BenchOptions { warmup: 0, iters: 1 };
        let report = run_kernels_matching(opts, 1_785_931_200, &debug_sized);
        assert_eq!(report.date, "2026-08-05");
        let names: Vec<&str> = report.kernels.iter().map(|k| k.kernel.as_str()).collect();
        assert_eq!(
            names,
            [
                CALIBRATION_KERNEL,
                "wireless_advance_static",
                "wireless_advance_mobile",
                "routing_step",
                "route_revalidation",
                "antnet_step",
                "mapping_step",
                "shard_rebuild",
                "sharded_advance_1k",
                "grid_rebuild_single_100k",
                "grid_rebuild_sharded_100k",
                "grid_incremental_100k",
            ]
        );
        for k in &report.kernels {
            assert!(k.ns_per_iter > 0.0, "{} not timed", k.kernel);
            assert!(report.normalized(&k.kernel).is_some(), "{} not normalizable", k.kernel);
        }
    }

    #[test]
    fn kernel_names_lists_the_suite_in_order() {
        // `kernel_names` is the CLI's zero-match oracle: it must agree
        // with what an unfiltered run would actually time, in order.
        let opts = BenchOptions { warmup: 0, iters: 1 };
        let report = run_kernels_matching(opts, 1_785_931_200, &debug_sized);
        let timed: Vec<&str> = report.kernels.iter().map(|k| k.kernel.as_str()).collect();
        let expected: Vec<&'static str> =
            kernel_names().into_iter().filter(|n| debug_sized(n)).collect();
        assert_eq!(timed, expected);
    }

    #[test]
    fn filtered_run_always_keeps_calibration() {
        let opts = BenchOptions { warmup: 0, iters: 1 };
        let report = run_kernels_matching(opts, 1_785_931_200, &|n| n == "shard_rebuild");
        let names: Vec<&str> = report.kernels.iter().map(|k| k.kernel.as_str()).collect();
        assert_eq!(names, [CALIBRATION_KERNEL, "shard_rebuild"]);
        assert!(report.normalized("shard_rebuild").is_some());
    }
}
