//! The protocol-zoo figure family (`ext-zoo*`): delivery ratio, route
//! age and overhead for every [`RoutingProtocol`] arm — legacy agents,
//! stigmergic trails, AntNet ants, and the epidemic / spray-and-wait
//! flooding baselines — under identical mobility and seeds, swept over
//! population and per-arm cache size.
//!
//! Every arm runs on the paper's 250-node / 12-gateway routing network
//! rebuilt from [`TOPOLOGY_SEED`], for [`ROUTING_STEPS`] steps, and is
//! scored on the paper's 150–300 measurement window — exactly the
//! regime of Figs. 7–11, so zoo numbers are directly comparable with
//! the legacy figures.

use crate::report::{Claim, ExperimentReport};
use crate::{Ctx, ROUTING_STEPS, ROUTING_WINDOW, TOPOLOGY_SEED};
use agentnet_baselines::zoo::{build_protocol, ZooParams};
use agentnet_core::overhead::Overhead;
use agentnet_core::routing::{ProtocolKind, RoutingOutcome, RoutingProtocol};
use agentnet_engine::sim::Step;
use agentnet_engine::table::Table;
use agentnet_engine::Summary;

/// Replicate-averaged scores of one arm at one parameter point.
struct ArmStats {
    delivery: Summary,
    age: Summary,
    overhead: Overhead,
}

/// Runs one zoo replicate — under per-step table validation plus the
/// incremental-vs-from-scratch connectivity differential when `--check`
/// is on. A violation inside an experiment replicate is always a
/// simulator bug, so it panics.
fn run_zoo_replicate(sim: &mut dyn RoutingProtocol, ctx: &Ctx) -> RoutingOutcome {
    if ctx.check() {
        let _span = ctx.span("zoo_checked_replicate_micros");
        for step in 0..ROUTING_STEPS {
            let now = Step::new(step);
            sim.step(now);
            if let Err(e) = sim.validate_tables(now) {
                panic!("{} replicate failed table validation at {now}: {e}", sim.kind());
            }
        }
        let recorded = sim.connectivity_series().values().last().copied().unwrap_or(f64::NAN);
        let reference = sim.connectivity();
        assert!(
            recorded == reference,
            "{}: incremental connectivity {recorded} != from-scratch {reference}",
            sim.kind()
        );
        RoutingOutcome { connectivity: sim.connectivity_series().clone() }
    } else {
        let _span = ctx.span("zoo_replicate_micros");
        sim.run(ROUTING_STEPS)
    }
}

/// Replicated scores for `kind` at `params` on the seed stream
/// `stream`: delivery ratio (mean window connectivity), end-of-run mean
/// route age, and integer-averaged overhead counters.
fn arm_stats(ctx: &Ctx, kind: ProtocolKind, params: ZooParams, stream: u64) -> ArmStats {
    let cell = (kind, params);
    let results: Vec<(f64, f64, Overhead)> = ctx.replicated("zoo-arm", &cell, stream, |i, s| {
        let net = paper_net();
        let mut arm = build_protocol(kind, net, &params, s.seed())
            .unwrap_or_else(|e| panic!("{kind} arm must build: {e}"));
        let out = run_zoo_replicate(arm.as_mut(), ctx);
        ctx.observe_protocol(arm.as_ref(), "zoo-arm", stream, i);
        let delivery = out.mean_connectivity(ROUTING_WINDOW).expect("window inside run");
        let age = arm.mean_route_age(Step::new(ROUTING_STEPS));
        (delivery, age, arm.overhead())
    });
    let delivery = Summary::from_samples(results.iter().map(|r| r.0)).expect("replicates ran");
    let age = Summary::from_samples(results.iter().map(|r| r.1)).expect("replicates ran");
    let total = results.iter().fold(Overhead::default(), |acc, r| acc + r.2);
    let n = results.len().max(1) as u64;
    let overhead = Overhead {
        migrations: total.migrations / n,
        migrated_bytes: total.migrated_bytes / n,
        meeting_messages: total.meeting_messages / n,
        footprint_writes: total.footprint_writes / n,
        table_writes: total.table_writes / n,
    };
    ArmStats { delivery, age, overhead }
}

fn paper_net() -> agentnet_radio::WirelessNetwork {
    crate::paper_routing_network().build(TOPOLOGY_SEED).expect("paper routing network must build")
}

/// E19 — the protocol zoo head-to-head: every arm at the zoo defaults
/// (population 100, per-arm default cache), identical mobility.
pub fn ext_zoo(ctx: &Ctx) -> ExperimentReport {
    let params = ZooParams::default();
    let mut table =
        Table::new(["protocol", "delivery ratio", "route age", "migrations", "messages"]);
    let mut rows = Vec::new();
    for (i, kind) in ProtocolKind::ALL.into_iter().enumerate() {
        let stats = arm_stats(ctx, kind, params, 2100 + i as u64);
        table.push_row([
            kind.name().to_string(),
            stats.delivery.mean_ci_string(3),
            format!("{:.1}", stats.age.mean),
            stats.overhead.migrations.to_string(),
            stats.overhead.meeting_messages.to_string(),
        ]);
        rows.push((kind, stats));
    }
    let by_kind = |k: ProtocolKind| rows.iter().find(|(kind, _)| *kind == k).map(|(_, s)| s);
    let agents = by_kind(ProtocolKind::Agents).expect("agents arm ran");
    let epidemic = by_kind(ProtocolKind::Epidemic).expect("epidemic arm ran");
    let snw = by_kind(ProtocolKind::SprayAndWait).expect("spray-and-wait arm ran");
    let claims = vec![
        Claim::new(
            "every arm sustains nonzero steady-state delivery",
            rows.iter()
                .map(|(k, s)| format!("{k}: {:.3}", s.delivery.mean))
                .collect::<Vec<_>>()
                .join("; "),
            rows.iter().all(|(_, s)| s.delivery.mean > 0.02),
        ),
        Claim::new(
            "unbounded flooding delivers at least as well as budgeted flooding",
            format!(
                "epidemic {:.3} vs spray-and-wait {:.3}",
                epidemic.delivery.mean, snw.delivery.mean
            ),
            epidemic.delivery.mean >= snw.delivery.mean,
        ),
        Claim::new(
            "flooding pays in messages what agents pay in migrations",
            format!(
                "epidemic sends {} messages; agents make {} migrations",
                epidemic.overhead.meeting_messages, agents.overhead.migrations
            ),
            epidemic.overhead.meeting_messages > agents.overhead.migrations,
        ),
        Claim::new(
            "flooding arms move no agents; agent arms move no announcements",
            format!(
                "flooding migrations {} + {}; agent-arm migrations all positive",
                epidemic.overhead.migrations, snw.overhead.migrations
            ),
            epidemic.overhead.migrations == 0
                && snw.overhead.migrations == 0
                && rows.iter().all(|(k, s)| match k {
                    ProtocolKind::Epidemic | ProtocolKind::SprayAndWait => true,
                    _ => s.overhead.migrations > 0,
                }),
        ),
    ];
    ExperimentReport {
        id: "ext-zoo".into(),
        title: "protocol zoo: five routing arms under identical mobility".into(),
        paper_claim: "mobile-agent routing is one point in a protocol space; the zoo makes the \
             trade-offs (delivery vs overhead) measurable"
            .into(),
        table,
        claims,
        figure: None,
    }
}

/// Population points for the zoo sweep (the paper's Fig. 8 regime,
/// zoomed to its ends).
const ZOO_POPULATIONS: [usize; 2] = [25, 150];

/// E20 — population sweep over the agent-based arms (the flooding arms
/// are agentless, so population does not apply to them).
pub fn ext_zoo_pop(ctx: &Ctx) -> ExperimentReport {
    let arms = [ProtocolKind::Agents, ProtocolKind::Stigmergic, ProtocolKind::AntNet];
    let mut table = Table::new(["protocol", "population", "delivery ratio", "table writes"]);
    let mut rows = Vec::new();
    for (i, kind) in arms.into_iter().enumerate() {
        for (j, &pop) in ZOO_POPULATIONS.iter().enumerate() {
            let stream = 2120 + (2 * i + j) as u64;
            let stats = arm_stats(ctx, kind, ZooParams::with_population(pop), stream);
            table.push_row([
                kind.name().to_string(),
                pop.to_string(),
                stats.delivery.mean_ci_string(3),
                stats.overhead.table_writes.to_string(),
            ]);
            rows.push((kind, pop, stats));
        }
    }
    let pair = |k: ProtocolKind| {
        let lo = rows.iter().find(|(kind, pop, _)| *kind == k && *pop == ZOO_POPULATIONS[0]);
        let hi = rows.iter().find(|(kind, pop, _)| *kind == k && *pop == ZOO_POPULATIONS[1]);
        (lo.expect("low point ran"), hi.expect("high point ran"))
    };
    let claims = vec![
        Claim::new(
            "delivery does not degrade with population for any agent-based arm",
            arms.iter()
                .map(|&k| {
                    let (lo, hi) = pair(k);
                    format!("{k}: {:.3} -> {:.3}", lo.2.delivery.mean, hi.2.delivery.mean)
                })
                .collect::<Vec<_>>()
                .join("; "),
            arms.iter().all(|&k| {
                let (lo, hi) = pair(k);
                hi.2.delivery.mean + 0.05 >= lo.2.delivery.mean
            }),
        ),
        Claim::new(
            "more agents write more routes",
            arms.iter()
                .map(|&k| {
                    let (lo, hi) = pair(k);
                    format!("{k}: {} -> {}", lo.2.overhead.table_writes, hi.2.overhead.table_writes)
                })
                .collect::<Vec<_>>()
                .join("; "),
            arms.iter().all(|&k| {
                let (lo, hi) = pair(k);
                hi.2.overhead.table_writes > lo.2.overhead.table_writes
            }),
        ),
    ];
    ExperimentReport {
        id: "ext-zoo-pop".into(),
        title: "protocol zoo: population sweep over the agent-based arms".into(),
        paper_claim: "connectivity rises with agent population (Fig. 8), and the trend should \
             survive a protocol change"
            .into(),
        table,
        claims,
        figure: None,
    }
}

/// Cache points for the zoo sweep (per-arm meaning: see
/// [`agentnet_baselines::zoo`]).
const ZOO_CACHES: [usize; 2] = [4, 32];

/// E21 — cache-size sweep over every arm: each arm's bounded-state knob
/// (visit memory, trail length, ant TTL, route age, copy budget) at a
/// starved and a generous setting.
pub fn ext_zoo_cache(ctx: &Ctx) -> ExperimentReport {
    let mut table = Table::new(["protocol", "cache", "delivery ratio", "route age"]);
    let mut rows = Vec::new();
    for (i, kind) in ProtocolKind::ALL.into_iter().enumerate() {
        for (j, &cache) in ZOO_CACHES.iter().enumerate() {
            let stream = 2140 + (2 * i + j) as u64;
            let stats = arm_stats(ctx, kind, ZooParams::default().cache(cache), stream);
            table.push_row([
                kind.name().to_string(),
                cache.to_string(),
                stats.delivery.mean_ci_string(3),
                format!("{:.1}", stats.age.mean),
            ]);
            rows.push((kind, cache, stats));
        }
    }
    let pair = |k: ProtocolKind| {
        let lo = rows.iter().find(|(kind, c, _)| *kind == k && *c == ZOO_CACHES[0]);
        let hi = rows.iter().find(|(kind, c, _)| *kind == k && *c == ZOO_CACHES[1]);
        (lo.expect("starved point ran"), hi.expect("generous point ran"))
    };
    let epidemic = pair(ProtocolKind::Epidemic);
    let claims = vec![
        Claim::new(
            "a generous cache never hurts delivery",
            ProtocolKind::ALL
                .iter()
                .map(|&k| {
                    let (lo, hi) = pair(k);
                    format!("{k}: {:.3} -> {:.3}", lo.2.delivery.mean, hi.2.delivery.mean)
                })
                .collect::<Vec<_>>()
                .join("; "),
            ProtocolKind::ALL.iter().all(|&k| {
                let (lo, hi) = pair(k);
                hi.2.delivery.mean + 0.05 >= lo.2.delivery.mean
            }),
        ),
        Claim::new(
            "longer route retention shows up as older routes (epidemic)",
            format!(
                "age {:.1} at max_age 4 vs {:.1} at 32",
                epidemic.0 .2.age.mean, epidemic.1 .2.age.mean
            ),
            epidemic.1 .2.age.mean >= epidemic.0 .2.age.mean,
        ),
    ];
    ExperimentReport {
        id: "ext-zoo-cache".into(),
        title: "protocol zoo: per-arm cache-size sweep".into(),
        paper_claim: "agents keep bounded state (visit memory, Fig. 9); every zoo arm has an \
             analogous knob with an analogous starvation regime"
            .into(),
        table,
        claims,
        figure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use agentnet_engine::Executor;

    #[test]
    fn zoo_reports_are_deterministic_across_executors() {
        let serial = Executor::serial();
        let parallel = Executor::new(4);
        let a = ext_zoo(&Ctx::new(&serial, "ext-zoo", Mode::Smoke));
        let b = ext_zoo(&Ctx::new(&parallel, "ext-zoo", Mode::Smoke));
        assert_eq!(a.to_markdown(), b.to_markdown());
    }

    #[test]
    fn checked_zoo_replicates_match_unchecked() {
        // Table validation + the connectivity differential are pure
        // observers: same report bytes, no violations on healthy arms.
        let exec = Executor::serial();
        let plain = ext_zoo_cache(&Ctx::new(&exec, "ext-zoo-cache", Mode::Smoke));
        let checked = ext_zoo_cache(&Ctx::new(&exec, "ext-zoo-cache", Mode::Smoke).checked(true));
        assert_eq!(plain.to_markdown(), checked.to_markdown());
    }

    #[test]
    fn zoo_pop_smoke_passes() {
        let exec = Executor::serial();
        let report = ext_zoo_pop(&Ctx::new(&exec, "ext-zoo-pop", Mode::Smoke));
        assert!(report.passed(), "{}", report.to_markdown());
        assert_eq!(report.table.len(), 6);
    }
}
