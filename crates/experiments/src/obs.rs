//! Run-level observability artifacts behind the `repro` flags:
//!
//! * [`RunManifest`] — the versioned JSON document `--metrics-out`
//!   writes: run configuration, per-experiment cell statistics, cache
//!   statistics, wall clock, and the full metrics snapshot (counters,
//!   gauges, histograms). Machine-readable ground truth for what a run
//!   did, schema-checked on load.
//! * [`TraceSink`] — the cross-experiment collector behind
//!   `--trace-out`: simulation replicates deposit their [`TraceLog`]s
//!   here and the sink exports one deterministic JSON-lines file, each
//!   line a simulation event tagged with the cell it came from.
//! * Table-cell formatters ([`percent_or_dash`], [`rate_or_dash`]) for
//!   the stderr run-metrics table — ratios over an empty denominator
//!   render as `-`, never `NaN` or `inf`.
//!
//! Everything here is a side channel: attaching a manifest, Prometheus
//! file or trace sink must never change report bytes on stdout.

use agentnet_core::trace::TraceLog;
use agentnet_engine::obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Schema version of [`RunManifest`]; bump on any breaking change to
/// the manifest layout so consumers can detect files they cannot read.
pub const MANIFEST_SCHEMA: u32 = 1;

/// Result-cache configuration and outcome for one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Whether a cache was attached at all (`--no-cache` disables it).
    pub enabled: bool,
    /// Whether cached cells were *read* (`--resume`), not just written.
    pub resume: bool,
    /// Cache directory, when enabled.
    pub dir: Option<String>,
    /// Cells served from the cache.
    pub hits: u64,
    /// Cells computed fresh.
    pub misses: u64,
}

/// One experiment's row in the manifest: identity, verdict, and the
/// cell counters aggregated from the executor's run events.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentCellStats {
    /// Experiment id (e.g. `fig7`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Whether every shape claim passed.
    pub passed: bool,
    /// Replicate cells finished (computed + cached).
    pub cells: u64,
    /// Of those, cells served from the result cache.
    pub cache_hits: u64,
    /// Wall-clock seconds the experiment took.
    pub wall_secs: f64,
}

/// The serving section of a `repro serve` manifest: daemon
/// configuration plus the query-path outcome, with tail latencies read
/// from the metrics registry's `serve_query_micros` histogram via
/// [`Histogram::quantile`](agentnet_engine::obs::Histogram::quantile).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Nodes in the served substrate preset.
    pub nodes: u64,
    /// Protocol-zoo arm served.
    pub protocol: String,
    /// Substrate + protocol seed.
    pub seed: u64,
    /// Steps executed before serving began.
    pub warmup_steps: u64,
    /// Step budget of the serving phase (0 = frozen map).
    pub steps: u64,
    /// Bound UDP query address.
    pub udp_addr: String,
    /// Bound HTTP metrics address, when one was configured.
    pub http_addr: Option<String>,
    /// Wall-clock seconds the daemon served.
    pub served_secs: f64,
    /// Queries answered (including error replies).
    pub queries: u64,
    /// Queries answered with an error reply.
    pub query_errors: u64,
    /// Achieved queries per second over the serving window.
    pub qps: f64,
    /// Server-side query latency quantiles in microseconds (absent
    /// when no query arrived).
    pub p50_micros: Option<f64>,
    /// 95th percentile query latency in microseconds.
    pub p95_micros: Option<f64>,
    /// 99th percentile query latency in microseconds.
    pub p99_micros: Option<f64>,
}

/// The versioned machine-readable run record `--metrics-out` writes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Layout version; always [`MANIFEST_SCHEMA`] for files this build
    /// writes.
    pub schema: u32,
    /// Compute budget the run used (`smoke` / `quick` / `full`).
    pub mode: String,
    /// Worker permits the executor ran with.
    pub jobs: usize,
    /// Whether replicates ran under per-step invariant checking.
    pub invariant_checks: bool,
    /// Total wall-clock seconds for the experiment phase.
    pub wall_secs: f64,
    /// Result-cache configuration and hit/miss outcome.
    pub cache: CacheStats,
    /// Per-experiment rows, in report (registry) order.
    pub experiments: Vec<ExperimentCellStats>,
    /// Protocol-zoo arms the run's validation battery was restricted to
    /// (`repro validate --protocol`), or every arm exercised by zoo
    /// experiments. Empty for runs that touched no zoo arm; `default`
    /// keeps manifests written by older builds parseable (schema
    /// unchanged — this field only adds information).
    #[serde(default)]
    pub protocols: Vec<String>,
    /// The serving section written by `repro serve` manifests; `None`
    /// for batch runs (and for manifests written by older builds —
    /// `default` keeps them parseable, schema unchanged).
    #[serde(default)]
    pub serve: Option<ServeStats>,
    /// Full metrics registry snapshot (counters, gauges, histograms).
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// Pretty-printed, newline-terminated JSON.
    pub fn to_json_pretty(&self) -> String {
        let mut json = serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| panic!("manifest serializes: {e}"));
        json.push('\n');
        json
    }

    /// Parses a manifest, rejecting both malformed JSON and any schema
    /// version this build does not understand.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let manifest: RunManifest =
            serde_json::from_str(text).map_err(|e| format!("manifest does not parse: {e}"))?;
        if manifest.schema != MANIFEST_SCHEMA {
            return Err(format!(
                "manifest schema {} unsupported (this build reads {MANIFEST_SCHEMA})",
                manifest.schema
            ));
        }
        Ok(manifest)
    }
}

/// A ratio as a whole percentage, or `-` when the denominator is zero.
/// Keeps the run-metrics table free of `NaN`.
pub fn percent_or_dash(num: u64, den: u64) -> String {
    if den == 0 {
        "-".to_string()
    } else {
        format!("{:.0}%", 100.0 * num as f64 / den as f64)
    }
}

/// An events-per-second rate, or `-` when nothing happened or no time
/// elapsed. A zero-cell experiment renders `-`, not `0.0` (it has no
/// rate, it just never ran).
pub fn rate_or_dash(count: u64, secs: f64) -> String {
    if count == 0 || secs <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}", count as f64 / secs)
    }
}

/// One replicate's trace deposit: which cell it came from plus the
/// exported JSONL and its dropped-event count.
#[derive(Clone, Debug)]
struct TraceCell {
    experiment: String,
    kind: String,
    stream: u64,
    replicate: usize,
    jsonl: String,
    dropped: u64,
}

/// The assembled `--trace-out` file plus its accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceExport {
    /// One JSON object per line (newline-terminated): the cell identity
    /// fields plus the simulation event under `"event"`.
    pub text: String,
    /// Number of replicate cells that deposited a trace.
    pub cells: u64,
    /// Event lines in `text`.
    pub events: u64,
    /// Events lost to serialization failures across all deposits — must
    /// be surfaced (the `repro` binary counts them in the metrics
    /// registry as `trace_dropped_events_total`).
    pub dropped: u64,
}

/// Thread-safe collector of simulation traces across every experiment
/// and replicate of a run.
///
/// Replicates record concurrently from executor workers; [`export`]
/// sorts deposits by (experiment, kind, stream, replicate), so the
/// emitted file is deterministic no matter how cells were scheduled.
///
/// [`export`]: TraceSink::export
#[derive(Debug, Default)]
pub struct TraceSink {
    capacity: usize,
    cells: Mutex<Vec<TraceCell>>,
}

impl TraceSink {
    /// A sink asking simulations to retain up to `capacity` events per
    /// replicate (the [`TraceLog`] ring size).
    pub fn new(capacity: usize) -> Self {
        TraceSink { capacity, cells: Mutex::new(Vec::new()) }
    }

    /// Per-replicate event retention the sink asks simulations for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deposits one replicate's trace, tagged with the cell it came
    /// from. `kind` and `stream` are the replicate group's metric name
    /// and seed stream (its cache identity components).
    pub fn record(
        &self,
        experiment: &str,
        kind: &str,
        stream: u64,
        replicate: usize,
        trace: &TraceLog,
    ) {
        let export = trace.to_jsonl();
        let mut cells = self.cells.lock().expect("trace sink mutex poisoned");
        cells.push(TraceCell {
            experiment: experiment.to_string(),
            kind: kind.to_string(),
            stream,
            replicate,
            jsonl: export.text,
            dropped: export.dropped,
        });
    }

    /// Assembles the deterministic JSON-lines export: every deposited
    /// event, each line tagged with its cell. Idempotent; deposits stay
    /// in the sink.
    pub fn export(&self) -> TraceExport {
        let mut cells = self.cells.lock().expect("trace sink mutex poisoned").clone();
        cells.sort_by(|a, b| {
            (&a.experiment, &a.kind, a.stream, a.replicate).cmp(&(
                &b.experiment,
                &b.kind,
                b.stream,
                b.replicate,
            ))
        });
        let mut out = TraceExport::default();
        for cell in &cells {
            out.cells += 1;
            out.dropped += cell.dropped;
            let experiment =
                serde_json::to_string(&cell.experiment).unwrap_or_else(|_| "\"?\"".to_string());
            let kind = serde_json::to_string(&cell.kind).unwrap_or_else(|_| "\"?\"".to_string());
            for line in cell.jsonl.lines() {
                out.events += 1;
                out.text.push_str(&format!(
                    "{{\"experiment\":{experiment},\"kind\":{kind},\"stream\":{},\"replicate\":{},\"event\":{line}}}\n",
                    cell.stream, cell.replicate
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_core::trace::TraceEvent;
    use agentnet_core::AgentId;
    use agentnet_engine::obs::Metrics;
    use agentnet_engine::Step;
    use agentnet_graph::NodeId;

    fn sample_manifest() -> RunManifest {
        let metrics = Metrics::enabled();
        metrics.counter_add("exec_cells_total", 4);
        metrics.observe("cell_micros", 120.0, agentnet_engine::obs::DURATION_MICROS_BUCKETS);
        RunManifest {
            schema: MANIFEST_SCHEMA,
            mode: "smoke".to_string(),
            jobs: 2,
            invariant_checks: false,
            wall_secs: 1.25,
            cache: CacheStats {
                enabled: true,
                resume: false,
                dir: Some("results_cache".to_string()),
                hits: 1,
                misses: 3,
            },
            experiments: vec![ExperimentCellStats {
                id: "fig1".to_string(),
                title: "single agent".to_string(),
                passed: true,
                cells: 4,
                cache_hits: 1,
                wall_secs: 1.0,
            }],
            protocols: vec!["agents".to_string(), "antnet".to_string()],
            serve: None,
            metrics: metrics.snapshot(),
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let manifest = sample_manifest();
        let json = manifest.to_json_pretty();
        assert!(json.ends_with('\n'));
        let back = RunManifest::from_json(&json).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn manifest_without_protocols_field_still_parses() {
        // Manifests written before the protocol zoo lack `protocols`;
        // same schema version, so they must load with the default.
        let mut manifest = sample_manifest();
        manifest.protocols.clear();
        let json = manifest.to_json_pretty();
        let stripped: Vec<&str> = json.lines().filter(|l| !l.contains("\"protocols\"")).collect();
        let back = RunManifest::from_json(&stripped.join("\n")).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn manifest_serve_section_round_trips_and_defaults() {
        // A serve manifest round-trips its serving section ...
        let mut manifest = sample_manifest();
        manifest.serve = Some(ServeStats {
            nodes: 1000,
            protocol: "agents".to_string(),
            seed: 42,
            warmup_steps: 50,
            steps: 200,
            udp_addr: "127.0.0.1:4242".to_string(),
            http_addr: None,
            served_secs: 5.0,
            queries: 12_345,
            query_errors: 0,
            qps: 2_469.0,
            p50_micros: Some(18.0),
            p95_micros: Some(120.0),
            p99_micros: Some(480.0),
        });
        let back = RunManifest::from_json(&manifest.to_json_pretty()).unwrap();
        assert_eq!(back, manifest);
        // ... and a batch manifest without the field still parses.
        let batch = sample_manifest();
        let json = batch.to_json_pretty();
        let stripped: Vec<&str> = json.lines().filter(|l| !l.contains("\"serve\"")).collect();
        let parsed = RunManifest::from_json(&stripped.join("\n")).unwrap();
        assert_eq!(parsed.serve, None);
    }

    #[test]
    fn manifest_rejects_unknown_schema_and_garbage() {
        let mut manifest = sample_manifest();
        manifest.schema = MANIFEST_SCHEMA + 1;
        let err = RunManifest::from_json(&manifest.to_json_pretty()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(RunManifest::from_json("{not json").is_err());
    }

    #[test]
    fn zero_cell_rows_render_dashes_not_nan() {
        // The regression: an experiment selected but with zero finished
        // cells must not divide by zero in the run-metrics table.
        assert_eq!(percent_or_dash(0, 0), "-");
        assert_eq!(rate_or_dash(0, 1.5), "-");
        assert_eq!(rate_or_dash(3, 0.0), "-");
        // Normal rows are unchanged.
        assert_eq!(percent_or_dash(1, 4), "25%");
        assert_eq!(rate_or_dash(3, 2.0), "1.5");
    }

    fn trace_with(events: u64) -> TraceLog {
        let mut log = TraceLog::new(16);
        for i in 0..events {
            log.record(TraceEvent::Moved {
                agent: AgentId::new(0),
                from: NodeId::new(0),
                to: NodeId::new(1),
                at: Step::new(i),
            });
        }
        log
    }

    #[test]
    fn trace_sink_exports_deterministically_tagged_lines() {
        let sink = TraceSink::new(16);
        // Deposited out of order; export must sort by cell identity.
        sink.record("fig7", "routing-conn", 3, 1, &trace_with(2));
        sink.record("fig1", "mapping-finish", 1, 0, &trace_with(1));
        let export = sink.export();
        assert_eq!(export.cells, 2);
        assert_eq!(export.events, 3);
        assert_eq!(export.dropped, 0);
        assert!(export.text.ends_with('\n'));
        let lines: Vec<&str> = export.text.lines().collect();
        assert_eq!(lines.len(), 3);
        // fig1 sorts before fig7.
        let first = serde_json::parse(lines[0]).unwrap();
        assert_eq!(first.get("experiment").and_then(|v| v.as_str()), Some("fig1"));
        assert_eq!(first.get("kind").and_then(|v| v.as_str()), Some("mapping-finish"));
        // Every line's embedded event round-trips as a TraceEvent.
        for line in &lines {
            let value = serde_json::parse(line).unwrap();
            let event: TraceEvent = serde_json::from_value(value.get("event").unwrap()).unwrap();
            assert!(matches!(event, TraceEvent::Moved { .. }));
        }
        // Idempotent.
        assert_eq!(sink.export(), export);
    }
}
