//! Shared fixtures for the Criterion benchmark harness.
//!
//! Each bench group corresponds to one figure of the paper (see
//! `benches/mapping_figs.rs` and `benches/routing_figs.rs`): it first
//! regenerates the figure's rows in smoke mode (printed to stderr, so
//! `cargo bench` output doubles as a miniature repro run) and then times
//! the simulation kernel behind that figure. `benches/substrates.rs`
//! micro-benchmarks the substrate crates.

#![forbid(unsafe_code)]

use agentnet_core::mapping::{MappingConfig, MappingSim};
use agentnet_core::routing::{RoutingConfig, RoutingSim};
use agentnet_graph::generators::GeometricConfig;
use agentnet_graph::DiGraph;
use agentnet_radio::{NetworkBuilder, WirelessNetwork};

/// A reduced-scale mapping graph (fast enough to run inside a bench
/// iteration, same construction as the paper's network).
pub fn bench_mapping_graph() -> DiGraph {
    GeometricConfig::new(100, 720).generate(42).expect("bench mapping graph must generate").graph
}

/// A reduced-scale routing network.
pub fn bench_routing_network() -> WirelessNetwork {
    NetworkBuilder::new(100)
        .gateways(5)
        .target_edges(800)
        .build(42)
        .expect("bench routing network must build")
}

/// Step budget for [`run_mapping`]; every sane bench config finishes far
/// below it.
pub const MAPPING_STEP_CAP: u64 = 1_000_000;

/// Runs a mapping config to completion on the bench graph and returns
/// the finishing time (used as the timed kernel of Figs. 1–6).
///
/// # Errors
///
/// Returns a description instead of panicking when the config is
/// invalid or the run fails to finish within [`MAPPING_STEP_CAP`] steps
/// — a pathological config in a bench loop should fail the comparison,
/// not abort the whole harness.
pub fn run_mapping(graph: &DiGraph, config: &MappingConfig, seed: u64) -> Result<u64, String> {
    let mut sim = MappingSim::new(graph.clone(), config.clone(), seed)
        .map_err(|e| format!("invalid bench mapping config: {e}"))?;
    let out = sim.run(MAPPING_STEP_CAP);
    if !out.finished {
        return Err(format!(
            "bench mapping run did not finish within {MAPPING_STEP_CAP} steps \
             (policy {:?}, population {}, seed {seed})",
            config.policy, config.population
        ));
    }
    Ok(out.finishing_time.as_u64())
}

/// Runs a routing config for `steps` on the bench network and returns
/// the final connectivity (the timed kernel of Figs. 7–11).
pub fn run_routing(net: &WirelessNetwork, config: &RoutingConfig, seed: u64, steps: u64) -> f64 {
    let mut sim = RoutingSim::new(net.clone(), config.clone(), seed).expect("valid routing config");
    let out = sim.run(steps);
    out.connectivity.values().last().copied().unwrap_or(0.0)
}

/// Prints an experiment's smoke-mode report to stderr, prefixed by its
/// bench group, so `cargo bench` regenerates every figure's rows.
pub fn print_figure_rows(exp_id: &str) {
    let exp = agentnet_experiments::registry::by_id(exp_id)
        .unwrap_or_else(|| panic!("unknown experiment {exp_id}"));
    let report = exp.run_serial(agentnet_experiments::Mode::Smoke);
    eprintln!("\n===== {exp_id} (smoke-mode regeneration) =====");
    eprintln!("{}", report.to_markdown());
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_core::policy::{MappingPolicy, RoutingPolicy};

    #[test]
    fn fixtures_build() {
        assert_eq!(bench_mapping_graph().node_count(), 100);
        assert_eq!(bench_routing_network().node_count(), 100);
    }

    #[test]
    fn kernels_run() {
        let g = bench_mapping_graph();
        let t = run_mapping(&g, &MappingConfig::new(MappingPolicy::Conscientious, 4), 1)
            .expect("bench mapping run finishes");
        assert!(t > 0);
        let net = bench_routing_network();
        let c = run_routing(&net, &RoutingConfig::new(RoutingPolicy::OldestNode, 20), 1, 50);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn run_mapping_reports_invalid_config_instead_of_panicking() {
        let g = bench_mapping_graph();
        let err = run_mapping(&g, &MappingConfig::new(MappingPolicy::Conscientious, 0), 1)
            .expect_err("zero population must be rejected");
        assert!(err.contains("invalid"), "unexpected error: {err}");
    }
}
