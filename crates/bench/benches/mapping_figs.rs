//! Benchmarks for the mapping study, one group per figure (Figs. 1–6).
//!
//! Each group first regenerates the figure's data rows in smoke mode
//! (printed to stderr) and then times the simulation kernel the figure
//! is built from, at reduced scale so `cargo bench` stays fast.

use agentnet_bench::{bench_mapping_graph, print_figure_rows, run_mapping};
use agentnet_core::mapping::MappingConfig;
use agentnet_core::policy::MappingPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fig1_single_agents(c: &mut Criterion) {
    print_figure_rows("fig1");
    let graph = bench_mapping_graph();
    let mut group = c.benchmark_group("fig1_single_agent");
    group.sample_size(10);
    for (name, policy) in
        [("random", MappingPolicy::Random), ("conscientious", MappingPolicy::Conscientious)]
    {
        let config = MappingConfig::new(policy, 1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            if let Err(e) = run_mapping(&graph, cfg, 1) {
                eprintln!("skipping bench: {e}");
                return;
            }
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_mapping(&graph, cfg, seed).expect("probed config finishes"))
            });
        });
    }
    group.finish();
}

fn fig2_single_stigmergic(c: &mut Criterion) {
    print_figure_rows("fig2");
    let graph = bench_mapping_graph();
    let mut group = c.benchmark_group("fig2_single_stigmergic");
    group.sample_size(10);
    for (name, policy) in
        [("random", MappingPolicy::Random), ("conscientious", MappingPolicy::Conscientious)]
    {
        let config = MappingConfig::new(policy, 1).stigmergic(true);
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            if let Err(e) = run_mapping(&graph, cfg, 1) {
                eprintln!("skipping bench: {e}");
                return;
            }
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_mapping(&graph, cfg, seed).expect("probed config finishes"))
            });
        });
    }
    group.finish();
}

fn fig3_fig4_teams(c: &mut Criterion) {
    print_figure_rows("fig3");
    print_figure_rows("fig4");
    let graph = bench_mapping_graph();
    let mut group = c.benchmark_group("fig3_fig4_team_of_15");
    group.sample_size(10);
    for (name, stig) in [("minar", false), ("stigmergic", true)] {
        let config = MappingConfig::new(MappingPolicy::Conscientious, 15).stigmergic(stig);
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            if let Err(e) = run_mapping(&graph, cfg, 1) {
                eprintln!("skipping bench: {e}");
                return;
            }
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_mapping(&graph, cfg, seed).expect("probed config finishes"))
            });
        });
    }
    group.finish();
}

fn fig5_fig6_population_sweep(c: &mut Criterion) {
    print_figure_rows("fig5");
    print_figure_rows("fig6");
    let graph = bench_mapping_graph();
    let mut group = c.benchmark_group("fig5_fig6_population_kernel");
    group.sample_size(10);
    for pop in [5usize, 20] {
        for (name, policy, stig) in [
            ("minar_super", MappingPolicy::SuperConscientious, false),
            ("stig_super", MappingPolicy::SuperConscientious, true),
        ] {
            let config = MappingConfig::new(policy, pop).stigmergic(stig);
            group.bench_with_input(BenchmarkId::new(name, pop), &config, |b, cfg| {
                if let Err(e) = run_mapping(&graph, cfg, 1) {
                    eprintln!("skipping bench: {e}");
                    return;
                }
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_mapping(&graph, cfg, seed).expect("probed config finishes"))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    mapping_figs,
    fig1_single_agents,
    fig2_single_stigmergic,
    fig3_fig4_teams,
    fig5_fig6_population_sweep
);
criterion_main!(mapping_figs);
