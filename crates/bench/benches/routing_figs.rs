//! Benchmarks for the routing study, one group per figure (Figs. 7–11)
//! plus the stigmergic-routing extension.
//!
//! Each group first regenerates the figure's data rows in smoke mode
//! (printed to stderr) and then times the simulation kernel at reduced
//! scale (100-node network, 100 steps).

use agentnet_bench::{bench_routing_network, print_figure_rows, run_routing};
use agentnet_core::policy::RoutingPolicy;
use agentnet_core::routing::RoutingConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BENCH_STEPS: u64 = 100;

fn fig7_connectivity_over_time(c: &mut Criterion) {
    print_figure_rows("fig7");
    let net = bench_routing_network();
    let config = RoutingConfig::new(RoutingPolicy::OldestNode, 40);
    let mut group = c.benchmark_group("fig7_oldest_node_run");
    group.sample_size(10);
    group.bench_function("100_nodes_100_steps", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_routing(&net, &config, seed, BENCH_STEPS))
        });
    });
    group.finish();
}

fn fig8_population(c: &mut Criterion) {
    print_figure_rows("fig8");
    let net = bench_routing_network();
    let mut group = c.benchmark_group("fig8_population_kernel");
    group.sample_size(10);
    for pop in [10usize, 40, 80] {
        let config = RoutingConfig::new(RoutingPolicy::OldestNode, pop);
        group.bench_with_input(BenchmarkId::from_parameter(pop), &config, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_routing(&net, cfg, seed, BENCH_STEPS))
            });
        });
    }
    group.finish();
}

fn fig9_history(c: &mut Criterion) {
    print_figure_rows("fig9");
    let net = bench_routing_network();
    let mut group = c.benchmark_group("fig9_history_kernel");
    group.sample_size(10);
    for h in [5usize, 40] {
        let config = RoutingConfig::new(RoutingPolicy::OldestNode, 40).history_size(h);
        group.bench_with_input(BenchmarkId::from_parameter(h), &config, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_routing(&net, cfg, seed, BENCH_STEPS))
            });
        });
    }
    group.finish();
}

fn fig10_fig11_communication(c: &mut Criterion) {
    print_figure_rows("fig10");
    print_figure_rows("fig11");
    let net = bench_routing_network();
    let mut group = c.benchmark_group("fig10_fig11_communication_kernel");
    group.sample_size(10);
    let variants: [(&str, RoutingConfig); 4] = [
        ("random", RoutingConfig::new(RoutingPolicy::Random, 40)),
        ("random_comm", RoutingConfig::new(RoutingPolicy::Random, 40).communication(true)),
        ("oldest", RoutingConfig::new(RoutingPolicy::OldestNode, 40)),
        ("oldest_comm", RoutingConfig::new(RoutingPolicy::OldestNode, 40).communication(true)),
    ];
    for (name, config) in &variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), config, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_routing(&net, cfg, seed, BENCH_STEPS))
            });
        });
    }
    group.finish();
}

fn extensions(c: &mut Criterion) {
    print_figure_rows("ext-stigroute");
    print_figure_rows("ext-tiebreak");
    print_figure_rows("ext-degradation");
    let net = bench_routing_network();
    let config =
        RoutingConfig::new(RoutingPolicy::OldestNode, 40).communication(true).stigmergic(true);
    let mut group = c.benchmark_group("ext_stigmergic_routing_kernel");
    group.sample_size(10);
    group.bench_function("oldest_comm_stig", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_routing(&net, &config, seed, BENCH_STEPS))
        });
    });
    group.finish();
}

criterion_group!(
    routing_figs,
    fig7_connectivity_over_time,
    fig8_population,
    fig9_history,
    fig10_fig11_communication,
    extensions
);
criterion_main!(routing_figs);
