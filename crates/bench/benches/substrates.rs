//! Micro-benchmarks of the substrate crates: graph algorithms, the
//! wireless link rebuild, and the agent-knowledge data structures.

use agentnet_baselines::{AcoConfig, AcoSim, DvConfig, DvSim};
use agentnet_bench::bench_routing_network;
use agentnet_core::knowledge::EdgeSet;
use agentnet_graph::connectivity::{reaches_any, strongly_connected_components};
use agentnet_graph::generators::GeometricConfig;
use agentnet_graph::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometric_generation");
    group.sample_size(10);
    for n in [100usize, 300] {
        let cfg = GeometricConfig::new(n, n * 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(cfg.generate(seed).map(|net| net.graph.edge_count()).ok())
            });
        });
    }
    group.finish();
}

fn graph_algorithms(c: &mut Criterion) {
    let net = GeometricConfig::new(300, 2164).generate(42).unwrap();
    let gateways: Vec<NodeId> = (0..12).map(NodeId::new).collect();
    let mut group = c.benchmark_group("graph_algorithms");
    group.bench_function("tarjan_scc_300n", |b| {
        b.iter(|| black_box(strongly_connected_components(&net.graph).len()))
    });
    group.bench_function("reaches_any_300n_12gw", |b| {
        b.iter(|| black_box(reaches_any(&net.graph, &gateways)))
    });
    group.finish();
}

fn wireless_link_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("wireless_advance");
    group.sample_size(20);
    group.bench_function("advance_100_nodes", |b| {
        let mut net = bench_routing_network();
        b.iter(|| {
            net.advance();
            black_box(net.links().edge_count())
        });
    });
    group.finish();
}

fn knowledge_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_set");
    let n = 300usize;
    group.bench_function("insert_contains_300n", |b| {
        b.iter(|| {
            let mut s = EdgeSet::new(n);
            for i in 0..n {
                s.insert(NodeId::new(i), NodeId::new((i + 7) % n));
            }
            black_box(s.len())
        })
    });
    group.bench_function("merge_300n", |b| {
        let mut a = EdgeSet::new(n);
        let mut bb = EdgeSet::new(n);
        for i in 0..n {
            a.insert(NodeId::new(i), NodeId::new((i + 3) % n));
            bb.insert(NodeId::new(i), NodeId::new((i + 5) % n));
        }
        b.iter(|| {
            let mut m = a.clone();
            m.merge(&bb);
            black_box(m.len())
        })
    });
    group.finish();
}

fn baseline_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_routing");
    group.sample_size(10);
    group.bench_function("aco_100_nodes_50_steps", |b| {
        let net = bench_routing_network();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = AcoSim::new(net.clone(), AcoConfig::new(30), seed).unwrap();
            black_box(sim.run(50).values().last().copied())
        });
    });
    group.bench_function("dv_100_nodes_50_steps", |b| {
        let net = bench_routing_network();
        b.iter(|| {
            let mut sim = DvSim::new(net.clone(), DvConfig::default()).unwrap();
            black_box(sim.run(50).values().last().copied())
        });
    });
    group.finish();
}

fn executor_scheduling(c: &mut Criterion) {
    use agentnet_engine::cache::ResultCache;
    use agentnet_engine::rng::SeedSequence;
    use agentnet_engine::Executor;
    use rand::RngExt;

    // A cell heavy enough that scheduling overhead is visible but
    // speedup from extra workers still dominates on multicore.
    let cell = |i: usize, seeds: SeedSequence| -> f64 {
        let mut rng = seeds.rng();
        (0..20_000).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() + i as f64
    };
    let seeds = SeedSequence::new(7).child(1);

    let mut group = c.benchmark_group("executor");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("run_cells_32", jobs), &jobs, |b, &jobs| {
            let exec = Executor::new(jobs);
            b.iter(|| black_box(exec.run_cells("bench", 0, 32, seeds, cell).len()));
        });
    }
    group.bench_function("run_cells_32_cached", |b| {
        let root =
            std::env::temp_dir().join(format!("agentnet-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let exec = Executor::new(1).with_cache(ResultCache::new(&root), true);
        b.iter(|| black_box(exec.run_cells("bench", 0, 32, seeds, cell).len()));
        let _ = std::fs::remove_dir_all(&root);
    });
    group.finish();
}

criterion_group!(
    substrates,
    graph_generation,
    graph_algorithms,
    wireless_link_rebuild,
    knowledge_structures,
    baseline_kernels,
    executor_scheduling
);
criterion_main!(substrates);
