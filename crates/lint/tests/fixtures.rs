//! Fixture-based end-to-end tests for the lint engine.
//!
//! Each fixture under `tests/fixtures/` is linted through the same
//! `lint_source` entry point `repro lint` uses, with a synthetic
//! workspace-relative path that puts it in the rule's scope. The
//! assertions pin the exact `file:line rule` output so a rule that
//! drifts (wrong line attribution, lost finding, spurious finding)
//! fails loudly here before it reaches the workspace gate.

use std::path::Path;

use agentnet_lint::baseline;
use agentnet_lint::{find_workspace_root, lint_source, run_workspace, Finding};

/// Lints `src` under the synthetic path and returns `(line, rule)`
/// pairs in engine (sorted) order.
fn lines_and_rules(rel: &str, src: &str) -> Vec<(u32, &'static str)> {
    lint_source(rel, src).into_iter().map(|f| (f.line, f.rule)).collect()
}

fn rendered(rel: &str, src: &str) -> Vec<String> {
    lint_source(rel, src).iter().map(Finding::to_string).collect()
}

#[test]
fn unordered_iteration_fixture() {
    let src = include_str!("fixtures/unordered_iteration.rs");
    let rel = "crates/core/src/fixture.rs";
    assert_eq!(
        lines_and_rules(rel, src),
        [
            (6, "no-unordered-iteration"),  // `.iter()` on the HashMap param
            (6, "no-unordered-iteration"),  // `for` over the same expression
            (13, "no-unordered-iteration"), // `.iter()` on the HashSet param
        ],
        "{:#?}",
        lint_source(rel, src)
    );
    // Out of scope, the same source is clean.
    assert!(lint_source("crates/engine/src/fixture.rs", src).is_empty());
}

#[test]
fn ambient_entropy_fixture() {
    let src = include_str!("fixtures/ambient_entropy.rs");
    let rel = "crates/core/src/fixture.rs";
    assert_eq!(
        lines_and_rules(rel, src),
        [(3, "no-ambient-entropy"), (8, "no-ambient-entropy")],
        "{:#?}",
        lint_source(rel, src)
    );
    // The sanctioned timing modules are exempt.
    assert!(lint_source("crates/engine/src/perf.rs", src).is_empty());
}

#[test]
fn panic_in_kernel_fixture() {
    let src = include_str!("fixtures/panic_in_kernel.rs");
    // Kernel scope is an explicit file list; borrow a real kernel path.
    let rel = "crates/core/src/policy.rs";
    assert_eq!(
        lines_and_rules(rel, src),
        [
            (3, "no-panic-in-kernel"),  // v[0]
            (7, "no-panic-in-kernel"),  // .unwrap()
            (11, "no-panic-in-kernel"), // .expect(...)
        ],
        "{:#?}",
        lint_source(rel, src)
    );
    assert!(lint_source("crates/engine/src/fixture.rs", src).is_empty());
}

#[test]
fn alloc_in_hot_path_fixture() {
    let src = include_str!("fixtures/alloc_in_hot_path.rs");
    // The rule keys off #[agentnet::hot_path], not the path.
    let rel = "crates/core/src/fixture.rs";
    let findings = lint_source(rel, src);
    assert_eq!(
        lines_and_rules(rel, src),
        [(7, "no-alloc-in-hot-path")], // `.to_vec()` inside `hot`; `cold` is unmarked
        "{findings:#?}"
    );
    assert!(findings[0].message.contains("`hot`"), "{findings:#?}");
}

#[test]
fn lossy_cast_fixture() {
    let src = include_str!("fixtures/lossy_cast.rs");
    let rel = "crates/graph/src/fixture.rs";
    assert_eq!(
        lines_and_rules(rel, src),
        [(3, "no-lossy-cast"), (7, "no-lossy-cast")],
        "{:#?}",
        lint_source(rel, src)
    );
    assert!(lint_source("crates/engine/src/fixture.rs", src).is_empty());
}

#[test]
fn relaxed_atomics_fixture() {
    let src = include_str!("fixtures/relaxed_atomics.rs");
    let rel = "crates/engine/src/fixture.rs";
    assert_eq!(
        lines_and_rules(rel, src),
        [
            (4, "no-relaxed-atomics"), // store(.., Relaxed)
            (8, "no-relaxed-atomics"), // fetch_add(.., AcqRel)
                                       // line 18 is Relaxed too, but carries an allow + why.
        ],
        "{:#?}",
        lint_source(rel, src)
    );
    // The loom-proven sync core is the one sanctioned home.
    assert!(lint_source("crates/serve/src/cell.rs", src).is_empty());
}

#[test]
fn lock_in_kernel_fixture() {
    let src = include_str!("fixtures/lock_in_kernel.rs");
    // Kernel scope is the shared file list; borrow a real kernel path.
    let rel = "crates/core/src/mapping.rs";
    assert_eq!(
        lines_and_rules(rel, src),
        [
            (1, "no-lock-in-kernel"),  // use std::sync::Mutex
            (4, "no-lock-in-kernel"),  // Mutex<u64> field
            (8, "no-lock-in-kernel"),  // .lock() in kernel fn
            (17, "no-lock-in-kernel"), // .lock() in hot-path fn
        ],
        "{:#?}",
        lint_source(rel, src)
    );
    // Outside the kernel list, only the #[agentnet::hot_path] body counts.
    assert_eq!(
        lines_and_rules("crates/engine/src/fixture.rs", src),
        [(17, "no-lock-in-kernel")],
        "{:#?}",
        lint_source("crates/engine/src/fixture.rs", src)
    );
}

#[test]
fn bare_spawn_fixture() {
    let src = include_str!("fixtures/bare_spawn.rs");
    let rel = "crates/experiments/src/fixture.rs";
    assert_eq!(
        lines_and_rules(rel, src),
        [
            (2, "no-bare-spawn"), // std::thread::spawn
            (3, "no-bare-spawn"), // std::thread::Builder
                                  // `structured` uses std::thread::scope + s.spawn: clean.
        ],
        "{:#?}",
        lint_source(rel, src)
    );
    // The serve worker module owns its threads (named, joined on shutdown).
    assert!(lint_source("crates/serve/src/server.rs", src).is_empty());
}

/// The output contract consumed by CI logs and the baseline:
/// `file:line rule message`, stably sorted.
#[test]
fn output_format_is_file_line_rule_message() {
    let src = include_str!("fixtures/ambient_entropy.rs");
    let out = rendered("crates/core/src/fixture.rs", src);
    assert_eq!(
        out[0],
        "crates/core/src/fixture.rs:3 no-ambient-entropy `thread_rng` is unseeded; \
         route randomness/time through engine::rng::SeedSequence \
         (timing belongs in engine::perf)"
    );
    let mut sorted = out.clone();
    sorted.sort();
    assert_eq!(out, sorted, "engine output must be stably sorted");
}

/// An `agentlint::allow` directive suppresses a finding on its own line
/// and on the line directly below — and nothing further.
#[test]
fn allow_directive_suppresses_next_line_only() {
    let rel = "crates/core/src/fixture.rs";
    let suppressed = "fn f() {\n\
                      \x20   // agentlint::allow(no-ambient-entropy)\n\
                      \x20   let t = std::time::Instant::now();\n\
                      \x20   let _ = t;\n\
                      }\n";
    assert!(lint_source(rel, suppressed).is_empty());
    let too_far = "fn f() {\n\
                   \x20   // agentlint::allow(no-ambient-entropy)\n\
                   \x20   let x = 1;\n\
                   \x20   let t = std::time::Instant::now();\n\
                   \x20   let _ = (x, t);\n\
                   }\n";
    assert_eq!(lines_and_rules(rel, too_far), [(4, "no-ambient-entropy")]);
    let wrong_rule = "fn f() {\n\
                      \x20   // agentlint::allow(no-lossy-cast)\n\
                      \x20   let t = std::time::Instant::now();\n\
                      \x20   let _ = t;\n\
                      }\n";
    assert_eq!(lines_and_rules(rel, wrong_rule), [(3, "no-ambient-entropy")]);
}

/// Self-check: the committed tree is clean against the committed
/// baseline — no new findings, no stale entries. This is the same
/// comparison `repro lint` exits non-zero on, so a PR that introduces a
/// hazard (or fixes one without regenerating `lint.toml`) fails the
/// test suite too, not just the CI lint job.
#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let findings = run_workspace(&root).expect("workspace sources are readable");
    let entries = baseline::load(&root.join("lint.toml")).expect("lint.toml parses");
    let diff = baseline::diff(&findings, &entries);
    assert!(
        diff.new.is_empty(),
        "non-baselined findings:\n{}",
        diff.new.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries (regenerate with `repro lint --baseline`):\n{}",
        diff.stale
            .iter()
            .map(|e| format!("  {}:{} {}\n", e.file, e.line, e.rule))
            .collect::<String>()
    );
}
