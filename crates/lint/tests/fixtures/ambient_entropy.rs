// Fixture: ambient randomness and wall-clock reads.
pub fn unseeded() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}
