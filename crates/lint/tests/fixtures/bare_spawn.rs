pub fn leaky() -> u64 {
    let h = std::thread::spawn(|| 1u64);
    let b = std::thread::Builder::new().name("w".into());
    drop(b);
    h.join().unwrap_or(0)
}

pub fn structured() -> u64 {
    std::thread::scope(|s| {
        let t = s.spawn(|| 2u64);
        t.join().unwrap_or(0)
    })
}
