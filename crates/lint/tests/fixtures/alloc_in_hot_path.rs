// Fixture: allocation inside a marked hot path. Scratch growth
// (push/extend/clear) is legal; construction and copying are not.
#[agentnet::hot_path]
pub fn hot(xs: &[u32], scratch: &mut Vec<u32>) -> Vec<u32> {
    scratch.clear();
    scratch.extend(xs.iter().copied());
    xs.to_vec()
}

pub fn cold(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}
