use std::sync::Mutex;

pub struct Shared {
    inner: Mutex<u64>,
}

pub fn kernel_read(s: &Shared) -> u64 {
    if let Ok(g) = s.inner.lock() {
        *g
    } else {
        0
    }
}

#[agentnet::hot_path]
pub fn hot(s: &Shared) -> u64 {
    if let Ok(g) = s.inner.lock() {
        *g
    } else {
        0
    }
}

pub fn cold(s: &Shared) -> u64 {
    kernel_read(s)
}
