// Fixture: panic paths inside a simulation kernel module.
pub fn first(v: &[u32]) -> u32 {
    v[0]
}

pub fn must(o: Option<u32>) -> u32 {
    o.unwrap()
}

pub fn claimed(o: Option<u32>) -> u32 {
    o.expect("always present")
}
