use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::Relaxed);
}

pub fn bump(flag: &AtomicU64) -> u64 {
    flag.fetch_add(1, std::sync::atomic::Ordering::AcqRel)
}

pub fn sound(flag: &AtomicU64) -> u64 {
    flag.store(2, Ordering::Release);
    flag.load(Ordering::Acquire)
}

pub fn justified(flag: &AtomicU64) -> u64 {
    // Ticket counter, atomicity only. agentlint::allow(no-relaxed-atomics)
    flag.fetch_add(1, Ordering::Relaxed)
}
