// Fixture: order-sensitive iteration over hash containers.
use std::collections::{HashMap, HashSet};

pub fn sum_values(m: &HashMap<u32, u32>) -> u32 {
    let mut sum = 0;
    for (_, v) in m.iter() {
        sum += v;
    }
    sum
}

pub fn first_key(s: &HashSet<u32>) -> Option<u32> {
    s.iter().next().copied()
}
