// Fixture: bare float<->int `as` casts.
pub fn shrink(x: f64) -> usize {
    x as usize
}

pub fn widen(n: usize) -> f64 {
    n as f64
}
