//! `agentlint` — the workspace static-analysis pass.
//!
//! The reproduction's guarantees (resumable caching, metamorphic
//! validation, byte-identical reports) all rest on determinism and on
//! panic-free, allocation-free simulation kernels. PRs 1–3 established
//! those properties by convention; this crate turns them into
//! machine-checked rules that run as `repro lint` and in CI:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-unordered-iteration` | no hasher-ordered iteration in result-bearing crates |
//! | `no-ambient-entropy` | all randomness/time flows through `engine::rng` seeds |
//! | `no-panic-in-kernel` | step-path modules cannot abort mid-run |
//! | `no-alloc-in-hot-path` | `#[agentnet::hot_path]` kernels stay allocation-free |
//! | `no-lossy-cast` | float<->int `as` casts live only in clamped helpers |
//! | `no-relaxed-atomics` | weak atomic orderings stay in the loom-proven sync core |
//! | `no-lock-in-kernel` | kernels stay lock-free; shared reads go through the snapshot cell |
//! | `no-bare-spawn` | threads are scoped or owned by the serve worker set |
//!
//! Because the workspace builds fully offline, the analyzer is built on
//! a small hand-rolled lexer ([`lexer`]) rather than `syn`; rules match
//! token patterns with just enough structure (test spans, attribute
//! spans, hot-path bodies) to stay precise on this codebase.
//!
//! Suppression is two-tier: a `// agentlint::allow(<rule>) — why`
//! comment on (or directly above) the offending line for audited
//! exceptions, and a committed `lint.toml` baseline for grandfathered
//! debt. The gate fails on findings missing from the baseline *and* on
//! stale baseline entries, so the baseline can only shrink.

pub mod baseline;
pub mod context;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{find_workspace_root, lint_source, run_workspace, workspace_files};
pub use rules::{all_rules, Finding, Rule};
