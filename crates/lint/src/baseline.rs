//! The committed `lint.toml` baseline.
//!
//! A baseline entry grandfathers one existing finding, keyed by
//! `(file, line, rule)`. CI fails on any finding *not* in the baseline
//! (a regression) and on any baseline entry that no longer matches a
//! finding (stale — the debt was paid or the line moved, so the file
//! must be regenerated with `repro lint --baseline`). The format is the
//! small `[[finding]]` array-of-tables subset of TOML; the hand-rolled
//! parser below reads exactly what [`save`] writes.

use crate::rules::Finding;
use std::io;
use std::path::Path;

/// One grandfathered finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl std::fmt::Display for BaselineEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// Baseline comparison result.
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings not grandfathered by the baseline.
    pub new: Vec<Finding>,
    /// Baseline entries that no longer match any finding.
    pub stale: Vec<BaselineEntry>,
}

/// Loads a baseline file. A missing file is an empty baseline.
pub fn load(path: &Path) -> io::Result<Vec<BaselineEntry>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(parse(&text))
}

/// Parses the `[[finding]]` subset of TOML written by [`save`].
pub fn parse(text: &str) -> Vec<BaselineEntry> {
    let mut entries = Vec::new();
    let mut current: Option<BaselineEntry> = None;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[finding]]" {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            current = Some(BaselineEntry {
                file: String::new(),
                line: 0,
                rule: String::new(),
                message: String::new(),
            });
            continue;
        }
        let Some(entry) = current.as_mut() else { continue };
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        match key {
            "file" => entry.file = unquote(value),
            "rule" => entry.rule = unquote(value),
            "message" => entry.message = unquote(value),
            "line" => entry.line = value.parse().unwrap_or(0),
            _ => {}
        }
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    entries
}

/// Serializes findings as a baseline file.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("# agentlint baseline — grandfathered findings.\n");
    out.push_str("# Regenerate with `repro lint --baseline`. CI fails on findings not\n");
    out.push_str("# listed here AND on stale entries that no longer match.\n");
    for f in findings {
        out.push_str("\n[[finding]]\n");
        out.push_str(&format!("file = {}\n", quote(&f.file)));
        out.push_str(&format!("line = {}\n", f.line));
        out.push_str(&format!("rule = {}\n", quote(f.rule)));
        out.push_str(&format!("message = {}\n", quote(&f.message)));
    }
    out
}

/// Writes findings as the baseline at `path`.
pub fn save(path: &Path, findings: &[Finding]) -> io::Result<()> {
    std::fs::write(path, render(findings))
}

/// Compares current findings against a baseline.
pub fn diff(findings: &[Finding], baseline: &[BaselineEntry]) -> Diff {
    let key = |file: &str, line: u32, rule: &str| format!("{file}:{line}:{rule}");
    let baseline_keys: Vec<String> =
        baseline.iter().map(|e| key(&e.file, e.line, &e.rule)).collect();
    let finding_keys: Vec<String> = findings.iter().map(|f| key(&f.file, f.line, f.rule)).collect();
    Diff {
        new: findings
            .iter()
            .zip(&finding_keys)
            .filter(|(_, k)| !baseline_keys.contains(k))
            .map(|(f, _)| f.clone())
            .collect(),
        stale: baseline
            .iter()
            .zip(&baseline_keys)
            .filter(|(_, k)| !finding_keys.contains(k))
            .map(|(e, _)| e.clone())
            .collect(),
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn unquote(s: &str) -> String {
    let inner = s.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(s);
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &'static str, msg: &str) -> Finding {
        Finding { file: file.into(), line, rule, message: msg.into() }
    }

    #[test]
    fn roundtrip() {
        let fs = vec![
            finding("crates/a/src/x.rs", 3, "no-lossy-cast", "int -> `f64` cast"),
            finding("crates/b/src/y.rs", 7, "no-ambient-entropy", "he said \"now\""),
        ];
        let text = render(&fs);
        let parsed = parse(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].file, "crates/a/src/x.rs");
        assert_eq!(parsed[0].line, 3);
        assert_eq!(parsed[0].rule, "no-lossy-cast");
        assert_eq!(parsed[1].message, "he said \"now\"");
    }

    #[test]
    fn diff_reports_new_and_stale() {
        let committed = vec![finding("a.rs", 1, "r", "old"), finding("b.rs", 2, "r", "gone")];
        let baseline = parse(&render(&committed));
        let now = vec![finding("a.rs", 1, "r", "old"), finding("c.rs", 9, "r", "fresh")];
        let d = diff(&now, &baseline);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].file, "c.rs");
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].file, "b.rs");
    }

    #[test]
    fn missing_file_is_empty() {
        let entries = load(Path::new("/nonexistent/lint.toml")).expect("missing file is ok");
        assert!(entries.is_empty());
    }
}
