//! `no-relaxed-atomics`: weak atomic orderings are confined to the
//! loom-proven sync core.
//!
//! The serve layer's publish/load/stop protocol is exhaustively model
//! checked (`crates/serve/tests/loom.rs`), and every `Ordering::` in
//! that protocol carries an invariant comment naming the edge it
//! provides. An `Ordering::Relaxed` (no cross-thread visibility) or
//! `Ordering::AcqRel` (a combined pairing that deserves an argument)
//! anywhere *else* is either a latent reordering bug or an undocumented
//! cleverness — both of which this rule makes explicit: use the plain
//! Acquire/Release pair, or keep the weak ordering behind an
//! `agentlint::allow` with a justification (e.g. a ticket counter where
//! only atomicity matters and a join provides the real barrier).

use crate::context::FileContext;
use crate::rules::{ident_at, path_sep_at, Finding, Rule};

pub struct RelaxedAtomics;

/// The sanctioned sync core: the snapshot cell (every ordering proven
/// by `tests/loom.rs`) and the `std`/`loom` shim it is built on.
const SYNC_FILES: &[&str] = &["crates/serve/src/cell.rs", "crates/serve/src/sync.rs"];

impl Rule for RelaxedAtomics {
    fn name(&self) -> &'static str {
        "no-relaxed-atomics"
    }

    fn description(&self) -> &'static str {
        "Ordering::Relaxed / Ordering::AcqRel outside the loom-proven sync core (serve cell + shim)"
    }

    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>) {
        if SYNC_FILES.contains(&ctx.rel_path.as_str()) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_test(i) {
                continue;
            }
            if !(ident_at(toks, i, "Ordering") && path_sep_at(toks, i + 1)) {
                continue;
            }
            let hit = if ident_at(toks, i + 3, "Relaxed") {
                Some("`Ordering::Relaxed` gives no cross-thread visibility")
            } else if ident_at(toks, i + 3, "AcqRel") {
                Some("`Ordering::AcqRel` combines both directions in one op")
            } else {
                None
            };
            if let Some(what) = hit {
                findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    rule: self.name(),
                    message: format!(
                        "{what}; use the plain Acquire/Release pair with an invariant comment, or justify with agentlint::allow"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::new(rel, src);
        let mut f = Vec::new();
        RelaxedAtomics.check(&ctx, &mut f);
        f
    }

    #[test]
    fn flags_relaxed_and_acqrel() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n\
                   \x20   a.store(1, Ordering::Relaxed);\n\
                   \x20   a.fetch_add(1, std::sync::atomic::Ordering::AcqRel)\n\
                   }\n";
        let f = run("crates/engine/src/x.rs", src);
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, [2, 3], "{f:?}");
    }

    #[test]
    fn acquire_release_seqcst_are_fine() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n\
                   \x20   a.store(1, Ordering::Release);\n\
                   \x20   a.fetch_add(1, Ordering::SeqCst);\n\
                   \x20   a.load(Ordering::Acquire)\n\
                   }\n";
        assert!(run("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn sync_core_is_exempt() {
        let src = "fn f(a: &AtomicU64) { a.store(1, Ordering::Relaxed); }\n";
        assert!(run("crates/serve/src/cell.rs", src).is_empty());
        assert!(run("crates/serve/src/sync.rs", src).is_empty());
        assert!(!run("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU64) { a.store(1, Ordering::Relaxed); }\n}\n";
        assert!(run("crates/engine/src/x.rs", src).is_empty());
    }
}
