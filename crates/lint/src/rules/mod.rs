//! The rule registry and shared matching helpers.
//!
//! Each rule scans a [`FileContext`]'s token stream and pushes
//! [`Finding`]s. Rules do not apply `agentlint::allow` suppression or
//! baseline filtering themselves — the engine does that centrally — but
//! they are responsible for skipping `#[cfg(test)]` spans, since only
//! they know which token produced a finding.

use crate::context::FileContext;
use crate::lexer::{Tok, TokKind};

mod alloc_in_hot_path;
mod ambient_entropy;
mod bare_spawn;
mod lock_in_kernel;
mod lossy_cast;
mod panic_in_kernel;
mod relaxed_atomics;
mod unordered_iteration;

/// The kernel modules: everything on the per-step path of
/// `WirelessNetwork::advance`, `MappingSim::step`, and the protocol-zoo
/// step loops (`RoutingSim`, `StigRouteSim`, `AntNetSim`, `FloodSim`).
/// Shared by `no-panic-in-kernel` and `no-lock-in-kernel` so the two
/// rules can never disagree about what "the kernel" is.
pub(crate) const KERNEL_FILES: &[&str] = &[
    "crates/radio/src/network.rs",
    "crates/radio/src/spatial.rs",
    "crates/core/src/comm.rs",
    "crates/core/src/policy.rs",
    "crates/core/src/mapping.rs",
    "crates/core/src/routing/sim.rs",
    "crates/core/src/routing/index.rs",
    "crates/core/src/routing/stigroute.rs",
    "crates/core/src/routing/antnet.rs",
    "crates/baselines/src/flooding.rs",
];

/// One lint finding, printed as `file:line rule message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule name (kebab-case).
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// A lint rule.
pub trait Rule {
    /// Kebab-case rule name used in output, allow directives, and the
    /// baseline.
    fn name(&self) -> &'static str;
    /// One-line description for `repro lint --rules`.
    fn description(&self) -> &'static str;
    /// Scans `ctx` and appends findings.
    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>);
}

/// All registered rules, in output order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(unordered_iteration::UnorderedIteration),
        Box::new(ambient_entropy::AmbientEntropy),
        Box::new(panic_in_kernel::PanicInKernel),
        Box::new(alloc_in_hot_path::AllocInHotPath),
        Box::new(lossy_cast::LossyCast),
        Box::new(relaxed_atomics::RelaxedAtomics),
        Box::new(lock_in_kernel::LockInKernel),
        Box::new(bare_spawn::BareSpawn),
    ]
}

/// True if the file lives under any of the given workspace-relative
/// directory prefixes.
pub(crate) fn path_under(ctx: &FileContext, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| ctx.rel_path.starts_with(p))
}

/// True if token `i` is the identifier `s`.
pub(crate) fn ident_at(tokens: &[Tok], i: usize, s: &str) -> bool {
    tokens.get(i).map(|t| t.is_ident(s)).unwrap_or(false)
}

/// True if token `i` is the punctuation char `c`.
pub(crate) fn punct_at(tokens: &[Tok], i: usize, c: char) -> bool {
    tokens.get(i).map(|t| t.is_punct(c)).unwrap_or(false)
}

/// True if tokens `i, i+1` spell `::`.
pub(crate) fn path_sep_at(tokens: &[Tok], i: usize) -> bool {
    punct_at(tokens, i, ':') && punct_at(tokens, i + 1, ':')
}

/// True if token `i` is a method call `.name(`: `.` at `i-1`, ident at
/// `i`, `(` or `::` (turbofish) at `i+1`.
pub(crate) fn method_call_at(tokens: &[Tok], i: usize, name: &str) -> bool {
    i > 0
        && punct_at(tokens, i - 1, '.')
        && ident_at(tokens, i, name)
        && (punct_at(tokens, i + 1, '(') || path_sep_at(tokens, i + 1))
}

/// Walks back from a closing `)`/`]` at `close` to its matching opener.
/// Returns the opener's index (or 0 on imbalance).
pub(crate) fn open_of(tokens: &[Tok], close: usize) -> usize {
    let mut depth = 0i64;
    let mut i = close;
    loop {
        if let TokKind::Punct = tokens[i].kind {
            match tokens[i].text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}
