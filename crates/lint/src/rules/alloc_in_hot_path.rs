//! `no-alloc-in-hot-path`: functions marked `#[agentnet::hot_path]` are
//! the kernels the counting-allocator integration test proves
//! allocation-free in steady state; this rule enforces the property at
//! review time, file by file, instead of only through one end-to-end
//! test.
//!
//! Flags constructing calls (`Vec::new`, `with_capacity`, `Box::new`,
//! `vec!`, `format!`, `String::new`, ...) and owning adapters
//! (`.collect()`, `.to_vec()`, `.to_owned()`, `.clone()`) inside a
//! marked body. Growth of pre-warmed scratch (`push`, `extend`,
//! `resize`, `clear`) is deliberately legal: the steady-state contract
//! is "no *new* allocations once warmed", and amortized growth during
//! warm-up is exactly what the scratch-buffer pattern relies on.

use crate::context::FileContext;
use crate::rules::{ident_at, method_call_at, path_sep_at, punct_at, Finding, Rule};

pub struct AllocInHotPath;

/// `Type::ctor` pairs that allocate.
const ALLOC_CTORS: &[&str] =
    &["Vec", "VecDeque", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet"];

const ALLOC_CTOR_FNS: &[&str] = &["new", "with_capacity", "from"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Owning adapters that allocate.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "clone"];

impl Rule for AllocInHotPath {
    fn name(&self) -> &'static str {
        "no-alloc-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "allocating calls inside #[agentnet::hot_path] kernels (scratch growth via push/extend stays legal)"
    }

    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>) {
        let toks = &ctx.tokens;
        for hp in &ctx.hot_paths {
            if ctx.in_test(hp.body.start) {
                continue;
            }
            for i in hp.body.start..hp.body.end.min(toks.len()) {
                let hit: Option<String> = if ALLOC_CTORS.iter().any(|c| ident_at(toks, i, c))
                    && path_sep_at(toks, i + 1)
                    && ALLOC_CTOR_FNS.iter().any(|f| ident_at(toks, i + 3, f))
                {
                    Some(format!("`{}::{}`", toks[i].text, toks[i + 3].text))
                } else if ALLOC_MACROS.iter().any(|m| ident_at(toks, i, m))
                    && punct_at(toks, i + 1, '!')
                {
                    Some(format!("`{}!`", toks[i].text))
                } else if ALLOC_METHODS.iter().any(|m| method_call_at(toks, i, m)) {
                    Some(format!("`.{}()`", toks[i].text))
                } else {
                    None
                };
                if let Some(what) = hit {
                    findings.push(Finding {
                        file: ctx.rel_path.clone(),
                        line: toks[i].line,
                        rule: self.name(),
                        message: format!(
                            "{what} allocates inside #[agentnet::hot_path] fn `{}`; reuse warmed scratch instead",
                            hp.name
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(src: &str) -> Vec<Finding> {
        let ctx = FileContext::new("crates/radio/src/network.rs", src);
        let mut f = Vec::new();
        AllocInHotPath.check(&ctx, &mut f);
        f
    }

    #[test]
    fn flags_allocations_only_inside_marked_fns() {
        let src = "impl S {\n\
                   \x20   #[agentnet::hot_path]\n\
                   \x20   pub fn advance(&mut self) {\n\
                   \x20       let v: Vec<u32> = Vec::new();\n\
                   \x20       let w = vec![0u32; 8];\n\
                   \x20       let c: Vec<u32> = v.iter().copied().collect();\n\
                   \x20       let d = c.clone();\n\
                   \x20       let _ = (w, d);\n\
                   \x20   }\n\
                   \x20   pub fn cold(&mut self) { let _ = Vec::<u32>::new(); }\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 4, "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("`advance`")));
    }

    #[test]
    fn scratch_growth_is_legal() {
        let src = "impl S {\n\
                   \x20   #[agentnet::hot_path]\n\
                   \x20   pub fn advance(&mut self) {\n\
                   \x20       self.queue.clear();\n\
                   \x20       self.queue.push(1);\n\
                   \x20       self.flags.resize(self.n, false);\n\
                   \x20       self.row.extend_from_slice(&[1, 2]);\n\
                   \x20   }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unmarked_functions_are_ignored() {
        let src = "pub fn cold() -> Vec<u32> { vec![1, 2, 3] }\n";
        assert!(run(src).is_empty());
    }
}
