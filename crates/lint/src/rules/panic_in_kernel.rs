//! `no-panic-in-kernel`: the simulation kernels must not abort mid-run.
//!
//! Scope (module-level approximation of "reachable from
//! `WirelessNetwork::advance` and the two sim step loops"): the radio
//! network/spatial modules and the core mapping/routing/policy/comm
//! modules. Flags `.unwrap()`, `.expect(...)`, `panic!`/`unreachable!`/
//! `todo!`/`unimplemented!`, and expression indexing (`x[i]`,
//! `&slice[a..b]`), all of which can panic at runtime. `assert!` /
//! `debug_assert!` invariant checks are deliberately not flagged —
//! failing loudly on a broken invariant is the point; dying on a
//! missing map key is not. Documented-panic accessors keep an
//! `agentlint::allow` with their `# Panics` section.

use crate::context::FileContext;
use crate::lexer::TokKind;
use crate::rules::{punct_at, Finding, Rule, KERNEL_FILES};

pub struct PanicInKernel;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Rule for PanicInKernel {
    fn name(&self) -> &'static str {
        "no-panic-in-kernel"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/indexing in modules on the advance/step hot paths"
    }

    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>) {
        if !KERNEL_FILES.contains(&ctx.rel_path.as_str()) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_test(i) || toks[i].kind != TokKind::Punct && toks[i].kind != TokKind::Ident {
                continue;
            }
            let mut push = |line: u32, message: String| {
                findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line,
                    rule: "no-panic-in-kernel",
                    message,
                });
            };
            if toks[i].kind == TokKind::Ident {
                let name = toks[i].text.as_str();
                if (name == "unwrap" || name == "expect")
                    && i > 0
                    && punct_at(toks, i - 1, '.')
                    && punct_at(toks, i + 1, '(')
                {
                    push(
                        toks[i].line,
                        format!("`.{name}()` can panic on the step path; use get/let-else/`?` and a deterministic fallback"),
                    );
                } else if PANIC_MACROS.contains(&name) && punct_at(toks, i + 1, '!') {
                    push(
                        toks[i].line,
                        format!("`{name}!` aborts the simulation mid-step; return an error or a deterministic fallback"),
                    );
                }
            } else if punct_at(toks, i, '[') && i > 0 {
                let prev = &toks[i - 1];
                let is_index_expr = prev.kind == TokKind::Ident
                    && !is_keyword_before_bracket(&prev.text)
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if is_index_expr {
                    push(
                        toks[i].line,
                        "slice/array indexing can panic out of bounds; use `.get()`/`.get_mut()` or iterate"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `in [..]`, `else [..]`-ish positions).
fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(s, "return" | "in" | "break" | "else" | "match" | "mut" | "dyn" | "as")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::new(rel, src);
        let mut f = Vec::new();
        PanicInKernel.check(&ctx, &mut f);
        f
    }

    #[test]
    fn flags_unwrap_expect_panic_indexing() {
        let src = "fn f(v: &[u32], o: Option<u32>) -> u32 {\n\
                   \x20   let a = o.unwrap();\n\
                   \x20   let b = o.expect(\"msg\");\n\
                   \x20   if a > b { panic!(\"boom\"); }\n\
                   \x20   v[0]\n\
                   }\n";
        let f = run("crates/core/src/policy.rs", src);
        let rules: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(rules, [2, 3, 4, 5], "{f:?}");
    }

    #[test]
    fn asserts_attributes_and_array_types_are_fine() {
        let src = "#[derive(Clone)]\n\
                   struct S { xs: [u64; 4] }\n\
                   fn f(v: &[u32]) -> u32 {\n\
                   \x20   assert!(!v.is_empty());\n\
                   \x20   debug_assert_eq!(v.len(), 4);\n\
                   \x20   let w = vec![0u32; 4];\n\
                   \x20   v.first().copied().unwrap_or(0) + w.len() as u32\n\
                   }\n";
        assert!(run("crates/core/src/policy.rs", src).is_empty());
    }

    #[test]
    fn non_kernel_files_are_out_of_scope() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        assert!(run("crates/engine/src/exec.rs", src).is_empty());
        assert!(!run("crates/core/src/mapping.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(v: &[u32]) -> u32 { v[0] }\n}\n";
        assert!(run("crates/core/src/comm.rs", src).is_empty());
    }
}
