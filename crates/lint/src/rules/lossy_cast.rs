//! `no-lossy-cast`: bare `as` casts between floats and ints silently
//! truncate, saturate, or lose precision.
//!
//! Scope: `radio::spatial` (the float-heavy grid math) and the `graph`
//! crate. Two directions are flagged:
//!
//! * **float → int** (`x.ceil() as usize`): truncating/saturating —
//!   NaN becomes 0 and overflow clamps silently. Detected when the cast
//!   source shows float evidence (a float literal, an `f32`/`f64`
//!   token, a float-producing method such as `ceil`, or a local whose
//!   `let` binding shows the same evidence).
//! * **int → float** (`n as f64`): exact only below 2^53. Flagged
//!   unconditionally unless the source is already a float.
//!
//! Both belong inside small audited helpers (`graph::cast`,
//! `SpatialGrid::cell_index`/`cell_count`) that clamp or document their
//! domain and carry the `agentlint::allow` for the single cast they
//! wrap.

use crate::context::FileContext;
use crate::lexer::{Tok, TokKind};
use crate::rules::{open_of, path_under, punct_at, Finding, Rule};

pub struct LossyCast;

const SCOPE: &[&str] = &["crates/radio/src/spatial.rs", "crates/graph/src/"];

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

const FLOAT_TYPES: &[&str] = &["f32", "f64"];

/// Methods whose result is (almost always) a float in this codebase.
const FLOAT_METHODS: &[&str] =
    &["ceil", "floor", "round", "trunc", "sqrt", "hypot", "powf", "powi", "exp", "ln", "abs"];

impl Rule for LossyCast {
    fn name(&self) -> &'static str {
        "no-lossy-cast"
    }

    fn description(&self) -> &'static str {
        "bare `as` float<->int casts in radio::spatial and graph outside the clamped helpers"
    }

    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>) {
        if !path_under(ctx, SCOPE) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_test(i) || !toks[i].is_ident("as") {
                continue;
            }
            let Some(target) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            let to_int = INT_TYPES.contains(&target.text.as_str());
            let to_float = FLOAT_TYPES.contains(&target.text.as_str());
            if !to_int && !to_float {
                continue;
            }
            let src_float = source_is_float(ctx, i);
            if to_int && src_float {
                findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    rule: self.name(),
                    message: format!(
                        "float -> `{}` `as` cast truncates and saturates silently (NaN becomes 0); use a clamped helper",
                        target.text
                    ),
                });
            } else if to_float && !src_float {
                findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    rule: self.name(),
                    message: format!(
                        "int -> `{}` `as` cast is exact only below 2^53; use graph::cast helpers",
                        target.text
                    ),
                });
            }
        }
    }
}

/// True if the expression ending just before the `as` at `as_idx` shows
/// float evidence.
fn source_is_float(ctx: &FileContext, as_idx: usize) -> bool {
    let toks = &ctx.tokens;
    if as_idx == 0 {
        return false;
    }
    let prev = &toks[as_idx - 1];
    match prev.kind {
        TokKind::Num { is_float } => is_float,
        TokKind::Punct if prev.text == ")" => {
            let open = open_of(toks, as_idx - 1);
            // Method call: `...ceil() as` — check the method name.
            if open >= 2 && punct_at(toks, open - 2, '.') {
                if let Some(m) = toks.get(open - 1) {
                    if FLOAT_METHODS.contains(&m.text.as_str()) {
                        return true;
                    }
                    // Walk the method chain left: `(a / b).ceil().max(1.0) as`
                    // recurses through each `()` group.
                    if m.kind == TokKind::Ident && open >= 3 && punct_at(toks, open - 3, ')') {
                        let inner_open = open_of(toks, open - 3);
                        if span_has_float(toks, inner_open, open - 3)
                            || chain_is_float(ctx, inner_open)
                        {
                            return true;
                        }
                    }
                }
            }
            // Parenthesized expression: float evidence anywhere inside.
            span_has_float(toks, open, as_idx - 1)
        }
        TokKind::Ident => let_binding_is_float(ctx, &prev.text),
        _ => false,
    }
}

/// Float evidence in `toks[start..=end]`: a float literal, an `f32`/
/// `f64` token, or a float-method name.
fn span_has_float(toks: &[Tok], start: usize, end: usize) -> bool {
    toks[start..=end.min(toks.len() - 1)].iter().any(|t| match t.kind {
        TokKind::Num { is_float } => is_float,
        TokKind::Ident => {
            FLOAT_TYPES.contains(&t.text.as_str()) || FLOAT_METHODS.contains(&t.text.as_str())
        }
        _ => false,
    })
}

/// For a `(` at `open` that closes a method-chain group, checks whether
/// the chain's head (`recv.m1().m2(...)`) shows float evidence.
fn chain_is_float(ctx: &FileContext, mut open: usize) -> bool {
    let toks = &ctx.tokens;
    let mut guard = 0usize;
    while guard < 8 {
        guard += 1;
        if open >= 2 && punct_at(toks, open - 2, '.') {
            if let Some(m) = toks.get(open - 1) {
                if FLOAT_METHODS.contains(&m.text.as_str()) {
                    return true;
                }
            }
            if open >= 3 && punct_at(toks, open - 3, ')') {
                let inner = open_of(toks, open - 3);
                if span_has_float(toks, inner, open - 3) {
                    return true;
                }
                open = inner;
                continue;
            }
        }
        break;
    }
    false
}

/// True if `name` has a `let [mut] name = ...;` binding whose tokens
/// show float evidence, or a `name: f32`/`name: f64` annotation
/// (parameter, field, or annotated let) anywhere in this file.
fn let_binding_is_float(ctx: &FileContext, name: &str) -> bool {
    let toks = &ctx.tokens;
    // Annotation form: `name : [&] f32|f64`.
    for i in 0..toks.len() {
        if toks[i].is_ident(name) && punct_at(toks, i + 1, ':') && !punct_at(toks, i + 2, ':') {
            let mut j = i + 2;
            while toks.get(j).map(|t| t.is_punct('&') || t.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            if toks.get(j).map(|t| FLOAT_TYPES.contains(&t.text.as_str())).unwrap_or(false) {
                return true;
            }
        }
    }
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
            j += 1;
        }
        if !toks.get(j).map(|t| t.is_ident(name)).unwrap_or(false) {
            continue;
        }
        // Scan the statement to its `;` for float evidence.
        let mut k = j + 1;
        let mut depth = 0i64;
        while let Some(t) = toks.get(k) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
            }
            if span_has_float(toks, k, k) {
                return true;
            }
            k += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::new(rel, src);
        let mut f = Vec::new();
        LossyCast.check(&ctx, &mut f);
        f
    }

    #[test]
    fn flags_float_to_int_with_method_evidence() {
        let src = "fn f(w: f64, c: f64) -> usize { (w / c).ceil().max(1.0) as usize }\n";
        let f = run("crates/radio/src/spatial.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("truncates"));
    }

    #[test]
    fn flags_float_local_to_int() {
        let src = "fn f(x: f64) -> usize {\n    let raw = x.floor();\n    raw as usize\n}\n";
        let f = run("crates/radio/src/spatial.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_int_to_float() {
        let src = "fn density(e: usize, n: usize) -> f64 { e as f64 / (n * (n - 1)) as f64 }\n";
        let f = run("crates/graph/src/digraph.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("2^53")));
    }

    #[test]
    fn int_to_int_and_float_to_float_are_fine() {
        let src = "fn f(a: u32, b: f32) -> (usize, f64) { (a as usize, b as f64) }\n";
        assert!(
            run("crates/graph/src/ids.rs", src).is_empty(),
            "u32->usize widens; f32 local->f64 widens"
        );
    }

    #[test]
    fn out_of_scope_files_are_clean() {
        let src = "fn f(n: usize) -> f64 { n as f64 }\n";
        assert!(run("crates/engine/src/stats.rs", src).is_empty());
        assert!(run("crates/radio/src/network.rs", src).is_empty());
    }
}
