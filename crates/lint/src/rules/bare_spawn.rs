//! `no-bare-spawn`: threads are created through `std::thread::scope`
//! (structured, joined by construction) or inside the serve daemon's
//! managed worker set — never detached ad hoc.
//!
//! A bare `thread::spawn` whose handle leaks keeps running after the
//! experiment or daemon that launched it is gone: it can write to
//! report files mid-rename, hold sockets past shutdown, and turn a
//! deterministic run into a racy one. Scoped spawns (`s.spawn(..)`
//! inside `std::thread::scope`) are structurally joined and not
//! flagged; the serve server module owns long-lived named workers with
//! an explicit shutdown/join protocol and is allowlisted. Anything else
//! needs an `agentlint::allow` explaining why the thread must outlive a
//! scope and who joins it.

use crate::context::FileContext;
use crate::rules::{ident_at, path_sep_at, Finding, Rule};

pub struct BareSpawn;

/// Modules sanctioned to create free-standing threads: the serve
/// daemon's worker set (named via `thread::Builder`, joined by
/// `Server::shutdown` / `Drop`).
const SPAWN_FILES: &[&str] = &["crates/serve/src/server.rs"];

impl Rule for BareSpawn {
    fn name(&self) -> &'static str {
        "no-bare-spawn"
    }

    fn description(&self) -> &'static str {
        "thread::spawn / thread::Builder outside std::thread::scope and the serve worker set"
    }

    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>) {
        if SPAWN_FILES.contains(&ctx.rel_path.as_str()) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_test(i) {
                continue;
            }
            if !(ident_at(toks, i, "thread") && path_sep_at(toks, i + 1)) {
                continue;
            }
            let hit = if ident_at(toks, i + 3, "spawn") {
                Some("`thread::spawn` detaches on a dropped handle")
            } else if ident_at(toks, i + 3, "Builder") {
                Some("`thread::Builder` spawns an unscoped thread")
            } else {
                None
            };
            if let Some(what) = hit {
                findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i + 3].line,
                    rule: self.name(),
                    message: format!(
                        "{what}; use std::thread::scope so the join is structural, or justify with agentlint::allow naming the joiner"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::new(rel, src);
        let mut f = Vec::new();
        BareSpawn.check(&ctx, &mut f);
        f
    }

    #[test]
    fn flags_spawn_and_builder() {
        let src = "fn f() {\n\
                   \x20   let h = std::thread::spawn(|| 1u64);\n\
                   \x20   let b = thread::Builder::new().name(\"w\".into());\n\
                   \x20   let _ = (h, b);\n\
                   }\n";
        let f = run("crates/experiments/src/x.rs", src);
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, [2, 3], "{f:?}");
    }

    #[test]
    fn scoped_spawns_are_structural_and_fine() {
        let src = "fn f() {\n\
                   \x20   std::thread::scope(|s| {\n\
                   \x20       let t = s.spawn(|| 2u64);\n\
                   \x20       let _ = t.join();\n\
                   \x20   });\n\
                   }\n";
        assert!(run("crates/engine/src/exec.rs", src).is_empty());
    }

    #[test]
    fn serve_worker_module_is_exempt() {
        let src = "fn f() { let _ = std::thread::Builder::new(); }\n";
        assert!(run("crates/serve/src/server.rs", src).is_empty());
        assert!(!run("crates/serve/src/wire.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::thread::spawn(|| 0); }\n}\n";
        assert!(run("crates/engine/src/x.rs", src).is_empty());
    }
}
