//! `no-lock-in-kernel`: the simulation kernels are single-threaded by
//! construction and must stay lock-free.
//!
//! The sharded stepping design gets its determinism and throughput from
//! kernels that own their state outright — cross-thread handoff happens
//! between steps in the engine, and live readers are served through the
//! serve layer's snapshot cell, never by locking simulation state. A
//! `Mutex`/`RwLock` inside a kernel module or an
//! `#[agentnet::hot_path]` body therefore signals a design regression
//! (hidden blocking on the step path) before it becomes a deadlock or a
//! 100k-node throughput cliff. Flags the type names themselves
//! (imports, fields, constructors) and `.lock()` calls; `.read()` /
//! `.write()` are deliberately not matched — they collide with I/O
//! traits, and reaching them requires a flagged `RwLock` first.

use crate::context::FileContext;
use crate::rules::{ident_at, method_call_at, Finding, Rule, KERNEL_FILES};

pub struct LockInKernel;

impl Rule for LockInKernel {
    fn name(&self) -> &'static str {
        "no-lock-in-kernel"
    }

    fn description(&self) -> &'static str {
        "Mutex/RwLock in step-path kernel modules or #[agentnet::hot_path] bodies"
    }

    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>) {
        let kernel_file = KERNEL_FILES.contains(&ctx.rel_path.as_str());
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_test(i) {
                continue;
            }
            let in_scope =
                kernel_file || ctx.hot_paths.iter().any(|hp| i >= hp.body.start && i < hp.body.end);
            if !in_scope {
                continue;
            }
            let hit = if ident_at(toks, i, "Mutex") || ident_at(toks, i, "RwLock") {
                Some(format!("`{}`", toks[i].text))
            } else if method_call_at(toks, i, "lock") {
                Some("`.lock()`".to_string())
            } else {
                None
            };
            if let Some(what) = hit {
                findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    rule: self.name(),
                    message: format!(
                        "{what} blocks the step path; kernels own their state — hand shared reads to the serve snapshot cell instead"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::new(rel, src);
        let mut f = Vec::new();
        LockInKernel.check(&ctx, &mut f);
        f
    }

    #[test]
    fn flags_types_and_lock_calls_in_kernel_files() {
        let src = "use std::sync::Mutex;\n\
                   struct S { inner: Mutex<u64> }\n\
                   fn f(s: &S) -> u64 {\n\
                   \x20   if let Ok(g) = s.inner.lock() { *g } else { 0 }\n\
                   }\n";
        let f = run("crates/core/src/mapping.rs", src);
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, [1, 2, 4], "{f:?}");
    }

    #[test]
    fn hot_path_bodies_are_in_scope_everywhere() {
        let src = "#[agentnet::hot_path]\n\
                   fn hot(s: &S) -> u64 {\n\
                   \x20   if let Ok(g) = s.inner.lock() { *g } else { 0 }\n\
                   }\n\
                   fn cold(s: &S) -> u64 {\n\
                   \x20   if let Ok(g) = s.inner.lock() { *g } else { 0 }\n\
                   }\n";
        let f = run("crates/engine/src/x.rs", src);
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, [3], "only the hot body is flagged: {f:?}");
    }

    #[test]
    fn non_kernel_files_are_out_of_scope() {
        let src = "use std::sync::Mutex;\nfn f() -> Mutex<u64> { Mutex::new(0) }\n";
        assert!(run("crates/serve/src/server.rs", src).is_empty());
        assert!(run("crates/engine/src/obs.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    fn t() { let _ = Mutex::new(0); }\n}\n";
        assert!(run("crates/core/src/comm.rs", src).is_empty());
    }
}
