//! `no-unordered-iteration`: iteration over `HashMap`/`HashSet` leaks
//! hasher state into simulation results.
//!
//! Scope: `core`, `radio`, `graph`, `baselines` sources (the crates
//! whose outputs feed experiment reports). Keyed point lookups
//! (`get`/`contains`/`insert`) are order-insensitive and stay legal;
//! what the rule flags is *iteration* — `for` loops over hash-typed
//! values and order-exposing adapter calls (`iter`, `keys`, `values`,
//! `values_mut`, `drain`, `retain`, `into_iter`, ...). Deterministic
//! alternatives: `BTreeMap`/`BTreeSet`, sorted key snapshots, or dense
//! index-keyed `Vec`s as used throughout `core`.

use crate::context::FileContext;
use crate::lexer::TokKind;
use crate::rules::{ident_at, method_call_at, path_sep_at, path_under, punct_at, Finding, Rule};

pub struct UnorderedIteration;

const SCOPE: &[&str] =
    &["crates/core/src/", "crates/radio/src/", "crates/graph/src/", "crates/baselines/src/"];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iterator adapters whose order reflects hasher state.
const ORDERED_SINKS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

impl Rule for UnorderedIteration {
    fn name(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "iteration over HashMap/HashSet in core/radio/graph/baselines (order leaks into results)"
    }

    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>) {
        if !path_under(ctx, SCOPE) {
            return;
        }
        let toks = &ctx.tokens;
        let tainted = collect_tainted(ctx);
        let is_hashy = |name: &str| HASH_TYPES.contains(&name) || tainted.iter().any(|t| t == name);

        for i in 0..toks.len() {
            if ctx.in_test(i) {
                continue;
            }
            // Direct adapter call on a hash-typed receiver:
            // `map.values_mut()`, `set.iter()`, `table.retain(...)`.
            if ORDERED_SINKS.iter().any(|s| method_call_at(toks, i, s)) {
                if let Some(recv) = receiver_ident(ctx, i - 1) {
                    if is_hashy(&recv) {
                        findings.push(Finding {
                            file: ctx.rel_path.clone(),
                            line: toks[i].line,
                            rule: self.name(),
                            message: format!(
                                "`.{}()` on HashMap/HashSet-typed `{}` exposes hasher order; use BTreeMap/BTreeSet or sorted keys",
                                toks[i].text, recv
                            ),
                        });
                    }
                }
            }
            // `for pat in <expr> {` where the expression's final primary
            // identifier is hash-typed (covers `for x in &map`).
            if ident_at(toks, i, "for") {
                if let Some((expr_last, line)) = for_loop_subject(ctx, i) {
                    if is_hashy(&expr_last) {
                        findings.push(Finding {
                            file: ctx.rel_path.clone(),
                            line,
                            rule: self.name(),
                            message: format!(
                                "`for` over HashMap/HashSet-typed `{expr_last}` iterates in hasher order; use BTreeMap/BTreeSet or sorted keys"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Names tainted as hash-typed in this file: type-alias names whose
/// definition mentions a hash type, plus `let`/field/param bindings whose
/// type annotation or initializer mentions a hash type or tainted alias.
fn collect_tainted(ctx: &FileContext) -> Vec<String> {
    let toks = &ctx.tokens;
    let mut tainted: Vec<String> = Vec::new();

    // Pass 1: `type X = ...HashMap...;`
    for i in 0..toks.len() {
        if ident_at(toks, i, "type") {
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let mut j = i + 2;
                let mut hashy = false;
                while j < toks.len() && !punct_at(toks, j, ';') {
                    if HASH_TYPES.iter().any(|h| ident_at(toks, j, h)) {
                        hashy = true;
                    }
                    j += 1;
                }
                if hashy {
                    tainted.push(name.text.clone());
                }
            }
        }
    }

    // Pass 2: bindings. For every hash-type (or tainted-alias) mention,
    // look back for the `name :` or `let [mut] name =` that binds it.
    let mentions_hash = |i: usize| {
        HASH_TYPES.iter().any(|h| ident_at(toks, i, h))
            || tainted.iter().any(|t| ident_at(toks, i, t))
    };
    let mut extra: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if !mentions_hash(i) {
            continue;
        }
        // Walk back over type/initializer tokens to the binder.
        let mut j = i;
        let mut guard = 0usize;
        while j > 0 && guard < 64 {
            guard += 1;
            if punct_at(toks, j, ':')
                && !path_sep_at(toks, j.saturating_sub(1))
                && !path_sep_at(toks, j)
            {
                // `name : Type` — field, param, or annotated let.
                if let Some(name) = toks.get(j - 1).filter(|t| t.kind == TokKind::Ident) {
                    extra.push(name.text.clone());
                }
                break;
            }
            if punct_at(toks, j, '=') {
                // `let [mut] name = init`.
                let mut k = j - 1;
                if let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) {
                    if name.text == "mut" {
                        k -= 1;
                    }
                }
                if let Some(name) = toks.get(k).filter(|t| t.kind == TokKind::Ident) {
                    if name.text != "mut" && name.text != "let" {
                        extra.push(name.text.clone());
                    }
                }
                break;
            }
            if punct_at(toks, j, ';') || punct_at(toks, j, '{') || punct_at(toks, j, '}') {
                break;
            }
            j -= 1;
        }
    }
    tainted.extend(extra);
    tainted.sort();
    tainted.dedup();
    tainted
}

/// For a `.` at index `dot`, returns the identifier directly before it
/// (the receiver's final path segment), e.g. `pheromone` for
/// `self.pheromone.values_mut()`.
fn receiver_ident(ctx: &FileContext, dot: usize) -> Option<String> {
    let toks = &ctx.tokens;
    if dot == 0 {
        return None;
    }
    let prev = toks.get(dot - 1)?;
    match prev.kind {
        TokKind::Ident => Some(prev.text.clone()),
        TokKind::Punct if prev.text == ")" || prev.text == "]" => {
            // `expr[i].iter()` / `f(x).keys()`: use the identifier before
            // the bracketed group, e.g. `pheromone` in
            // `self.pheromone[v].values()`.
            let open = crate::rules::open_of(toks, dot - 1);
            toks.get(open.checked_sub(1)?)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
        }
        _ => None,
    }
}

/// For a `for` keyword at `i`, finds the loop expression between `in`
/// and the body `{`, and returns (final ident of the expression, line).
fn for_loop_subject(ctx: &FileContext, i: usize) -> Option<(String, u32)> {
    let toks = &ctx.tokens;
    // Find `in` at pattern depth 0 (patterns may contain tuples).
    let mut j = i + 1;
    let mut depth = 0i64;
    loop {
        let t = toks.get(j)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" => return None,
                _ => {}
            }
        }
        if depth == 0 && t.is_ident("in") {
            break;
        }
        j += 1;
        if j > i + 32 {
            return None;
        }
    }
    // Scan the expression to the body `{`; remember the last identifier
    // that is not a method name in a trailing call.
    let mut last: Option<(String, u32)> = None;
    let mut k = j + 1;
    let mut depth = 0i64;
    while let Some(t) = toks.get(k) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
        }
        if t.kind == TokKind::Ident && depth == 0 {
            // Skip method names (handled by the adapter check) so
            // `map.keys()` attributes to `map`, not `keys`.
            let is_method = k > 0 && punct_at(toks, k - 1, '.') && punct_at(toks, k + 1, '(');
            if !is_method {
                last = Some((t.text.clone(), t.line));
            }
        }
        k += 1;
        if k > j + 64 {
            break;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::new(rel, src);
        let mut f = Vec::new();
        UnorderedIteration.check(&ctx, &mut f);
        f
    }

    #[test]
    fn flags_for_loop_and_adapters_on_hash_types() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) {\n\
                   \x20   for (k, v) in m { let _ = (k, v); }\n\
                   \x20   for k in m.keys() { let _ = k; }\n\
                   }\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 3, "{f:?}"); // for, for, .keys()
        assert!(f.iter().all(|x| x.rule == "no-unordered-iteration"));
    }

    #[test]
    fn alias_taint_propagates() {
        let src = "use std::collections::HashMap;\n\
                   type Pheromone = HashMap<(u32, u32), f64>;\n\
                   struct S { pheromone: Vec<Pheromone> }\n\
                   impl S {\n\
                   \x20   fn evaporate(&mut self) {\n\
                   \x20       for table in &mut self.pheromone {\n\
                   \x20           table.retain(|_, t| *t > 0.0);\n\
                   \x20       }\n\
                   \x20   }\n\
                   }\n";
        let f = run("crates/baselines/src/aco.rs", src);
        // `for` over the tainted field and `.retain` on the tainted
        // element binding are both surfaced.
        assert!(f.iter().any(|x| x.message.contains("pheromone")), "{f:?}");
    }

    #[test]
    fn keyed_lookups_and_out_of_scope_files_are_clean() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &mut HashMap<u32, u32>) -> Option<u32> {\n\
                   \x20   m.insert(1, 2);\n\
                   \x20   m.get(&1).copied()\n\
                   }\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
        let iterating = "use std::collections::HashMap;\nfn f(m: &HashMap<u32,u32>) { for k in m.keys() { let _ = k; } }\n";
        assert!(!run("crates/core/src/x.rs", iterating).is_empty());
        assert!(run("crates/engine/src/x.rs", iterating).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   use std::collections::HashSet;\n\
                   \x20   fn t() { let s: HashSet<u32> = HashSet::new(); for x in s.iter() { let _ = x; } }\n\
                   }\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
