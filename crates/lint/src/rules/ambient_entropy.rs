//! `no-ambient-entropy`: all randomness and time must flow through
//! `engine::rng` seeds so every run is replayable.
//!
//! Scope: the whole workspace except the sanctioned timing modules
//! (`engine::perf`, `engine::obs` and the experiments bench kit), which
//! exist precisely to own wall-clock measurement — bench timing and
//! span-timer durations flow out of the simulation only, never into
//! report bytes. Flags `thread_rng`, `SystemTime::now`,
//! `Instant::now`, and `rand::random` (argless or turbofish) outside
//! them. CLI-status and diagnostic timing that provably cannot affect
//! report bytes carries `agentlint::allow` with a justification instead.

use crate::context::FileContext;
use crate::rules::{ident_at, path_sep_at, Finding, Rule};

pub struct AmbientEntropy;

/// Files allowed to read the wall clock: the calibration-normalized
/// bench layer, the span timers of the metrics registry, and the serve
/// daemon's clock module (query latency / snapshot staleness flow out
/// of the daemon only — replies are pure functions of the snapshot).
const TIMING_FILES: &[&str] = &[
    "crates/engine/src/perf.rs",
    "crates/engine/src/obs.rs",
    "crates/experiments/src/benchkit.rs",
    "crates/serve/src/clock.rs",
];

impl Rule for AmbientEntropy {
    fn name(&self) -> &'static str {
        "no-ambient-entropy"
    }

    fn description(&self) -> &'static str {
        "thread_rng / SystemTime::now / Instant::now / rand::random outside engine::{perf,obs} and benchkit"
    }

    fn check(&self, ctx: &FileContext, findings: &mut Vec<Finding>) {
        if TIMING_FILES.contains(&ctx.rel_path.as_str()) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_test(i) {
                continue;
            }
            let hit = if ident_at(toks, i, "thread_rng") {
                Some("`thread_rng` is unseeded")
            } else if ident_at(toks, i, "SystemTime")
                && path_sep_at(toks, i + 1)
                && ident_at(toks, i + 3, "now")
            {
                Some("`SystemTime::now` reads the wall clock")
            } else if ident_at(toks, i, "Instant")
                && path_sep_at(toks, i + 1)
                && ident_at(toks, i + 3, "now")
            {
                Some("`Instant::now` reads the wall clock")
            } else if ident_at(toks, i, "rand")
                && path_sep_at(toks, i + 1)
                && ident_at(toks, i + 3, "random")
            {
                Some("`rand::random` is unseeded")
            } else {
                None
            };
            if let Some(what) = hit {
                findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    rule: self.name(),
                    message: format!(
                        "{what}; route randomness/time through engine::rng::SeedSequence (timing belongs in engine::perf)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::new(rel, src);
        let mut f = Vec::new();
        AmbientEntropy.check(&ctx, &mut f);
        f
    }

    #[test]
    fn flags_all_four_patterns() {
        let src = "fn f() {\n\
                   \x20   let a = rand::thread_rng();\n\
                   \x20   let b = std::time::SystemTime::now();\n\
                   \x20   let c = std::time::Instant::now();\n\
                   \x20   let d: f64 = rand::random();\n\
                   }\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 4, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[3].line, 5);
    }

    #[test]
    fn timing_modules_are_exempt() {
        let src = "fn t() { let s = std::time::Instant::now(); let _ = s; }\n";
        assert!(run("crates/engine/src/perf.rs", src).is_empty());
        assert!(run("crates/engine/src/obs.rs", src).is_empty());
        assert!(run("crates/experiments/src/benchkit.rs", src).is_empty());
        assert!(run("crates/serve/src/clock.rs", src).is_empty());
        assert!(!run("crates/engine/src/exec.rs", src).is_empty());
        assert!(!run("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn seeded_rng_calls_are_fine() {
        let src = "fn f(rng: &mut SmallRng) -> f64 { rng.random_range(0.0..1.0) }\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
