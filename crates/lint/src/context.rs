//! Per-file analysis context shared by all rules.
//!
//! A [`FileContext`] wraps the lexed token stream with the structural
//! facts every rule needs: which token spans are `#[cfg(test)]`-gated,
//! which lines carry `agentlint::allow` directives, and where the bodies
//! of `#[agentnet::hot_path]`-marked functions are.

use crate::lexer::{lex, AllowDirective, Tok, TokKind};

/// A half-open token-index range.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

/// The body of a function carrying `#[agentnet::hot_path]`.
#[derive(Clone, Debug)]
pub struct HotPathFn {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token span of the `{ ... }` body (braces included).
    pub body: Span,
}

/// Lexed file plus structural annotations.
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub tokens: Vec<Tok>,
    allows: Vec<AllowDirective>,
    /// Token spans covered by `#[cfg(test)]` items.
    test_spans: Vec<Span>,
    /// Bodies of `#[agentnet::hot_path]` functions.
    pub hot_paths: Vec<HotPathFn>,
}

impl FileContext {
    /// Lexes and annotates one file. `rel_path` is workspace-relative.
    pub fn new(rel_path: &str, source: &str) -> Self {
        let lexed = lex(source);
        let test_spans = find_cfg_test_spans(&lexed.tokens);
        let hot_paths = find_hot_path_fns(&lexed.tokens);
        FileContext {
            rel_path: rel_path.replace('\\', "/"),
            tokens: lexed.tokens,
            allows: lexed.allows,
            test_spans,
            hot_paths,
        }
    }

    /// True if token index `i` sits inside a `#[cfg(test)]` item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|s| i >= s.start && i < s.end)
    }

    /// True if `rule` is suppressed at `line` by an allow directive on
    /// the same line or on the line directly above (so both trailing
    /// comments and standalone comment lines work).
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }

    /// All allow directives (for diagnostics/tests).
    pub fn allows(&self) -> &[AllowDirective] {
        &self.allows
    }
}

/// True at `i` for the exact identifier `s`.
fn ident_at(tokens: &[Tok], i: usize, s: &str) -> bool {
    tokens.get(i).map(|t| t.is_ident(s)).unwrap_or(false)
}

/// True at `i` for the punctuation char `c`.
fn punct_at(tokens: &[Tok], i: usize, c: char) -> bool {
    tokens.get(i).map(|t| t.is_punct(c)).unwrap_or(false)
}

/// From an opening bracket at `open`, returns the index one past its
/// matching close, tracking all three bracket kinds.
fn skip_balanced(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if let TokKind::Punct = tokens[i].kind {
            match tokens[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Finds `#[cfg(test)]` (or `#[cfg(all(test, ...))]` etc.) attributes and
/// returns the token span of the item each one gates.
fn find_cfg_test_spans(tokens: &[Tok]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '[') {
            let attr_end = skip_balanced(tokens, i + 1);
            let is_cfg_test = ident_at(tokens, i + 2, "cfg")
                && tokens[i + 2..attr_end].iter().any(|t| t.is_ident("test"));
            if is_cfg_test {
                spans.push(Span { start: i, end: item_end(tokens, attr_end) });
            }
            i = attr_end;
        } else {
            i += 1;
        }
    }
    spans
}

/// From the first token after an item's attributes, returns one past the
/// item's end: the matching `}` of its first top-level brace, or the
/// first top-level `;` (whichever comes first).
fn item_end(tokens: &[Tok], mut i: usize) -> usize {
    // Skip any further attributes on the same item.
    while punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '[') {
        i = skip_balanced(tokens, i + 1);
    }
    let mut depth = 0i64;
    while i < tokens.len() {
        if let TokKind::Punct = tokens[i].kind {
            match tokens[i].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => return skip_balanced(tokens, i),
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Finds functions annotated `#[agentnet::hot_path]` (any path ending in
/// `hot_path` inside an attribute) and records their body spans.
fn find_hot_path_fns(tokens: &[Tok]) -> Vec<HotPathFn> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '[') {
            let attr_end = skip_balanced(tokens, i + 1);
            let is_marker = tokens[i + 2..attr_end].iter().any(|t| t.is_ident("hot_path"));
            if is_marker {
                if let Some(f) = parse_fn_after_attrs(tokens, attr_end) {
                    fns.push(f);
                }
            }
            i = attr_end;
        } else {
            i += 1;
        }
    }
    fns
}

/// From the first token after a marker attribute, skips further
/// attributes and qualifiers, then parses `fn name ... { body }`.
fn parse_fn_after_attrs(tokens: &[Tok], mut i: usize) -> Option<HotPathFn> {
    while punct_at(tokens, i, '#') && punct_at(tokens, i + 1, '[') {
        i = skip_balanced(tokens, i + 1);
    }
    // Qualifiers: pub, pub(crate), const, unsafe, extern "C", async.
    loop {
        if ident_at(tokens, i, "fn") {
            break;
        }
        match tokens.get(i) {
            Some(t) if t.kind == TokKind::Ident || t.kind == TokKind::Str => i += 1,
            Some(t) if t.is_punct('(') => i = skip_balanced(tokens, i),
            _ => return None,
        }
    }
    let fn_line = tokens.get(i)?.line;
    let name = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident)?.text.clone();
    // Find the body: the first `{` at angle-free bracket depth zero after
    // the signature. Generic bounds never contain braces in this
    // codebase, so the first top-level `{` is the body.
    let mut j = i + 2;
    let mut depth = 0i64;
    while j < tokens.len() {
        if let TokKind::Punct = tokens[j].kind {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    let end = skip_balanced(tokens, j);
                    return Some(HotPathFn { name, line: fn_line, body: Span { start: j, end } });
                }
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_spanned() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        let unwrap_idx =
            ctx.tokens.iter().position(|t| t.is_ident("unwrap")).expect("unwrap token present");
        assert!(ctx.in_test(unwrap_idx));
        let live_idx = ctx.tokens.iter().position(|t| t.is_ident("live")).expect("live");
        assert!(!ctx.in_test(live_idx));
    }

    #[test]
    fn cfg_test_on_statement_items() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        let hm = ctx.tokens.iter().position(|t| t.is_ident("HashMap")).expect("HashMap");
        assert!(ctx.in_test(hm));
        let live = ctx.tokens.iter().position(|t| t.is_ident("live")).expect("live");
        assert!(!ctx.in_test(live));
    }

    #[test]
    fn hot_path_fn_body_is_found() {
        let src = "impl S {\n    #[agentnet::hot_path]\n    pub fn advance(&mut self) -> u64 {\n        self.tick += 1;\n        self.tick\n    }\n    pub fn other(&self) {}\n}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        assert_eq!(ctx.hot_paths.len(), 1);
        let hp = &ctx.hot_paths[0];
        assert_eq!(hp.name, "advance");
        assert_eq!(hp.line, 3);
        let body = &ctx.tokens[hp.body.start..hp.body.end];
        assert!(body.iter().any(|t| t.is_ident("tick")));
        assert!(!body.iter().any(|t| t.is_ident("other")));
    }

    #[test]
    fn nested_cfg_test_mods_stay_covered() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn outer() { a.unwrap(); }\n\
                   \x20   #[cfg(test)]\n\
                   \x20   mod inner {\n\
                   \x20       fn deep() { b.unwrap(); }\n\
                   \x20   }\n\
                   \x20   fn after_inner() { c.unwrap(); }\n\
                   }\n\
                   fn live() {}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        for name in ["a", "b", "c"] {
            let i = ctx.tokens.iter().position(|t| t.is_ident(name)).expect(name);
            assert!(ctx.in_test(i), "`{name}` must sit inside a test span");
        }
        let live = ctx.tokens.iter().position(|t| t.is_ident("live")).expect("live");
        assert!(!ctx.in_test(live), "code after the outer mod's close brace is live");
    }

    #[test]
    fn cfg_test_inside_a_live_mod_gates_only_its_item() {
        let src = "mod m {\n\
                   \x20   fn live() { x.tick(); }\n\
                   \x20   #[cfg(test)]\n\
                   \x20   fn probe() { y.unwrap(); }\n\
                   }\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        let y = ctx.tokens.iter().position(|t| t.is_ident("y")).expect("y");
        assert!(ctx.in_test(y));
        let x = ctx.tokens.iter().position(|t| t.is_ident("x")).expect("x");
        assert!(!ctx.in_test(x));
    }

    #[test]
    fn multi_line_attributes_gate_the_following_item() {
        // The attribute's argument list spans lines; the span must still
        // cover the whole gated item, nothing more.
        let src = "#[cfg(\n\
                   \x20   all(\n\
                   \x20       test,\n\
                   \x20       feature = \"slow-tests\",\n\
                   \x20   )\n\
                   )]\n\
                   mod tests {\n\
                   \x20   fn t() { a.unwrap(); }\n\
                   }\n\
                   fn live() {}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        let a = ctx.tokens.iter().position(|t| t.is_ident("a")).expect("a");
        assert!(ctx.in_test(a));
        let live = ctx.tokens.iter().position(|t| t.is_ident("live")).expect("live");
        assert!(!ctx.in_test(live));
    }

    #[test]
    fn stacked_attributes_between_marker_and_fn_are_skipped() {
        // hot_path first, then further attributes before the `fn`; the
        // body span must belong to the right function either way.
        let src = "#[agentnet::hot_path]\n\
                   #[allow(\n\
                   \x20   clippy::needless_range_loop,\n\
                   )]\n\
                   pub(crate) unsafe fn advance() -> u64 {\n\
                   \x20   tick()\n\
                   }\n\
                   fn other() { cold() }\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        assert_eq!(ctx.hot_paths.len(), 1);
        let hp = &ctx.hot_paths[0];
        assert_eq!(hp.name, "advance");
        assert_eq!(hp.line, 5);
        let body = &ctx.tokens[hp.body.start..hp.body.end];
        assert!(body.iter().any(|t| t.is_ident("tick")));
        assert!(!body.iter().any(|t| t.is_ident("cold")));
    }

    /// Documented conservatism: the span finder keys on the `test`
    /// identifier anywhere inside `#[cfg(...)]`, so `#[cfg(not(test))]`
    /// is (wrongly but safely) treated as test-gated. A rule can miss a
    /// finding in such an item; it can never flag real test code. If
    /// this trade ever flips, this pin is the place to renegotiate it.
    #[test]
    fn cfg_not_test_is_conservatively_treated_as_test() {
        let src = "#[cfg(not(test))]\nfn shipped() { a.unwrap(); }\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        let a = ctx.tokens.iter().position(|t| t.is_ident("a")).expect("a");
        assert!(ctx.in_test(a));
    }

    #[test]
    fn allow_covers_same_and_next_line() {
        let src = "// agentlint::allow(r1)\nlet a = 1;\nlet b = 2; // agentlint::allow(r2)\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        assert!(ctx.is_allowed("r1", 1));
        assert!(ctx.is_allowed("r1", 2));
        assert!(!ctx.is_allowed("r1", 3));
        assert!(ctx.is_allowed("r2", 3));
        assert!(!ctx.is_allowed("r2", 2));
    }

    #[test]
    fn allow_lists_cover_every_named_rule_and_nothing_between() {
        let src = "// agentlint::allow(r1, r2)\n\
                   let a = 1;\n\
                   \n\
                   let b = 2;\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", src);
        assert!(ctx.is_allowed("r1", 2));
        assert!(ctx.is_allowed("r2", 2));
        assert!(!ctx.is_allowed("r3", 2), "unlisted rules stay live");
        // A blank line breaks adjacency: the directive reaches exactly
        // one line down, never further.
        assert!(!ctx.is_allowed("r1", 4));
        assert_eq!(ctx.allows().len(), 1);
        assert_eq!(ctx.allows()[0].rules, ["r1", "r2"]);
    }
}
