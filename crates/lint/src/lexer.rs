//! A minimal Rust lexer for the lint pass.
//!
//! The workspace builds fully offline, so `agentlint` cannot lean on
//! `syn`; instead the rules operate on a token stream produced here.
//! The lexer understands exactly as much Rust as the rules need:
//!
//! * comments (line, nested block) are skipped, but
//!   `agentlint::allow(...)` directives inside them are recorded;
//! * string/char/lifetime/raw-string literals are tokenized opaquely so
//!   pattern matches never fire inside literal text;
//! * numeric literals carry an `is_float` flag (used as cast evidence by
//!   the `no-lossy-cast` rule);
//! * everything else becomes identifier or single-character punctuation
//!   tokens with 1-based line numbers.

/// Token kind. Punctuation is one token per character; rules that need
/// multi-character operators (`::`, `..`) match adjacent tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal; `is_float` is true for `1.0`, `1e3`, `2f64`, ...
    Num { is_float: bool },
    /// String literal of any flavor (plain, raw, byte).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a` (including `'static`).
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// An `// agentlint::allow(rule, ...)` directive found in a comment.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// 1-based line the directive's comment starts on.
    pub line: u32,
    /// The rule names listed inside the parentheses.
    pub rules: Vec<String>,
}

/// Lexer output: the token stream plus any allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub allows: Vec<AllowDirective>,
}

/// Lexes `source`, skipping comments and recording allow directives.
///
/// The lexer is resilient: malformed input (unterminated strings, stray
/// bytes) never panics — it degrades to opaque tokens so a lint run can
/// report on every file it can read.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let Some(c) = source[i..].chars().next() else { break };
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                record_allows(&source[start..i], line, &mut out.allows);
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                record_allows(&source[start..i], start_line, &mut out.allows);
            }
            '"' => {
                let (len, newlines) = scan_string(&source[i..]);
                out.tokens.push(Tok { kind: TokKind::Str, text: String::new(), line });
                i += len;
                line += newlines;
            }
            'r' | 'b' if starts_raw_or_byte_literal(&source[i..]) => {
                let (kind, len, newlines) = scan_prefixed_literal(&source[i..]);
                out.tokens.push(Tok { kind, text: String::new(), line });
                i += len;
                line += newlines;
            }
            '\'' => {
                let (kind, len) = scan_quote(&source[i..]);
                let text = source[i..i + len].to_string();
                out.tokens.push(Tok { kind, text, line });
                i += len;
            }
            c if c.is_ascii_digit() => {
                let (len, is_float) = scan_number(&source[i..]);
                out.tokens.push(Tok {
                    kind: TokKind::Num { is_float },
                    text: source[i..i + len].to_string(),
                    line,
                });
                i += len;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                for ch in source[i..].chars() {
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
                i += c.len_utf8();
            }
        }
    }
    out
}

/// Extracts `agentlint::allow(a, b)` rule lists from comment text.
fn record_allows(comment: &str, line: u32, allows: &mut Vec<AllowDirective>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("agentlint::allow(") {
        let after = &rest[pos + "agentlint::allow(".len()..];
        let Some(close) = after.find(')') else { return };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if !rules.is_empty() {
            allows.push(AllowDirective { line, rules });
        }
        rest = &after[close..];
    }
}

/// True if the text starts a raw string (`r"`, `r#"`) or byte literal
/// (`b"`, `b'`, `br"`, `br#"`) rather than an identifier.
fn starts_raw_or_byte_literal(s: &str) -> bool {
    let b = s.as_bytes();
    match b.first() {
        Some(b'r') => matches!(peek_past_hashes(&b[1..]), Some(b'"')),
        Some(b'b') => match b.get(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(peek_past_hashes(&b[2..]), Some(b'"')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a run of `#` and returns the byte after it.
fn peek_past_hashes(b: &[u8]) -> Option<u8> {
    let mut i = 0;
    while b.get(i) == Some(&b'#') {
        i += 1;
    }
    b.get(i).copied()
}

/// Scans a plain `"..."` string starting at the opening quote. Returns
/// (byte length including quotes, newline count inside).
fn scan_string(s: &str) -> (usize, u32) {
    let b = s.as_bytes();
    let mut i = 1usize;
    let mut newlines = 0u32;
    while i < b.len() {
        match b[i] {
            // An escape consumes two bytes; `\<newline>` (string line
            // continuation) still advances the line counter.
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                i += 2;
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (b.len(), newlines)
}

/// Scans a literal starting with `r`, `b`, or `br`: raw strings, byte
/// strings, byte chars. Returns (kind, byte length, newline count).
fn scan_prefixed_literal(s: &str) -> (TokKind, usize, u32) {
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut raw = false;
    if b[i] == b'b' {
        i += 1;
    }
    if b.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    if !raw {
        return match b.get(i) {
            Some(b'\'') => {
                let (_, len) = scan_quote(&s[i..]);
                (TokKind::Char, i + len, 0)
            }
            _ => {
                let (len, newlines) = scan_string(&s[i..]);
                (TokKind::Str, i + len, newlines)
            }
        };
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    // Opening quote.
    i += 1;
    let mut newlines = 0u32;
    while i < b.len() {
        if b[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (TokKind::Str, j, newlines);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (TokKind::Str, b.len(), newlines)
}

/// Disambiguates a `'` into a char literal or a lifetime. Returns
/// (kind, byte length).
fn scan_quote(s: &str) -> (TokKind, usize) {
    let b = s.as_bytes();
    // Escape sequence: definitely a char literal. Scanning bytes for the
    // ASCII closing quote is UTF-8 safe (0x27 never appears inside a
    // multi-byte sequence).
    if b.get(1) == Some(&b'\\') {
        let mut i = 2usize;
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return (TokKind::Char, (i + 1).min(b.len()));
    }
    let mut chars = s.char_indices();
    chars.next(); // opening quote
    let Some((first_pos, first)) = chars.next() else {
        return (TokKind::Char, 1);
    };
    let after_first = first_pos + first.len_utf8();
    // `'x'` — any single scalar between quotes is a char literal (this
    // covers multi-byte chars like the sparkline glyphs).
    if first != '\'' && b.get(after_first) == Some(&b'\'') {
        return (TokKind::Char, after_first + 1);
    }
    // `'ident` not followed by a closing quote is a lifetime.
    if first.is_alphabetic() || first == '_' {
        let mut end = after_first;
        for ch in s[after_first..].chars() {
            if ch.is_alphanumeric() || ch == '_' {
                end += ch.len_utf8();
            } else {
                break;
            }
        }
        if b.get(end) == Some(&b'\'') {
            return (TokKind::Char, end + 1);
        }
        return (TokKind::Lifetime, end);
    }
    // Lone or unrecognized quote: opaque single-byte token.
    (TokKind::Char, 1)
}

/// Scans a numeric literal. Returns (byte length, is_float).
fn scan_number(s: &str) -> (usize, bool) {
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut is_float = false;
    if b.len() > 1 && b[0] == b'0' && matches!(b[1], b'x' | b'o' | b'b') {
        i = 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return (i, false);
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part: only if followed by a digit (so `1.max(2)` and
    // ranges `0..n` stay integers) or by nothing identifier-like (`1.`).
    if i < b.len() && b[i] == b'.' {
        let next = b.get(i + 1).copied();
        let next_is_digit = next.map(|c| c.is_ascii_digit()).unwrap_or(false);
        let next_is_ident = next.map(|c| (c as char).is_alphabetic() || c == b'_').unwrap_or(false);
        let next_is_dot = next == Some(b'.');
        if next_is_digit || (!next_is_ident && !next_is_dot) {
            is_float = true;
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Exponent.
    if i < b.len() && matches!(b[i], b'e' | b'E') {
        let mut j = i + 1;
        if matches!(b.get(j), Some(b'+') | Some(b'-')) {
            j += 1;
        }
        if b.get(j).map(|c| c.is_ascii_digit()).unwrap_or(false) {
            is_float = true;
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, ...).
    let suffix_start = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    if s[suffix_start..i].starts_with('f') {
        is_float = true;
    }
    (i, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // thread_rng in a comment
            /* Instant::now in /* a nested */ block */
            let s = "SystemTime::now()";
            let r = r#"thread_rng"#;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(ids.iter().any(|i| i == "let"));
    }

    #[test]
    fn allow_directives_are_recorded_with_lines() {
        let src = "let x = 1;\n// agentlint::allow(no-lossy-cast, no-panic-in-kernel) — why\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 2);
        assert_eq!(lexed.allows[0].rules, ["no-lossy-cast", "no-panic-in-kernel"]);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn float_detection() {
        let cases = [
            ("1.0", true),
            ("1.", true),
            ("1e3", true),
            ("2f64", true),
            ("1_000", false),
            ("0xff", false),
            ("3usize", false),
        ];
        for (src, want) in cases {
            let lexed = lex(src);
            assert_eq!(lexed.tokens.len(), 1, "{src}");
            assert_eq!(lexed.tokens[0].kind, TokKind::Num { is_float: want }, "{src}");
        }
    }

    #[test]
    fn method_on_int_literal_is_not_float() {
        let lexed = lex("1.max(2)");
        assert_eq!(lexed.tokens[0].kind, TokKind::Num { is_float: false });
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet b = 3;\n";
        let lexed = lex(src);
        let b_tok = lexed.tokens.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn line_numbers_track_string_continuations() {
        let src = "let a = \"one\\\n  two\";\nlet b = 3;\n";
        let lexed = lex(src);
        let b_tok = lexed.tokens.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b_tok.line, 3);
    }
}
