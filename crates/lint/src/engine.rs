//! The workspace walker and rule driver.

use crate::context::FileContext;
use crate::rules::{all_rules, Finding};
use std::io;
use std::path::{Path, PathBuf};

/// Lints one in-memory source file under its workspace-relative path.
/// The path decides which rules apply (see each rule's scope); allow
/// directives and `#[cfg(test)]` spans are honored.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let ctx = FileContext::new(rel_path, source);
    let mut findings = Vec::new();
    for rule in all_rules() {
        rule.check(&ctx, &mut findings);
    }
    findings.retain(|f| !ctx.is_allowed(f.rule, f.line));
    sort(&mut findings);
    findings
}

/// Lints every workspace source file under `root` and returns sorted
/// findings. Walks `crates/*/src/**/*.rs` plus the root facade's
/// `src/**/*.rs`; `vendor/` stand-ins, `tests/`, benches, and fixture
/// trees are outside the walk by construction.
pub fn run_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, path) in workspace_files(root)? {
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source));
    }
    sort(&mut findings);
    Ok(findings)
}

/// Enumerates `(workspace-relative path, absolute path)` for every
/// linted source file, sorted by relative path.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), root, &mut out)?;
        }
    }
    collect_rs(&root.join("src"), root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (if it exists).
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn sort(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    findings.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn f() {\n\
                   \x20   // deliberate: status line only — agentlint::allow(no-ambient-entropy)\n\
                   \x20   let t = std::time::Instant::now();\n\
                   \x20   let _ = t;\n\
                   }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
        let bare = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", bare).len(), 1);
    }

    #[test]
    fn findings_are_sorted_and_deduped() {
        let src = "fn f(v: &[u32], o: Option<u32>) -> u32 { v[o.unwrap() as usize] }\n";
        let f = lint_source("crates/core/src/policy.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        let mut sorted = f.clone();
        sorted.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
        assert_eq!(f, sorted);
    }
}
