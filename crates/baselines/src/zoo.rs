//! The protocol-zoo factory: build any routing arm behind one
//! [`RoutingProtocol`] trait object.
//!
//! The experiments and the validation battery compare arms under
//! *identical* mobility and seeds; the only thing that may differ is
//! the protocol. This module maps the zoo-wide knobs of [`ZooParams`]
//! onto each arm's native configuration:
//!
//! | arm            | `population`           | `cache` (0 = arm default)    |
//! |----------------|------------------------|------------------------------|
//! | agents         | mobile agents          | visit-memory `history_size`  |
//! | stigmergic     | wandering agents       | route `trail_length` (hops)  |
//! | antnet         | forward ants           | forward-ant `ttl` (hops)     |
//! | epidemic       | *(ignored — agentless)*| route `max_age` (steps)      |
//! | spray-and-wait | *(ignored — agentless)*| copy budget `L`              |
//!
//! The flooding arms run node-side announcement waves with no mobile
//! agents at all, so `population` does not apply to them.

use crate::flooding::{FloodConfig, FloodSim};
use agentnet_core::policy::RoutingPolicy;
use agentnet_core::routing::{
    AntNetConfig, AntNetSim, ProtocolKind, RoutingConfig, RoutingProtocol, RoutingSim,
    StigRouteConfig, StigRouteSim,
};
use agentnet_radio::WirelessNetwork;
use serde::{Deserialize, Serialize};

/// Zoo-wide sweep knobs, mapped per arm (see the [module docs](self)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZooParams {
    /// Mobile population for the agent-based arms.
    pub population: usize,
    /// The arm's cache-size knob; `0` keeps the arm's default.
    pub cache: usize,
}

impl Default for ZooParams {
    fn default() -> Self {
        ZooParams { population: 100, cache: 0 }
    }
}

impl ZooParams {
    /// Params with the given population and default cache sizes.
    pub fn with_population(population: usize) -> Self {
        ZooParams { population, ..ZooParams::default() }
    }

    /// Sets the per-arm cache-size knob.
    pub fn cache(mut self, cache: usize) -> Self {
        self.cache = cache;
        self
    }
}

/// Default spray-and-wait copy budget when `cache` is 0.
const DEFAULT_COPIES: u32 = 8;

/// Builds the `kind` arm over `net` as a boxed [`RoutingProtocol`],
/// seeded with `seed` (arms consume identically-derived seeds, so two
/// arms built with the same arguments see the same mobility).
///
/// # Errors
///
/// Returns the arm's configuration error rendered as a string.
pub fn build_protocol(
    kind: ProtocolKind,
    net: WirelessNetwork,
    params: &ZooParams,
    seed: u64,
) -> Result<Box<dyn RoutingProtocol>, String> {
    let cache32 = u32::try_from(params.cache).unwrap_or(u32::MAX);
    match kind {
        ProtocolKind::Agents => {
            let mut config = RoutingConfig::new(RoutingPolicy::OldestNode, params.population);
            if params.cache > 0 {
                config = config.history_size(params.cache);
            }
            RoutingSim::new(net, config, seed)
                .map(|s| Box::new(s) as Box<dyn RoutingProtocol>)
                .map_err(|e| e.to_string())
        }
        ProtocolKind::Stigmergic => {
            let mut config = StigRouteConfig::new(params.population);
            if params.cache > 0 {
                config = config.trail_length(cache32);
            }
            StigRouteSim::new(net, config, seed)
                .map(|s| Box::new(s) as Box<dyn RoutingProtocol>)
                .map_err(|e| e.to_string())
        }
        ProtocolKind::AntNet => {
            let mut config = AntNetConfig::new(params.population);
            if params.cache > 0 {
                config = config.ttl(params.cache);
            }
            AntNetSim::new(net, config, seed)
                .map(|s| Box::new(s) as Box<dyn RoutingProtocol>)
                .map_err(|e| e.to_string())
        }
        ProtocolKind::Epidemic => {
            let mut config = FloodConfig::epidemic();
            if params.cache > 0 {
                config = config.max_age(params.cache as u64);
            }
            FloodSim::new(net, config, seed)
                .map(|s| Box::new(s) as Box<dyn RoutingProtocol>)
                .map_err(|e| e.to_string())
        }
        ProtocolKind::SprayAndWait => {
            let copies = if params.cache > 0 { cache32 } else { DEFAULT_COPIES };
            FloodSim::new(net, FloodConfig::spray_and_wait(copies), seed)
                .map(|s| Box::new(s) as Box<dyn RoutingProtocol>)
                .map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_engine::Step;
    use agentnet_radio::NetworkBuilder;

    fn net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(40).gateways(3).target_edges(320).build(seed).unwrap()
    }

    #[test]
    fn every_arm_builds_and_runs_under_the_trait() {
        for kind in ProtocolKind::ALL {
            let mut arm = build_protocol(kind, net(3), &ZooParams::with_population(12), 77)
                .unwrap_or_else(|e| panic!("{kind} failed to build: {e}"));
            assert_eq!(arm.kind(), kind);
            let outcome = arm.run(40);
            assert_eq!(outcome.connectivity.len(), 40);
            assert!(arm.validate_tables(Step::new(40)).is_ok(), "{kind} tables invalid");
        }
    }

    #[test]
    fn arms_share_identical_mobility_under_one_seed() {
        // Same seed, different protocols: after the same number of
        // steps the *networks* are byte-identical — only the protocol
        // state differs.
        let mut a = build_protocol(ProtocolKind::Agents, net(5), &ZooParams::default(), 9).unwrap();
        let mut b =
            build_protocol(ProtocolKind::Epidemic, net(5), &ZooParams::default(), 9).unwrap();
        let _ = a.run(30);
        let _ = b.run(30);
        assert_eq!(a.network().links(), b.network().links());
        assert_eq!(a.network().topology_version(), b.network().topology_version());
    }

    #[test]
    fn cache_knob_reaches_each_arm() {
        let params = ZooParams::with_population(10).cache(5);
        for kind in ProtocolKind::ALL {
            let arm = build_protocol(kind, net(7), &params, 3).unwrap();
            assert_eq!(arm.kind(), kind);
        }
        // Cache 0 keeps defaults; a pathological cache on spray-and-wait
        // still builds (budget 1 = pure wait).
        let one = ZooParams::with_population(10).cache(1);
        assert!(build_protocol(ProtocolKind::SprayAndWait, net(7), &one, 3).is_ok());
    }

    #[test]
    fn build_errors_are_reported_not_panicked() {
        let bad = ZooParams { population: 0, cache: 0 };
        assert!(build_protocol(ProtocolKind::Agents, net(1), &bad, 1).is_err());
        assert!(build_protocol(ProtocolKind::Stigmergic, net(1), &bad, 1).is_err());
        assert!(build_protocol(ProtocolKind::AntNet, net(1), &bad, 1).is_err());
    }
}
