//! Epidemic and binary spray-and-wait flooding baselines (DTN-style).
//!
//! Both arms flood sequence-numbered *gateway announcements* instead of
//! moving agents: every `advert_period` steps each gateway emits a new
//! announcement, and nodes that hear one install a route entry pointing
//! back at the sender. The two strategies differ only in how an
//! announcement propagates:
//!
//! * **Epidemic** — every holder re-broadcasts each announcement to its
//!   whole radio neighbourhood exactly once. The delivery ceiling of
//!   flooding, at the message cost of flooding.
//! * **Binary spray-and-wait** (Spyropoulos et al.) — an announcement
//!   carries a copy budget `L`; a holder with more than one copy hands
//!   half to one uninfected neighbour per step, and a holder with a
//!   single copy enters *direct delivery*: it hands its last copy to
//!   one uninfected neighbour (preferring one adjacent to the
//!   announcement's gateway) and then goes quiet. Copies are conserved
//!   — a rejected or raced handoff leaves the giver's budget intact —
//!   so the total never exceeds `L` per announcement, yet the single
//!   remaining copy keeps walking the network instead of parking on
//!   whichever node the halving cascade happened to end at. Bounded
//!   overhead, slower spread.
//!
//! Protocol-zoo boundaries
//! ([`RoutingProtocol`](agentnet_core::routing::RoutingProtocol)):
//! * **Construction** — hearing a strictly fresher (or equal-sequence,
//!   fewer-hop) announcement installs `RouteEntry { gateway, next_hop:
//!   sender, hops }`.
//! * **Meeting state** — the announcement itself: `(gateway, sequence
//!   number, hop count)` plus the copy budget under spray-and-wait.
//! * **Decay** — supersession by newer sequence numbers plus eviction
//!   of entries older than `max_age` steps.
//!
//! Rounds are synchronous: adoption reads a pre-round snapshot and
//! writes a double-buffered next state (the same order-independence
//! device as [`crate::distance_vector`]), and a route is only usable if
//! the reverse link is also live (the receiver must actually be able to
//! reach the sender).

use agentnet_core::overhead::Overhead;
use agentnet_core::routing::{ProtocolKind, RouteEntry, RouteIndex, RoutingProtocol, RoutingTable};
use agentnet_engine::sim::{Step, TimeStepSim};
use agentnet_engine::TimeSeries;
use agentnet_graph::NodeId;
use agentnet_radio::WirelessNetwork;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// How a gateway announcement propagates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FloodStrategy {
    /// Every holder re-broadcasts each announcement once.
    Epidemic,
    /// Binary spray-and-wait with an initial budget of `copies`.
    SprayAndWait {
        /// Initial copy budget `L` of each announcement.
        copies: u32,
    },
}

/// Configuration for [`FloodSim`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloodConfig {
    /// Propagation strategy.
    pub strategy: FloodStrategy,
    /// Steps between gateway announcement waves.
    pub advert_period: u64,
    /// Route entries older than this many steps are evicted. This is
    /// the arms' cache-size knob.
    pub max_age: u64,
}

impl FloodConfig {
    /// Epidemic flooding with the default wave period and route age.
    pub fn epidemic() -> Self {
        FloodConfig { strategy: FloodStrategy::Epidemic, advert_period: 8, max_age: 24 }
    }

    /// Binary spray-and-wait with an initial budget of `copies`.
    pub fn spray_and_wait(copies: u32) -> Self {
        FloodConfig {
            strategy: FloodStrategy::SprayAndWait { copies },
            advert_period: 8,
            max_age: 24,
        }
    }

    /// Sets the announcement wave period in steps.
    pub fn advert_period(mut self, period: u64) -> Self {
        self.advert_period = period;
        self
    }

    /// Sets the route-entry eviction age (the cache-size knob).
    pub fn max_age(mut self, age: u64) -> Self {
        self.max_age = age;
        self
    }

    fn validate(&self) -> Result<(), FloodError> {
        if self.advert_period == 0 {
            return Err(FloodError::new("advert period must be positive"));
        }
        if self.max_age == 0 {
            return Err(FloodError::new("max age must be positive"));
        }
        if let FloodStrategy::SprayAndWait { copies } = self.strategy {
            if copies == 0 {
                return Err(FloodError::new("spray-and-wait needs at least one copy"));
            }
        }
        Ok(())
    }
}

/// Error constructing a [`FloodSim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloodError {
    reason: String,
}

impl FloodError {
    fn new(reason: impl Into<String>) -> Self {
        FloodError { reason: reason.into() }
    }
}

impl fmt::Display for FloodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid flooding configuration: {}", self.reason)
    }
}

impl Error for FloodError {}

/// A node's knowledge of one gateway's latest announcement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Seen {
    seq: u64,
    hops: u32,
    copies: u32,
}

/// `true` if `cand` should displace `cur`: strictly newer sequence, or
/// the same wave over fewer hops.
fn better(cand: Seen, cur: Option<Seen>) -> bool {
    match cur {
        None => true,
        Some(c) => cand.seq > c.seq || (cand.seq == c.seq && cand.hops < c.hops),
    }
}

/// The flooding baselines (epidemic or spray-and-wait, by
/// [`FloodConfig::strategy`]). See the [module docs](self).
#[derive(Clone, Debug)]
pub struct FloodSim {
    net: WirelessNetwork,
    config: FloodConfig,
    tables: Vec<RoutingTable>,
    is_gateway: Vec<bool>,
    live_gateways: Vec<NodeId>,
    /// `seen[node][gw_index]`: the latest announcement of gateway
    /// `gw_index` this node holds.
    seen: Vec<Vec<Option<Seen>>>,
    /// Double buffer for the synchronous broadcast round.
    next: Vec<Vec<Option<Seen>>>,
    /// `advertised[node][gw_index]`: highest sequence number this node
    /// has already re-broadcast (epidemic's flood-once bound).
    advertised: Vec<Vec<u64>>,
    rng: SmallRng,
    connectivity: TimeSeries,
    overhead: Overhead,
    route_index: RouteIndex,
    /// Spray-target scratch, reused across steps.
    pool: Vec<NodeId>,
}

impl FloodSim {
    /// Creates a flooding baseline over a wireless network. The seed
    /// only feeds spray-target selection; epidemic runs are RNG-free.
    ///
    /// # Errors
    ///
    /// Returns [`FloodError`] for a zero advert period / max age / copy
    /// budget, an empty network, or a network without gateways.
    pub fn new(net: WirelessNetwork, config: FloodConfig, seed: u64) -> Result<Self, FloodError> {
        config.validate()?;
        let n = net.node_count();
        if n == 0 {
            return Err(FloodError::new("flooding needs a nonempty network"));
        }
        if net.gateways().is_empty() {
            return Err(FloodError::new("flooding needs at least one gateway"));
        }
        let g = net.gateways().len();
        let mut is_gateway = vec![false; n];
        for &gw in net.gateways() {
            if let Some(flag) = is_gateway.get_mut(gw.index()) {
                *flag = true;
            }
        }
        let live_gateways = net.gateways().to_vec();
        Ok(FloodSim {
            net,
            config,
            tables: vec![RoutingTable::new(); n],
            is_gateway,
            live_gateways,
            seen: vec![vec![None; g]; n],
            next: vec![vec![None; g]; n],
            advertised: vec![vec![0; g]; n],
            rng: SmallRng::seed_from_u64(seed),
            connectivity: TimeSeries::new(),
            overhead: Overhead::default(),
            route_index: RouteIndex::new(n),
            pool: Vec::new(),
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &FloodConfig {
        &self.config
    }

    /// Every `advert_period` steps each gateway emits a fresh
    /// announcement into its own row.
    #[agentnet::hot_path]
    fn seed_announcements(&mut self, now: Step) {
        if !now.as_u64().is_multiple_of(self.config.advert_period) {
            return;
        }
        let seq = now.as_u64() + 1;
        let initial = match self.config.strategy {
            FloodStrategy::Epidemic => 1,
            FloodStrategy::SprayAndWait { copies } => copies,
        };
        let gateways = self.net.gateways();
        for (gi, &gw) in gateways.iter().enumerate() {
            if let Some(slot) = self.seen.get_mut(gw.index()).and_then(|row| row.get_mut(gi)) {
                *slot = Some(Seen { seq, hops: 0, copies: initial });
            }
        }
    }

    /// One synchronous broadcast round: everyone transmits against the
    /// pre-round snapshot, adoptions land in the double buffer.
    #[agentnet::hot_path]
    fn broadcast_round(&mut self, now: Step) {
        let FloodSim {
            net,
            config,
            tables,
            is_gateway,
            seen,
            next,
            advertised,
            rng,
            overhead,
            route_index,
            pool,
            ..
        } = self;
        let links = net.links();
        let gateways = net.gateways();
        for (next_row, row) in next.iter_mut().zip(seen.iter()) {
            next_row.clear();
            next_row.extend_from_slice(row);
        }
        for v in 0..seen.len() {
            let from = NodeId::new(v);
            let Some(row) = seen.get(v) else {
                continue;
            };
            for gi in 0..row.len() {
                let Some(s) = row.get(gi).copied().flatten() else {
                    continue;
                };
                let Some(&gw) = gateways.get(gi) else {
                    continue;
                };
                match config.strategy {
                    FloodStrategy::Epidemic => {
                        let already =
                            advertised.get(v).and_then(|a| a.get(gi)).copied().unwrap_or(0);
                        if s.seq <= already {
                            continue;
                        }
                        let mut sent = false;
                        for &w in links.out_neighbors(from) {
                            overhead.meeting_messages += 1;
                            sent = true;
                            // A route `w -> from` is only usable if `w`
                            // can actually reach `from` back.
                            if !links.has_edge(w, from) {
                                continue;
                            }
                            if is_gateway.get(w.index()).copied().unwrap_or(false) {
                                continue;
                            }
                            let cand =
                                Seen { seq: s.seq, hops: s.hops.saturating_add(1), copies: 1 };
                            let Some(slot) = next.get_mut(w.index()).and_then(|r| r.get_mut(gi))
                            else {
                                continue;
                            };
                            if better(cand, *slot) {
                                *slot = Some(cand);
                                if let Some(table) = tables.get_mut(w.index()) {
                                    table.install(RouteEntry::new(gw, from, cand.hops, now));
                                    overhead.table_writes += 1;
                                    route_index.mark_dirty(w);
                                }
                            }
                        }
                        if sent {
                            if let Some(a) = advertised.get_mut(v).and_then(|a| a.get_mut(gi)) {
                                *a = s.seq;
                            }
                        }
                    }
                    FloodStrategy::SprayAndWait { .. } => {
                        if s.copies == 0 {
                            // This node already direct-delivered its
                            // last copy; the seq stays as a dedup mark.
                            continue;
                        }
                        pool.clear();
                        for &w in links.out_neighbors(from) {
                            if !links.has_edge(w, from) {
                                continue;
                            }
                            if is_gateway.get(w.index()).copied().unwrap_or(false) {
                                continue;
                            }
                            let fresh = seen
                                .get(w.index())
                                .and_then(|r| r.get(gi))
                                .copied()
                                .flatten()
                                .is_none_or(|c| c.seq < s.seq);
                            if fresh {
                                pool.push(w);
                            }
                        }
                        if pool.is_empty() {
                            continue;
                        }
                        let pick = if s.copies == 1 {
                            // Direct-delivery phase: hand the last copy
                            // onward, preferring a neighbour adjacent
                            // to this announcement's gateway so the
                            // copy anchors connectivity instead of
                            // parking forever on an arbitrary node.
                            let adjacent = pool.iter().filter(|&&w| links.has_edge(w, gw)).count();
                            if adjacent > 0 {
                                let nth = rng.random_range(0..adjacent);
                                pool.iter()
                                    .enumerate()
                                    .filter(|(_, &w)| links.has_edge(w, gw))
                                    .nth(nth)
                                    .map(|(i, _)| i)
                                    .unwrap_or(0)
                            } else {
                                rng.random_range(0..pool.len())
                            }
                        } else {
                            rng.random_range(0..pool.len())
                        };
                        let Some(&w) = pool.get(pick) else {
                            continue;
                        };
                        overhead.meeting_messages += 1;
                        // Binary halving for spray, full handover for
                        // direct delivery: give floor(L/2).max(1), keep
                        // the rest (so 1 -> give 1, keep 0).
                        let give = (s.copies / 2).max(1);
                        let keep = s.copies - give;
                        let cand =
                            Seen { seq: s.seq, hops: s.hops.saturating_add(1), copies: give };
                        let mut adopted = false;
                        if let Some(slot) = next.get_mut(w.index()).and_then(|r| r.get_mut(gi)) {
                            if better(cand, *slot) {
                                // Same-wave copies already at the
                                // receiver (a raced adoption this
                                // round) are merged, not overwritten.
                                let merged = match *slot {
                                    Some(cur) if cur.seq == cand.seq => {
                                        cand.copies.saturating_add(cur.copies)
                                    }
                                    _ => cand.copies,
                                };
                                *slot = Some(Seen { copies: merged, ..cand });
                                adopted = true;
                                if let Some(table) = tables.get_mut(w.index()) {
                                    table.install(RouteEntry::new(gw, from, cand.hops, now));
                                    overhead.table_writes += 1;
                                    route_index.mark_dirty(w);
                                }
                            }
                        }
                        // Copy conservation: the giver's budget drops
                        // only if the receiver actually adopted; a
                        // raced handoff (another giver reached `w`
                        // first this round) costs nothing.
                        if adopted {
                            if let Some(slot) = next.get_mut(v).and_then(|r| r.get_mut(gi)) {
                                if let Some(cur) = slot.as_mut() {
                                    if cur.seq == s.seq {
                                        cur.copies = keep;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        std::mem::swap(seen, next);
    }

    /// Evicts route entries older than `max_age`.
    #[agentnet::hot_path]
    fn decay(&mut self, now: Step) {
        for (v, table) in self.tables.iter_mut().enumerate() {
            if table.evict_older_than(now, self.config.max_age) > 0 {
                self.route_index.mark_dirty(NodeId::new(v));
            }
        }
    }
}

impl TimeStepSim for FloodSim {
    fn step(&mut self, now: Step) {
        // The world changes first: nodes move, batteries decay.
        self.net.advance();
        self.decay(now);
        self.seed_announcements(now);
        self.broadcast_round(now);
        self.route_index.refresh(
            &self.tables,
            self.net.links(),
            &self.is_gateway,
            self.net.topology_version(),
        );
        let c = self.route_index.connected_fraction(&self.live_gateways);
        self.connectivity.record(c);
    }
}

impl RoutingProtocol for FloodSim {
    fn kind(&self) -> ProtocolKind {
        match self.config.strategy {
            FloodStrategy::Epidemic => ProtocolKind::Epidemic,
            FloodStrategy::SprayAndWait { .. } => ProtocolKind::SprayAndWait,
        }
    }

    fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    fn live_gateways(&self) -> &[NodeId] {
        &self.live_gateways
    }

    fn connectivity_series(&self) -> &TimeSeries {
        &self.connectivity
    }

    fn overhead(&self) -> Overhead {
        self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_radio::NetworkBuilder;

    fn net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(40).gateways(3).target_edges(320).build(seed).unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            FloodConfig::epidemic().advert_period(0),
            FloodConfig::epidemic().max_age(0),
            FloodConfig::spray_and_wait(0),
        ] {
            assert!(FloodSim::new(net(1), bad, 1).is_err());
        }
        let empty = NetworkBuilder::new(10).gateways(0).build(1).unwrap();
        assert!(FloodSim::new(empty, FloodConfig::epidemic(), 1).is_err());
    }

    #[test]
    fn epidemic_floods_routes_to_most_nodes() {
        let mut s = FloodSim::new(net(3), FloodConfig::epidemic(), 7).unwrap();
        let outcome = RoutingProtocol::run(&mut s, 60);
        let late = outcome.mean_connectivity(30..60).unwrap();
        assert!(late > 0.3, "epidemic should blanket a dense static-ish net (got {late})");
        assert!(s.validate_tables(Step::new(60)).is_ok());
        assert!(RoutingProtocol::overhead(&s).meeting_messages > 0);
        // Flooding moves no agents.
        assert_eq!(RoutingProtocol::overhead(&s).migrations, 0);
    }

    #[test]
    fn spray_and_wait_spreads_but_respects_its_budget() {
        let mut s = FloodSim::new(net(3), FloodConfig::spray_and_wait(8), 7).unwrap();
        let outcome = RoutingProtocol::run(&mut s, 60);
        assert!(outcome.mean_connectivity(30..60).unwrap() > 0.0);
        assert!(s.validate_tables(Step::new(60)).is_ok());
        // Copy budgets halve: every held budget stays within the
        // initial L.
        for row in &s.seen {
            for seen in row.iter().flatten() {
                assert!(seen.copies <= 8);
            }
        }
    }

    #[test]
    fn spray_and_wait_default_budget_no_longer_starves() {
        // Regression for the wait-phase starvation bug: single-copy
        // holders used to park forever, so at most L nodes per wave
        // ever installed a route and delivery sat near 0.36. With the
        // direct-delivery phase the default budget must clear 0.8 on
        // the frozen net.
        let mut s = FloodSim::new(net(3), FloodConfig::spray_and_wait(8), 7).unwrap();
        let out = RoutingProtocol::run(&mut s, 200);
        let late = out.mean_connectivity(100..200).unwrap();
        assert!(late >= 0.8, "direct delivery should lift spray delivery (got {late})");
    }

    #[test]
    fn spray_copy_budget_is_conserved_per_wave() {
        // For every announcement wave, the copies held across the whole
        // network never exceed the initial budget L: handoffs move
        // copies, they don't mint them (and a rejected handoff must not
        // burn them either — the giver keeps its budget).
        const L: u32 = 8;
        let mut s = FloodSim::new(net(3), FloodConfig::spray_and_wait(L), 7).unwrap();
        for step in 0..120 {
            TimeStepSim::step(&mut s, Step::new(step));
            let g = s.net.gateways().len();
            for gi in 0..g {
                let mut per_seq: std::collections::BTreeMap<u64, u32> =
                    std::collections::BTreeMap::new();
                for row in &s.seen {
                    if let Some(seen) = row.get(gi).copied().flatten() {
                        *per_seq.entry(seen.seq).or_insert(0) += seen.copies;
                    }
                }
                for (seq, total) in per_seq {
                    assert!(
                        total <= L,
                        "gateway {gi} wave {seq} holds {total} copies (> {L}) at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn epidemic_outmessages_spray_and_wait() {
        let mut e = FloodSim::new(net(5), FloodConfig::epidemic(), 9).unwrap();
        let mut w = FloodSim::new(net(5), FloodConfig::spray_and_wait(8), 9).unwrap();
        let _ = RoutingProtocol::run(&mut e, 60);
        let _ = RoutingProtocol::run(&mut w, 60);
        assert!(
            RoutingProtocol::overhead(&e).meeting_messages
                > RoutingProtocol::overhead(&w).meeting_messages
        );
    }

    #[test]
    fn epidemic_runs_are_rng_free_and_deterministic() {
        let run = |seed: u64| {
            let mut s = FloodSim::new(net(2), FloodConfig::epidemic(), seed).unwrap();
            let out = RoutingProtocol::run(&mut s, 40);
            (out, s.tables.clone(), s.overhead)
        };
        // Epidemic ignores the seed entirely: same mobility, same run.
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn spray_runs_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let mut s = FloodSim::new(net(2), FloodConfig::spray_and_wait(8), seed).unwrap();
            let out = RoutingProtocol::run(&mut s, 40);
            (out, s.tables.clone(), s.overhead)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn recorded_connectivity_matches_from_scratch_reference() {
        let mut s = FloodSim::new(net(11), FloodConfig::epidemic(), 3).unwrap();
        let _ = RoutingProtocol::run(&mut s, 50);
        let last = s.connectivity.values().last().copied().unwrap();
        assert_eq!(last, RoutingProtocol::connectivity(&s));
    }
}
