//! Ant-colony routing (AntHocNet-style, the paper's citation \[9\]).
//!
//! A fixed population of *forward ants* wanders the network sampling
//! paths to the gateways "in a Monte Carlo fashion": each hop is drawn
//! with probability proportional to `(τ0 + pheromone)^β` over the
//! current out-neighbours, avoiding nodes already on the ant's path.
//! An ant that reaches a gateway immediately retraces its path
//! (the *backward ant*) depositing pheromone on every directed hop it
//! took — stronger near the gateway, weaker for long paths — and
//! respawns elsewhere; ants that exceed their TTL die silently.
//! Pheromone evaporates multiplicatively every step, so entries through
//! broken regions fade.
//!
//! A node forwards packets per gateway along its strongest pheromone
//! edge; the connectivity metric (identical to the agent simulations')
//! asks whether chasing those strongest edges over currently-live links
//! reaches some gateway.

use agentnet_engine::sim::{run_until, Step, TimeStepSim};
use agentnet_engine::TimeSeries;
use agentnet_graph::connectivity::reaches_any;
use agentnet_graph::{DiGraph, NodeId};
use agentnet_radio::WirelessNetwork;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Configuration of the ant-colony routing simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AcoConfig {
    /// Concurrent forward ants (respawned on delivery or death).
    pub population: usize,
    /// Exponent sharpening the pheromone preference (β ≥ 0; 0 = blind
    /// random walk).
    pub beta: f64,
    /// Multiplicative pheromone evaporation per step, in `[0, 1)`.
    pub evaporation: f64,
    /// Pheromone deposited by a successful ant, split along its path.
    pub deposit: f64,
    /// Maximum hops a forward ant may take before dying.
    pub ttl: u32,
    /// Baseline attractiveness of an unmarked edge (τ0 > 0 keeps
    /// exploration alive).
    pub tau0: f64,
}

impl AcoConfig {
    /// Defaults tuned for the paper's 250-node MANET.
    pub fn new(population: usize) -> Self {
        AcoConfig { population, beta: 2.0, evaporation: 0.02, deposit: 1.0, ttl: 50, tau0: 0.05 }
    }

    /// Sets the preference exponent β.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the evaporation rate.
    pub fn evaporation(mut self, rho: f64) -> Self {
        self.evaporation = rho;
        self
    }

    /// Sets the forward-ant TTL.
    pub fn ttl(mut self, ttl: u32) -> Self {
        self.ttl = ttl;
        self
    }

    fn validate(&self) -> Result<(), AcoError> {
        if self.population == 0 {
            return Err(AcoError::new("ant population must be positive"));
        }
        if !(0.0..1.0).contains(&self.evaporation) {
            return Err(AcoError::new("evaporation must be in [0, 1)"));
        }
        if self.beta < 0.0 || self.deposit <= 0.0 || self.tau0 <= 0.0 {
            return Err(AcoError::new("beta must be >= 0; deposit and tau0 positive"));
        }
        if self.ttl == 0 {
            return Err(AcoError::new("ttl must be positive"));
        }
        Ok(())
    }
}

/// Error constructing an [`AcoSim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcoError {
    reason: String,
}

impl AcoError {
    fn new(reason: &str) -> Self {
        AcoError { reason: reason.to_string() }
    }
}

impl fmt::Display for AcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid aco configuration: {}", self.reason)
    }
}

impl Error for AcoError {}

#[derive(Clone, Debug)]
struct ForwardAnt {
    path: Vec<NodeId>,
}

impl ForwardAnt {
    fn at(&self) -> NodeId {
        *self.path.last().expect("ant path is never empty")
    }
}

/// Per-node pheromone: `(gateway, neighbour) -> strength`.
///
/// A `BTreeMap` keyed by node-id pairs: `evaporate` iterates and prunes
/// the whole table each step, and hasher order must not leak into any
/// result (agentlint `no-unordered-iteration`). All reads are keyed, so
/// the ordered map changes no simulation output.
type Pheromone = BTreeMap<(NodeId, NodeId), f64>;

/// The ant-colony routing simulation.
#[derive(Clone, Debug)]
pub struct AcoSim {
    net: WirelessNetwork,
    config: AcoConfig,
    ants: Vec<ForwardAnt>,
    pheromone: Vec<Pheromone>,
    rng: SmallRng,
    connectivity: TimeSeries,
    ant_moves: u64,
    deliveries: u64,
}

impl AcoSim {
    /// Creates an ACO simulation; ants start on uniformly random nodes.
    ///
    /// # Errors
    ///
    /// Returns [`AcoError`] for invalid parameters, an empty network or
    /// a network without gateways.
    pub fn new(net: WirelessNetwork, config: AcoConfig, seed: u64) -> Result<Self, AcoError> {
        config.validate()?;
        let n = net.node_count();
        if n == 0 {
            return Err(AcoError::new("network must be nonempty"));
        }
        if net.gateways().is_empty() {
            return Err(AcoError::new("network needs at least one gateway"));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let ants = (0..config.population)
            .map(|_| ForwardAnt { path: vec![NodeId::new(rng.random_range(0..n))] })
            .collect();
        Ok(AcoSim {
            pheromone: vec![Pheromone::new(); n],
            net,
            config,
            ants,
            rng,
            connectivity: TimeSeries::new(),
            ant_moves: 0,
            deliveries: 0,
        })
    }

    /// The underlying wireless network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    /// Total ant migrations so far (the overhead currency shared with
    /// the paper's agents).
    pub fn ant_moves(&self) -> u64 {
        self.ant_moves
    }

    /// Forward ants that reached a gateway so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// The recorded connectivity series.
    pub fn connectivity_series(&self) -> &TimeSeries {
        &self.connectivity
    }

    /// Pheromone strength on the directed hop `(node, neighbour)`
    /// towards `gateway`.
    pub fn pheromone(&self, node: NodeId, gateway: NodeId, neighbor: NodeId) -> f64 {
        self.pheromone[node.index()].get(&(gateway, neighbor)).copied().unwrap_or(0.0)
    }

    /// Fraction of nodes whose strongest-pheromone chains reach a
    /// gateway over currently-live links.
    pub fn connectivity(&self) -> f64 {
        let links = self.net.links();
        let n = self.net.node_count();
        let gateways = self.net.gateways();
        let mut forwarding = DiGraph::new(n);
        for v in 0..n {
            let from = NodeId::new(v);
            if gateways.contains(&from) {
                continue;
            }
            // One forwarding edge per gateway: the strongest live hop.
            for &gw in gateways {
                let best = links
                    .out_neighbors(from)
                    .iter()
                    .filter_map(|&nbr| {
                        let tau = self.pheromone[v].get(&(gw, nbr)).copied().unwrap_or(0.0);
                        (tau > 0.0).then_some((nbr, tau))
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
                if let Some((nbr, _)) = best {
                    forwarding.add_edge(from, nbr);
                }
            }
        }
        let valid = reaches_any(&forwarding, gateways);
        valid.iter().filter(|&&v| v).count() as f64 / n as f64
    }

    /// Runs for exactly `steps` steps, recording connectivity per step.
    pub fn run(&mut self, steps: u64) -> TimeSeries {
        let _ = run_until(self, Step::new(steps));
        self.connectivity.clone()
    }

    fn evaporate(&mut self) {
        let keep = 1.0 - self.config.evaporation;
        for table in &mut self.pheromone {
            for tau in table.values_mut() {
                *tau *= keep;
            }
            table.retain(|_, tau| *tau > 1e-6);
        }
    }

    fn respawn(&mut self) -> ForwardAnt {
        let n = self.net.node_count();
        ForwardAnt { path: vec![NodeId::new(self.rng.random_range(0..n))] }
    }

    /// Weighted next-hop choice for a forward ant at `at`: each live
    /// out-neighbour weighs `(τ0 + Σ_gw τ)^β`, nodes already on the path
    /// are excluded unless that empties the pool.
    fn choose_hop(&mut self, ant: &ForwardAnt) -> Option<NodeId> {
        let at = ant.at();
        let links = self.net.links();
        let neighbors = links.out_neighbors(at);
        if neighbors.is_empty() {
            return None;
        }
        let fresh: Vec<NodeId> =
            neighbors.iter().copied().filter(|nbr| !ant.path.contains(nbr)).collect();
        let pool: &[NodeId] = if fresh.is_empty() { neighbors } else { &fresh };
        let table = &self.pheromone[at.index()];
        let gateways = self.net.gateways();
        let weights: Vec<f64> = pool
            .iter()
            .map(|&nbr| {
                let tau: f64 =
                    gateways.iter().map(|&gw| table.get(&(gw, nbr)).copied().unwrap_or(0.0)).sum();
                (self.config.tau0 + tau).powf(self.config.beta)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = self.rng.random_range(0.0..total);
        for (nbr, w) in pool.iter().zip(&weights) {
            if pick < *w {
                return Some(*nbr);
            }
            pick -= w;
        }
        Some(*pool.last().expect("pool is nonempty"))
    }

    /// Backward-ant phase: deposit pheromone along the delivered path.
    fn deposit(&mut self, path: &[NodeId]) {
        let gateway = *path.last().expect("delivered path ends at a gateway");
        let len = path.len() - 1; // hops
        for (i, pair) in path.windows(2).enumerate() {
            let (node, next) = (pair[0], pair[1]);
            // Stronger reinforcement for hops closer to the gateway and
            // for shorter paths overall.
            let remaining = (len - i) as f64;
            let amount = self.config.deposit / remaining;
            *self.pheromone[node.index()].entry((gateway, next)).or_insert(0.0) += amount;
        }
    }
}

impl TimeStepSim for AcoSim {
    fn step(&mut self, _now: Step) {
        self.net.advance();
        self.evaporate();

        let gateways: Vec<NodeId> = self.net.gateways().to_vec();
        for i in 0..self.ants.len() {
            let mut ant = std::mem::replace(&mut self.ants[i], ForwardAnt { path: Vec::new() });
            // A stranded ant (no out-links) waits in place.
            if let Some(next) = self.choose_hop(&ant) {
                ant.path.push(next);
                self.ant_moves += 1;
                if gateways.contains(&next) {
                    self.deposit(&ant.path);
                    self.deliveries += 1;
                    ant = self.respawn();
                } else if ant.path.len() as u32 > self.config.ttl {
                    ant = self.respawn();
                }
            }
            self.ants[i] = ant;
        }

        let c = self.connectivity();
        self.connectivity.record(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_radio::NetworkBuilder;

    fn net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(50).gateways(4).target_edges(400).build(seed).unwrap()
    }

    fn static_net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(50)
            .gateways(4)
            .target_edges(400)
            .mobile_fraction(0.0)
            .build(seed)
            .unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let n = net(1);
        assert!(AcoSim::new(n.clone(), AcoConfig::new(0), 1).is_err());
        assert!(AcoSim::new(n.clone(), AcoConfig::new(5).evaporation(1.0), 1).is_err());
        assert!(AcoSim::new(n.clone(), AcoConfig::new(5).ttl(0), 1).is_err());
        let no_gw = NetworkBuilder::new(10).build(1).unwrap();
        assert!(AcoSim::new(no_gw, AcoConfig::new(5), 1).is_err());
    }

    #[test]
    fn connectivity_rises_from_zero() {
        let mut sim = AcoSim::new(net(2), AcoConfig::new(40), 3).unwrap();
        let series = sim.run(150);
        let first = series.values()[0];
        let late = series.window_mean(100..150).unwrap();
        assert!(late > first, "pheromone routing never improved: {first} -> {late}");
        assert!(late > 0.2, "late ACO connectivity too low: {late}");
        assert!(sim.deliveries() > 0, "no ant ever reached a gateway");
    }

    #[test]
    fn deposits_only_on_walked_directed_hops() {
        let mut sim = AcoSim::new(static_net(3), AcoConfig::new(20), 5).unwrap();
        let links = sim.network().links().clone();
        for s in 0..60 {
            sim.step(Step::new(s));
        }
        for (v, table) in sim.pheromone.iter().enumerate() {
            for (&(gw, nbr), &tau) in table {
                assert!(tau > 0.0);
                assert!(sim.network().gateways().contains(&gw));
                assert!(
                    links.has_edge(NodeId::new(v), nbr),
                    "pheromone on a non-existent static link {v}->{nbr}"
                );
            }
        }
    }

    #[test]
    fn evaporation_fades_unreinforced_trails() {
        let mut sim = AcoSim::new(static_net(4), AcoConfig::new(10).evaporation(0.5), 7).unwrap();
        for s in 0..30 {
            sim.step(Step::new(s));
        }
        // Kill all ants' ability to reinforce by removing them.
        sim.ants.clear();
        let before: f64 = sim.pheromone.iter().map(|t| t.values().sum::<f64>()).sum();
        for s in 30..60 {
            sim.step(Step::new(s));
        }
        let after: f64 = sim.pheromone.iter().map(|t| t.values().sum::<f64>()).sum();
        assert!(after < before * 0.01, "pheromone failed to evaporate: {before} -> {after}");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = AcoSim::new(net(5), AcoConfig::new(20), 9).unwrap().run(60);
        let b = AcoSim::new(net(5), AcoConfig::new(20), 9).unwrap().run(60);
        assert_eq!(a, b);
        let c = AcoSim::new(net(5), AcoConfig::new(20), 10).unwrap().run(60);
        assert_ne!(a, c);
    }

    #[test]
    fn more_ants_means_higher_connectivity() {
        let small = AcoSim::new(net(6), AcoConfig::new(5), 1)
            .unwrap()
            .run(150)
            .window_mean(100..150)
            .unwrap();
        let large = AcoSim::new(net(6), AcoConfig::new(80), 1)
            .unwrap()
            .run(150)
            .window_mean(100..150)
            .unwrap();
        assert!(large > small, "a bigger colony ({large:.3}) should beat a tiny one ({small:.3})");
    }

    #[test]
    fn ant_moves_are_counted() {
        let mut sim = AcoSim::new(net(7), AcoConfig::new(10), 2).unwrap();
        let _ = sim.run(20);
        assert!(sim.ant_moves() > 0);
        assert!(sim.ant_moves() <= 10 * 20);
    }
}
