//! A node-run distance-vector protocol (Bellman-Ford / DSDV-lite).
//!
//! The paper's agents assume "the nodes themselves run no programs; all
//! topology mapping relies on the operation of the agents". This module
//! is the opposite design point: every node broadcasts its gateway
//! distance vector to its radio neighbourhood every step, and
//! neighbours relax their entries Bellman-Ford style. Entries age out
//! when not refreshed (staleness beats count-to-infinity in a network
//! this dynamic), and a hop-count cap bounds residual loops.
//!
//! Because the radio links are *directed*, a node `w` only adopts a
//! route via `v` when it both heard the advertisement (link `v -> w`)
//! and can actually forward back (link `w -> v`).
//!
//! The point of the baseline: near-ideal connectivity, at the price of
//! `O(nodes)` broadcasts and `O(links)` receptions *every step* —
//! against which the agents' `O(population)` migrations are cheap.

use agentnet_engine::sim::{run_until, Step, TimeStepSim};
use agentnet_engine::TimeSeries;
use agentnet_graph::connectivity::reaches_any;
use agentnet_graph::{DiGraph, NodeId};
use agentnet_radio::WirelessNetwork;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Configuration of the distance-vector baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvConfig {
    /// Steps an entry survives without being refreshed by an
    /// advertisement.
    pub max_age: u32,
    /// Maximum usable hop count (split-horizon-free loop damping).
    pub max_dist: u32,
}

impl Default for DvConfig {
    fn default() -> Self {
        DvConfig { max_age: 3, max_dist: 32 }
    }
}

impl DvConfig {
    fn validate(&self) -> Result<(), DvError> {
        if self.max_age == 0 || self.max_dist == 0 {
            return Err(DvError::new("max_age and max_dist must be positive"));
        }
        Ok(())
    }
}

/// Error constructing a [`DvSim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DvError {
    reason: String,
}

impl DvError {
    fn new(reason: &str) -> Self {
        DvError { reason: reason.to_string() }
    }
}

impl fmt::Display for DvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distance-vector configuration: {}", self.reason)
    }
}

impl Error for DvError {}

/// One route entry: distance to a gateway via a next hop, with age.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvEntry {
    /// Hop count to the gateway.
    pub dist: u32,
    /// Forwarding neighbour.
    pub next: NodeId,
    /// Steps since last refreshed.
    pub age: u32,
}

/// The distance-vector routing simulation.
#[derive(Clone, Debug)]
pub struct DvSim {
    net: WirelessNetwork,
    config: DvConfig,
    /// `tables[node][gateway_index]`.
    tables: Vec<Vec<Option<DvEntry>>>,
    gateway_index: Vec<Option<usize>>,
    connectivity: TimeSeries,
    broadcasts: u64,
    receptions: u64,
}

impl DvSim {
    /// Creates a distance-vector simulation over the network.
    ///
    /// # Errors
    ///
    /// Returns [`DvError`] for invalid parameters, an empty network or a
    /// network without gateways.
    pub fn new(net: WirelessNetwork, config: DvConfig) -> Result<Self, DvError> {
        config.validate()?;
        let n = net.node_count();
        if n == 0 {
            return Err(DvError::new("network must be nonempty"));
        }
        if net.gateways().is_empty() {
            return Err(DvError::new("network needs at least one gateway"));
        }
        let mut gateway_index = vec![None; n];
        for (i, &g) in net.gateways().iter().enumerate() {
            gateway_index[g.index()] = Some(i);
        }
        let gw_count = net.gateways().len();
        Ok(DvSim {
            tables: vec![vec![None; gw_count]; n],
            gateway_index,
            net,
            config,
            connectivity: TimeSeries::new(),
            broadcasts: 0,
            receptions: 0,
        })
    }

    /// The underlying wireless network.
    pub fn network(&self) -> &WirelessNetwork {
        &self.net
    }

    /// Advertisements broadcast so far (one per node per step).
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Advertisement receptions so far (one per live link per step).
    pub fn receptions(&self) -> u64 {
        self.receptions
    }

    /// The entry of `node` towards `gateway`, if any.
    pub fn entry(&self, node: NodeId, gateway: NodeId) -> Option<DvEntry> {
        let gi = self.gateway_index[gateway.index()]?;
        self.tables[node.index()][gi]
    }

    /// The recorded connectivity series.
    pub fn connectivity_series(&self) -> &TimeSeries {
        &self.connectivity
    }

    /// Fraction of nodes whose next-hop chains reach a gateway over
    /// currently-live links — the same metric as the agent simulations.
    pub fn connectivity(&self) -> f64 {
        let links = self.net.links();
        let n = self.net.node_count();
        let gateways = self.net.gateways();
        let mut forwarding = DiGraph::new(n);
        for v in 0..n {
            let from = NodeId::new(v);
            if self.gateway_index[v].is_some() {
                continue;
            }
            for entry in self.tables[v].iter().flatten() {
                if links.has_edge(from, entry.next) {
                    forwarding.add_edge(from, entry.next);
                }
            }
        }
        let valid = reaches_any(&forwarding, gateways);
        valid.iter().filter(|&&ok| ok).count() as f64 / n as f64
    }

    /// Runs for exactly `steps` steps, recording connectivity per step.
    pub fn run(&mut self, steps: u64) -> TimeSeries {
        let _ = run_until(self, Step::new(steps));
        self.connectivity.clone()
    }

    /// The distance vector `v` advertises: gateway index → distance.
    fn vector_of(&self, v: usize) -> Vec<Option<u32>> {
        let gw_count = self.net.gateways().len();
        let mut out = vec![None; gw_count];
        if let Some(gi) = self.gateway_index[v] {
            out[gi] = Some(0);
        }
        for (gi, slot) in out.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(e) = self.tables[v][gi] {
                    *slot = Some(e.dist);
                }
            }
        }
        out
    }
}

impl TimeStepSim for DvSim {
    fn step(&mut self, _now: Step) {
        self.net.advance();
        let links = self.net.links().clone();
        let n = self.net.node_count();

        // Age and expire.
        for table in &mut self.tables {
            for slot in table.iter_mut() {
                if let Some(e) = slot {
                    e.age += 1;
                    if e.age > self.config.max_age {
                        *slot = None;
                    }
                }
            }
        }

        // One synchronous advertisement round: every node broadcasts its
        // (pre-round) vector; hearers relax. Using the pre-round snapshot
        // keeps the update order-independent and hence deterministic.
        let vectors: Vec<Vec<Option<u32>>> = (0..n).map(|v| self.vector_of(v)).collect();
        self.broadcasts += n as u64;
        for (v, vector) in vectors.iter().enumerate() {
            let from = NodeId::new(v);
            for &w in links.out_neighbors(from) {
                self.receptions += 1;
                // w heard v; w can only use v if it can transmit back.
                if !links.has_edge(w, from) {
                    continue;
                }
                for (gi, dist) in vector.iter().enumerate() {
                    let Some(dist) = dist else { continue };
                    let candidate = dist + 1;
                    if candidate > self.config.max_dist {
                        continue;
                    }
                    if self.gateway_index[w.index()].is_some() {
                        continue; // gateways need no routes
                    }
                    let slot = &mut self.tables[w.index()][gi];
                    let adopt = match slot {
                        None => true,
                        // Refresh from the same next hop, or strictly
                        // better distance from anywhere.
                        Some(e) => e.next == from || candidate < e.dist,
                    };
                    if adopt {
                        *slot = Some(DvEntry { dist: candidate, next: from, age: 0 });
                    }
                }
            }
        }

        let c = self.connectivity();
        self.connectivity.record(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_radio::NetworkBuilder;

    fn net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(50).gateways(4).target_edges(400).build(seed).unwrap()
    }

    fn static_net(seed: u64) -> WirelessNetwork {
        NetworkBuilder::new(50)
            .gateways(4)
            .target_edges(400)
            .mobile_fraction(0.0)
            .build(seed)
            .unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(DvSim::new(net(1), DvConfig { max_age: 0, max_dist: 4 }).is_err());
        assert!(DvSim::new(net(1), DvConfig { max_age: 3, max_dist: 0 }).is_err());
        let no_gw = NetworkBuilder::new(10).build(1).unwrap();
        assert!(DvSim::new(no_gw, DvConfig::default()).is_err());
    }

    #[test]
    fn static_network_converges_to_near_full_reachability() {
        let network = static_net(2);
        let upper = network.reachability_upper_bound();
        let mut sim = DvSim::new(network, DvConfig::default()).unwrap();
        let series = sim.run(60);
        let late = series.window_mean(40..60).unwrap();
        // The protocol floods every step, so it should track the
        // bidirectional-usable part of the reachability bound closely.
        assert!(late > 0.8 * upper, "dv connectivity {late:.3} vs reachability {upper:.3}");
    }

    #[test]
    fn dynamic_network_still_achieves_high_connectivity() {
        let mut sim = DvSim::new(net(3), DvConfig::default()).unwrap();
        let series = sim.run(150);
        let late = series.window_mean(100..150).unwrap();
        assert!(late > 0.5, "dv on dynamic net too low: {late:.3}");
    }

    #[test]
    fn entries_expire_without_refresh() {
        let mut sim = DvSim::new(static_net(4), DvConfig { max_age: 2, max_dist: 32 }).unwrap();
        let _ = sim.run(20);
        // Freeze advertisements by clearing gateway status: simulate by
        // checking ages are always <= max_age instead.
        for table in &sim.tables {
            for e in table.iter().flatten() {
                assert!(e.age <= 2);
            }
        }
    }

    #[test]
    fn distances_are_consistent_with_neighbors_on_static_net() {
        let mut sim = DvSim::new(static_net(5), DvConfig::default()).unwrap();
        let _ = sim.run(40);
        let gws = sim.network().gateways().to_vec();
        for v in 0..sim.network().node_count() {
            let node = NodeId::new(v);
            for &gw in &gws {
                if let Some(e) = sim.entry(node, gw) {
                    // The next hop either is the gateway (dist 1) or has
                    // an entry one closer (or is a gateway itself).
                    if e.dist == 1 {
                        assert_eq!(e.next, gw);
                    } else {
                        let next_entry = sim.entry(e.next, gw);
                        let next_is_gw = e.next == gw;
                        assert!(
                            next_is_gw || next_entry.is_some_and(|ne| ne.dist <= e.dist),
                            "inconsistent dv chain at {node} towards {gw}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn message_counters_scale_with_network_size() {
        let mut sim = DvSim::new(net(6), DvConfig::default()).unwrap();
        let _ = sim.run(10);
        assert_eq!(sim.broadcasts(), 50 * 10);
        assert!(sim.receptions() > sim.broadcasts(), "avg degree > 1 expected");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = DvSim::new(net(7), DvConfig::default()).unwrap().run(40);
        let b = DvSim::new(net(7), DvConfig::default()).unwrap().run(40);
        assert_eq!(a, b);
    }

    #[test]
    fn gateways_hold_no_routes() {
        let mut sim = DvSim::new(net(8), DvConfig::default()).unwrap();
        let _ = sim.run(30);
        for &gw in sim.network().gateways() {
            for (i, slot) in sim.tables[gw.index()].iter().enumerate() {
                assert!(slot.is_none(), "gateway {gw} holds a route to gateway #{i}");
            }
        }
    }
}
