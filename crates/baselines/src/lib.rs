//! Comparator routing systems for the `agentnet` study.
//!
//! The paper situates its agents against two families of related work,
//! both of which we implement so the comparison is runnable:
//!
//! * [`aco`] — **ant-colony routing** in the style of AntHocNet
//!   (Di Caro, Ducatelle & Gambardella, cited as \[9\]): ant agents
//!   sample paths to gateways "in a Monte Carlo fashion"; successful
//!   ants retrace their path depositing pheromone, failed ones leave
//!   nothing; pheromone evaporates; packets follow the pheromone
//!   gradient.
//! * [`distance_vector`] — a **node-run distance-vector protocol**
//!   (Bellman-Ford / DSDV-lite): the paper's agents assume "the nodes
//!   themselves run no programs", so this is the opposite pole — every
//!   node advertises its gateway distances to its radio neighbourhood
//!   every step. It approximates the best connectivity money can buy
//!   and shows what that costs in messages.
//!
//! A third family joins them for the protocol zoo:
//!
//! * [`flooding`] — **epidemic and binary spray-and-wait** DTN-style
//!   baselines: gateways flood sequence-numbered announcements, either
//!   unboundedly (epidemic, the delivery ceiling) or under a halving
//!   copy budget (spray-and-wait, bounded overhead). Both implement
//!   the [`agentnet_core::routing::RoutingProtocol`] trait, and
//!   [`zoo`] builds any arm of the zoo — including the agent-based
//!   arms from `agentnet-core` — as one boxed trait object.
//!
//! All simulations run on the same [`agentnet_radio::WirelessNetwork`]
//! substrate and report the same connectivity metric (fraction of nodes
//! whose forwarding chain reaches a gateway over currently-live links),
//! so numbers are directly comparable with the paper's agents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aco;
pub mod distance_vector;
pub mod flooding;
pub mod zoo;

pub use aco::{AcoConfig, AcoSim};
pub use distance_vector::{DvConfig, DvSim};
pub use flooding::{FloodConfig, FloodError, FloodSim, FloodStrategy};
pub use zoo::{build_protocol, ZooParams};
