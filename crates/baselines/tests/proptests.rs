//! Property-based tests for the baseline routing systems.

use agentnet_baselines::zoo::{build_protocol, ZooParams};
use agentnet_baselines::{AcoConfig, AcoSim, DvConfig, DvSim};
use agentnet_core::routing::ProtocolKind;
use agentnet_engine::sim::{Step, TimeStepSim};
use agentnet_graph::NodeId;
use agentnet_radio::NetworkBuilder;
use proptest::prelude::*;

fn network(seed: u64, nodes: usize, gateways: usize) -> agentnet_radio::WirelessNetwork {
    NetworkBuilder::new(nodes)
        .gateways(gateways)
        .min_initial_reachability(0.0)
        .build(seed)
        .expect("network builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aco_connectivity_is_always_a_fraction(
        seed in 0u64..32,
        ants in 1usize..40,
        steps in 1u64..40,
    ) {
        let mut sim = AcoSim::new(network(seed, 30, 2), AcoConfig::new(ants), seed).unwrap();
        let series = sim.run(steps);
        prop_assert_eq!(series.len() as u64, steps);
        for &v in series.values() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn aco_pheromone_is_nonnegative_and_gateway_keyed(
        seed in 0u64..16,
        steps in 1u64..30,
    ) {
        let mut sim = AcoSim::new(network(seed, 30, 3), AcoConfig::new(10), seed).unwrap();
        let _ = sim.run(steps);
        let gws: Vec<NodeId> = sim.network().gateways().to_vec();
        for v in 0..sim.network().node_count() {
            let node = NodeId::new(v);
            for &gw in &gws {
                for nbr in (0..sim.network().node_count()).map(NodeId::new) {
                    let tau = sim.pheromone(node, gw, nbr);
                    prop_assert!(tau >= 0.0);
                }
            }
        }
    }

    #[test]
    fn aco_ant_moves_bounded_by_population_times_steps(
        seed in 0u64..16,
        ants in 1usize..30,
        steps in 1u64..30,
    ) {
        let mut sim = AcoSim::new(network(seed, 25, 2), AcoConfig::new(ants), seed).unwrap();
        let _ = sim.run(steps);
        prop_assert!(sim.ant_moves() <= ants as u64 * steps);
    }

    #[test]
    fn dv_connectivity_is_always_a_fraction(
        seed in 0u64..32,
        steps in 1u64..40,
        max_age in 1u32..6,
    ) {
        let cfg = DvConfig { max_age, max_dist: 32 };
        let mut sim = DvSim::new(network(seed, 30, 2), cfg).unwrap();
        let series = sim.run(steps);
        for &v in series.values() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn dv_entries_respect_age_and_distance_caps(
        seed in 0u64..16,
        steps in 1u64..25,
        max_age in 1u32..5,
        max_dist in 1u32..12,
    ) {
        let cfg = DvConfig { max_age, max_dist };
        let mut sim = DvSim::new(network(seed, 30, 3), cfg).unwrap();
        for s in 0..steps {
            sim.step(Step::new(s));
            for v in 0..sim.network().node_count() {
                for &gw in sim.network().gateways() {
                    if let Some(e) = sim.entry(NodeId::new(v), gw) {
                        prop_assert!(e.age <= max_age);
                        prop_assert!(e.dist >= 1 && e.dist <= max_dist);
                    }
                }
            }
        }
    }

    #[test]
    fn dv_broadcast_count_is_exact(seed in 0u64..16, steps in 1u64..20) {
        let nodes = 25usize;
        let mut sim = DvSim::new(network(seed, nodes, 2), DvConfig::default()).unwrap();
        let _ = sim.run(steps);
        prop_assert_eq!(sim.broadcasts(), nodes as u64 * steps);
    }

    /// Every zoo arm is byte-identical at any `advance_shards` count:
    /// sharding the radio step may never leak into protocol state
    /// (tables, connectivity series, overhead counters). Mirrors the
    /// radio crate's sharding proptest, one layer up.
    #[test]
    fn zoo_arms_are_shard_count_invariant(
        seed in 0u64..16,
        kind_idx in 0usize..5,
        population in 1usize..24,
        shards_raw in 0usize..16,
    ) {
        let kind = ProtocolKind::ALL[kind_idx];
        // 0 => the serial baseline, 15 => more shards than nodes.
        let shards = match shards_raw {
            0 => 1,
            15 => 200,
            s => s + 1,
        };
        let params = ZooParams::with_population(population);
        let build = |shard_count: usize| {
            let net = NetworkBuilder::new(30)
                .gateways(3)
                .min_initial_reachability(0.0)
                .advance_shards(shard_count)
                .build(seed)
                .expect("network builds");
            build_protocol(kind, net, &params, seed ^ 0xA11CE).expect("arm builds")
        };
        let mut serial = build(1);
        let mut sharded = build(shards);
        let out_serial = serial.run(40);
        let out_sharded = sharded.run(40);
        prop_assert_eq!(out_serial, out_sharded);
        prop_assert_eq!(serial.connectivity_series(), sharded.connectivity_series());
        prop_assert_eq!(serial.tables(), sharded.tables());
        prop_assert_eq!(serial.overhead(), sharded.overhead());
    }
}
