//! Validation battery for the `agentnet` simulator: per-step invariant
//! sweeps plus metamorphic and differential checks.
//!
//! A stochastic simulation can drift into wrongness without failing a
//! single unit test — a biased tie-break, a silently re-seeded RNG, a
//! routing chain validated against stale links. This crate attacks that
//! from three directions:
//!
//! * **Invariant sweeps** — the standard invariant sets from
//!   `agentnet_core::validate` and `agentnet_radio::invariants` are
//!   threaded through representative mapping and routing scenarios
//!   (static, topology drift, dynamic network, gateway failure), checked
//!   after every simulated step.
//! * **Metamorphic relations** — transformations with known effect:
//!   relabeling nodes permutes results without changing them
//!   (graph metrics and distance-vector tables are *equivariant*), and
//!   growing the agent population never slows mapping down.
//! * **Differential checks** — independent implementations must agree:
//!   the executor returns byte-identical results across job counts and
//!   cache states, distance-vector routing on a frozen topology matches
//!   breadth-first-search distances, and agent route claims never beat
//!   the true shortest path.
//!
//! [`run_battery`] runs everything and returns a [`ValidationReport`]
//! renderable as a pass/fail table; the `repro validate` subcommand is a
//! thin CLI wrapper around it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use agentnet_baselines::distance_vector::{DvConfig, DvSim};
use agentnet_baselines::flooding::{FloodConfig, FloodSim};
use agentnet_baselines::zoo::{build_protocol, ZooParams};
use agentnet_core::mapping::{MappingConfig, MappingSim};
use agentnet_core::policy::{MappingPolicy, RoutingPolicy};
use agentnet_core::routing::{
    AntNetConfig, AntNetSim, ProtocolKind, RoutingConfig, RoutingProtocol, RoutingSim,
    StigRouteConfig, StigRouteSim,
};
use agentnet_core::validate::{mapping_invariants, routing_invariants};
use agentnet_engine::invariant::{invariant_fn, InvariantSet, InvariantViolation};
use agentnet_engine::table::Table;
use agentnet_engine::{Executor, ResultCache, SeedSequence, Step, TimeStepSim};
use agentnet_graph::connectivity::reaches_any;
use agentnet_graph::generators::{erdos_renyi, grid, GeometricConfig};
use agentnet_graph::geometry::{Point2, Rect};
use agentnet_graph::paths::{bfs_distances, diameter, hop_distance};
use agentnet_graph::{DiGraph, NodeId};
use agentnet_radio::{
    BatteryModel, BatteryState, Motion, NetworkBuilder, NodeKind, WirelessNetwork, WirelessNode,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// What kind of evidence a check contributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckKind {
    /// A per-step simulation invariant swept across scenarios.
    Invariant,
    /// A metamorphic relation (transformed input, predictable output).
    Metamorphic,
    /// A differential comparison against an independent implementation.
    Differential,
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CheckKind::Invariant => "invariant",
            CheckKind::Metamorphic => "metamorphic",
            CheckKind::Differential => "differential",
        };
        f.write_str(s)
    }
}

/// Outcome of one validation check.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckResult {
    /// Stable check name.
    pub name: String,
    /// Evidence category.
    pub kind: CheckKind,
    /// `true` if the check held.
    pub passed: bool,
    /// What was verified, or how it failed.
    pub details: String,
}

impl CheckResult {
    fn pass(name: &str, kind: CheckKind, details: String) -> Self {
        CheckResult { name: name.to_string(), kind, passed: true, details }
    }

    fn fail(name: &str, kind: CheckKind, details: String) -> Self {
        CheckResult { name: name.to_string(), kind, passed: false, details }
    }
}

/// Aggregated outcome of a validation battery.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    checks: Vec<CheckResult>,
}

impl ValidationReport {
    /// All check results, in execution order.
    pub fn checks(&self) -> &[CheckResult] {
        &self.checks
    }

    /// `true` when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failed checks, in execution order.
    pub fn failures(&self) -> Vec<&CheckResult> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Number of checks run.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// `true` when no checks were run.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Renders the report as a pass/fail table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(["check", "kind", "status", "details"]);
        for c in &self.checks {
            table.push_row([
                c.name.clone(),
                c.kind.to_string(),
                if c.passed { "PASS".to_string() } else { "FAIL".to_string() },
                c.details.clone(),
            ]);
        }
        table
    }

    fn push(&mut self, check: CheckResult) {
        self.checks.push(check);
    }
}

/// Configuration of a battery run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidateConfig {
    /// Master seed all scenarios derive from.
    pub seed: u64,
    /// Registers a deliberately failing invariant, proving the battery
    /// actually fails (and exits non-zero) when a violation occurs.
    pub inject_failure: bool,
    /// Restricts the battery to one protocol-zoo arm's checks (the CI
    /// protocol-matrix job runs one arm per matrix cell); `None` runs
    /// everything — the classic battery plus every arm.
    pub protocol: Option<ProtocolKind>,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig { seed: 2010, inject_failure: false, protocol: None }
    }
}

/// Runs the battery: invariant sweeps, metamorphic relations and
/// differential comparisons — restricted to one zoo arm's checks when
/// [`ValidateConfig::protocol`] is set.
pub fn run_battery(cfg: ValidateConfig) -> ValidationReport {
    let mut report = ValidationReport::default();
    if let Some(kind) = cfg.protocol {
        report.push(check_zoo_tables(kind, cfg.seed));
        report.push(check_zoo_claims(kind, cfg.seed));
        if cfg.inject_failure {
            report.push(check_injected_failure(cfg.seed));
        }
        return report;
    }
    run_invariant_sweeps(cfg, &mut report);
    report.push(check_relabel_graph(cfg.seed));
    report.push(check_relabel_distance_vector(cfg.seed));
    report.push(check_population_monotone(cfg.seed));
    report.push(check_executor_determinism(cfg.seed));
    report.push(check_grid_shard_invariance(cfg.seed));
    report.push(check_grid_incremental_differential(cfg.seed));
    report.push(check_dv_matches_bfs(cfg.seed));
    report.push(check_agent_claims_vs_bfs(cfg.seed));
    for kind in ProtocolKind::ALL {
        report.push(check_zoo_tables(kind, cfg.seed));
        report.push(check_zoo_claims(kind, cfg.seed));
    }
    report.push(check_zoo_static_reachability(cfg.seed));
    report.push(check_spray_default_budget_delivery(cfg.seed));
    if cfg.inject_failure {
        report.push(check_injected_failure(cfg.seed));
    }
    report
}

// ---------------------------------------------------------------------------
// Invariant sweeps
// ---------------------------------------------------------------------------

/// Runs the mapping scenarios (static-to-completion, topology drift) and
/// the routing scenarios (dynamic network, gateway failure) under their
/// standard invariant sets, then reports one row per invariant.
fn run_invariant_sweeps(cfg: ValidateConfig, report: &mut ValidationReport) {
    let mut failures: Vec<InvariantViolation> = Vec::new();
    let mut checked_steps = 0u64;

    // Mapping scenario 1: stigmergic team maps a static geometric
    // network to completion.
    {
        let g = GeometricConfig::new(30, 180).generate(cfg.seed).expect("buildable").graph;
        let mcfg = MappingConfig::new(MappingPolicy::Conscientious, 4).stigmergic(true);
        let mut sim = MappingSim::new(g, mcfg, cfg.seed).expect("valid config");
        let mut checks = mapping_invariants();
        match sim.run_checked(200_000, &mut checks) {
            Ok(out) => checked_steps += out.finishing_time.as_u64(),
            Err(v) => failures.push(v),
        }
    }

    // Mapping scenario 2: the topology drifts mid-run (a link pair dies,
    // a new one appears); the same stateful checks ride across the swap.
    {
        let g1 = grid(5, 5);
        let mcfg = MappingConfig::new(MappingPolicy::SuperConscientious, 3);
        let mut sim = MappingSim::new(g1.clone(), mcfg, cfg.seed ^ 0x51).expect("valid config");
        let mut checks = mapping_invariants();
        let mut g2 = g1;
        g2.remove_edge(NodeId::new(0), NodeId::new(1));
        g2.remove_edge(NodeId::new(1), NodeId::new(0));
        g2.add_edge(NodeId::new(0), NodeId::new(6));
        g2.add_edge(NodeId::new(6), NodeId::new(0));
        'drift: for phase in 0..2 {
            if phase == 1 {
                sim.set_graph(g2.clone());
            }
            for s in (phase * 80)..((phase + 1) * 80) {
                sim.step(Step::new(s));
                checked_steps += 1;
                if let Err(v) = checks.check_all(&sim, Step::new(s)) {
                    failures.push(v);
                    break 'drift;
                }
            }
        }
    }

    // Routing scenario 1: fully dynamic network (mobility, battery
    // decay) with communicating, stigmergic agents.
    {
        let net = NetworkBuilder::new(40)
            .gateways(3)
            .target_edges(320)
            .build(cfg.seed ^ 0x52)
            .expect("buildable");
        let rcfg =
            RoutingConfig::new(RoutingPolicy::OldestNode, 12).communication(true).stigmergic(true);
        let mut sim = RoutingSim::new(net, rcfg, cfg.seed).expect("valid config");
        let mut checks = routing_invariants();
        match sim.run_checked(80, &mut checks) {
            Ok(_) => checked_steps += 80,
            Err(v) => failures.push(v),
        }
    }

    // Routing scenario 2: static network, one gateway's uplink fails
    // mid-run; stepped manually so time stays monotone across the fault.
    {
        let net = NetworkBuilder::new(40)
            .gateways(3)
            .target_edges(320)
            .mobile_fraction(0.0)
            .build(cfg.seed ^ 0x53)
            .expect("buildable");
        let rcfg = RoutingConfig::new(RoutingPolicy::OldestNode, 15);
        let mut sim = RoutingSim::new(net, rcfg, cfg.seed).expect("valid config");
        let mut checks = routing_invariants();
        'fault: for s in 0..80u64 {
            if s == 40 {
                let victim = sim.network().gateways()[0];
                sim.fail_gateway(victim);
            }
            sim.step(Step::new(s));
            checked_steps += 1;
            if let Err(v) = checks.check_all(&sim, Step::new(s)) {
                failures.push(v);
                break 'fault;
            }
        }
    }

    let mut names = mapping_invariants().names();
    names.extend(routing_invariants().names());
    for name in names {
        match failures.iter().find(|v| v.invariant == name) {
            Some(v) => report.push(CheckResult::fail(name, CheckKind::Invariant, v.to_string())),
            None => report.push(CheckResult::pass(
                name,
                CheckKind::Invariant,
                format!("held across 4 scenarios ({checked_steps} checked steps total)"),
            )),
        }
    }
}

/// Registers an always-failing invariant and confirms the checked driver
/// reports it. The row itself is marked failed so the battery (and the
/// `repro validate` exit code) goes red — this is the canary proving a
/// violation cannot pass silently.
fn check_injected_failure(seed: u64) -> CheckResult {
    const NAME: &str = "injected-failure";
    let g = grid(4, 4);
    let mcfg = MappingConfig::new(MappingPolicy::Random, 2);
    let mut sim = MappingSim::new(g, mcfg, seed).expect("valid config");
    let mut checks = InvariantSet::new();
    checks.register(invariant_fn(NAME, |_sim: &MappingSim, _now| {
        Err("deliberate canary violation (--inject-failure)".to_string())
    }));
    match sim.run_checked(10, &mut checks) {
        Err(v) => CheckResult::fail(NAME, CheckKind::Invariant, format!("fired as expected: {v}")),
        Ok(_) => CheckResult::fail(
            NAME,
            CheckKind::Invariant,
            "canary did not fire: checked run ignored a failing invariant".to_string(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Metamorphic relations
// ---------------------------------------------------------------------------

/// A seeded Fisher-Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..i + 1);
        p.swap(i, j);
    }
    p
}

/// Relabeling the nodes of a digraph permutes its structure without
/// changing it: edge count, diameter and symmetry are invariant, and
/// pairwise hop distances are equivariant under the permutation.
fn check_relabel_graph(seed: u64) -> CheckResult {
    const NAME: &str = "relabel-graph-metrics";
    let n = 24;
    let g = erdos_renyi(n, 0.12, seed).expect("valid probability");
    let perm = permutation(n, seed ^ 0x9e37);
    let mut h = DiGraph::new(n);
    for v in g.nodes() {
        for &w in g.out_neighbors(v) {
            h.add_edge(NodeId::new(perm[v.index()]), NodeId::new(perm[w.index()]));
        }
    }
    if h.edge_count() != g.edge_count() {
        return CheckResult::fail(
            NAME,
            CheckKind::Metamorphic,
            format!("edge count changed: {} -> {}", g.edge_count(), h.edge_count()),
        );
    }
    if diameter(&g) != diameter(&h) {
        return CheckResult::fail(
            NAME,
            CheckKind::Metamorphic,
            format!("diameter changed: {:?} -> {:?}", diameter(&g), diameter(&h)),
        );
    }
    if g.is_symmetric() != h.is_symmetric() {
        return CheckResult::fail(NAME, CheckKind::Metamorphic, "symmetry changed".to_string());
    }
    for v in g.nodes() {
        for w in g.nodes() {
            let direct = hop_distance(&g, v, w);
            let relabeled =
                hop_distance(&h, NodeId::new(perm[v.index()]), NodeId::new(perm[w.index()]));
            if direct != relabeled {
                return CheckResult::fail(
                    NAME,
                    CheckKind::Metamorphic,
                    format!("hop distance {v}->{w} changed: {direct:?} -> {relabeled:?}"),
                );
            }
        }
    }
    CheckResult::pass(
        NAME,
        CheckKind::Metamorphic,
        format!("{n}-node relabeling preserved {} pairwise distances", n * n),
    )
}

/// Builds a frozen plane network of `n` mains-powered stationary nodes
/// with one shared radio range; the first two (pre-permutation) nodes
/// are gateways. With `perm`, node `perm[i]` takes old node `i`'s
/// position and role.
fn plane_network(n: usize, perm: Option<&[usize]>, seed: u64) -> WirelessNetwork {
    let arena = Rect::square(1000.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let positions: Vec<Point2> = (0..n)
        .map(|_| Point2::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
        .collect();
    let mut nodes: Vec<Option<WirelessNode>> = vec![None; n];
    for (i, &position) in positions.iter().enumerate() {
        let label = perm.map_or(i, |p| p[i]);
        nodes[label] = Some(WirelessNode {
            id: NodeId::new(label),
            position,
            nominal_range: 260.0,
            kind: if i < 2 { NodeKind::Gateway } else { NodeKind::Stationary },
            battery: BatteryState::mains(),
            motion: Motion::Stationary,
        });
    }
    let nodes = nodes.into_iter().map(|n| n.expect("permutation is a bijection")).collect();
    WirelessNetwork::from_nodes(arena, nodes, seed)
}

/// Distance-vector routing is equivariant under node relabeling: running
/// the protocol on a permuted copy of the network yields the permuted
/// tables and the identical connectivity series.
fn check_relabel_distance_vector(seed: u64) -> CheckResult {
    const NAME: &str = "relabel-dv-equivariance";
    let n = 24;
    let steps = 30;
    let perm = permutation(n, seed ^ 0x517c);
    let mut original =
        DvSim::new(plane_network(n, None, seed), DvConfig::default()).expect("valid network");
    let mut relabeled = DvSim::new(plane_network(n, Some(&perm), seed), DvConfig::default())
        .expect("valid network");
    let series_a = original.run(steps);
    let series_b = relabeled.run(steps);
    if series_a != series_b {
        return CheckResult::fail(
            NAME,
            CheckKind::Metamorphic,
            "connectivity series changed under relabeling".to_string(),
        );
    }
    for v in 0..n {
        for g in 0..2 {
            let direct = original.entry(NodeId::new(v), NodeId::new(g)).map(|e| e.dist);
            let mapped =
                relabeled.entry(NodeId::new(perm[v]), NodeId::new(perm[g])).map(|e| e.dist);
            if direct != mapped {
                return CheckResult::fail(
                    NAME,
                    CheckKind::Metamorphic,
                    format!("entry ({v} -> gw {g}) changed: {direct:?} -> {mapped:?}"),
                );
            }
        }
    }
    CheckResult::pass(
        NAME,
        CheckKind::Metamorphic,
        format!("tables of {n} nodes permuted exactly after {steps} steps"),
    )
}

/// Mean mapping finishing time never increases with population: agents
/// cooperate, so a larger team is at least as fast on average.
///
/// The relation holds in expectation; with finitely many replicates
/// adjacent means can tie within noise, so a step is only a violation
/// when it rises by more than 10 % + one step.
fn check_population_monotone(seed: u64) -> CheckResult {
    const NAME: &str = "population-monotone-mapping";
    let populations = [1usize, 4, 16];
    let replicates = 8u64;
    let mut means = Vec::with_capacity(populations.len());
    for &population in &populations {
        let mut total = 0u64;
        for r in 0..replicates {
            let g = GeometricConfig::new(40, 240).generate(seed ^ 0x77).expect("buildable").graph;
            let mcfg = MappingConfig::new(MappingPolicy::Conscientious, population);
            let mut sim = MappingSim::new(g, mcfg, seed.wrapping_add(r)).expect("valid config");
            let out = sim.run(200_000);
            if !out.finished {
                return CheckResult::fail(
                    NAME,
                    CheckKind::Metamorphic,
                    format!("population {population}, replicate {r} never finished"),
                );
            }
            total += out.finishing_time.as_u64();
        }
        means.push(total as f64 / replicates as f64);
    }
    for w in means.windows(2) {
        if w[1] > w[0] * 1.1 + 1.0 {
            return CheckResult::fail(
                NAME,
                CheckKind::Metamorphic,
                format!("mean finishing time rose with population: {means:?}"),
            );
        }
    }
    CheckResult::pass(
        NAME,
        CheckKind::Metamorphic,
        format!("mean finishing time never rose with population: {means:?}"),
    )
}

// ---------------------------------------------------------------------------
// Differential checks
// ---------------------------------------------------------------------------

/// Distinguishes cache directories when several batteries run in one
/// process (e.g. parallel tests).
static CACHE_EPOCH: AtomicUsize = AtomicUsize::new(0);

/// The executor is a pure scheduler: serial, parallel, cold-cache and
/// warm-resume configurations all serialize to the same bytes.
fn check_executor_determinism(seed: u64) -> CheckResult {
    const NAME: &str = "seed-determinism-executor";
    let graph = GeometricConfig::new(24, 140).generate(seed ^ 0x11).expect("buildable").graph;
    let job = |_i: usize, seeds: SeedSequence| -> Vec<f64> {
        let mcfg = MappingConfig::new(MappingPolicy::SuperConscientious, 3);
        let mut sim = MappingSim::new(graph.clone(), mcfg, seeds.seed()).expect("valid config");
        let out = sim.run(100_000);
        let mut row = vec![out.finishing_time.as_f64()];
        row.extend_from_slice(out.knowledge.values());
        row
    };
    let seeds = SeedSequence::new(seed).child(7);
    let runs = 8;
    // Unique-id generator for per-test temp dirs: the value is only
    // compared for distinctness, never used to order memory.
    // agentlint::allow(no-relaxed-atomics)
    let epoch = CACHE_EPOCH.fetch_add(1, Ordering::Relaxed);
    let cache_dir = std::env::temp_dir()
        .join(format!("agentnet-validate-cache-{}-{epoch}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let serial = Executor::serial().run_cells(NAME, 1, runs, seeds, job);
    let parallel = Executor::new(4).run_cells(NAME, 1, runs, seeds, job);
    let cold = Executor::new(2)
        .with_cache(ResultCache::new(&cache_dir), true)
        .run_cells(NAME, 1, runs, seeds, job);
    let warm = Executor::new(2)
        .with_cache(ResultCache::new(&cache_dir), true)
        .run_cells(NAME, 1, runs, seeds, job);
    let _ = std::fs::remove_dir_all(&cache_dir);

    let baseline = serde_json::to_string(&serial).expect("serializable");
    for (label, other) in [("jobs=4", &parallel), ("cold cache", &cold), ("warm resume", &warm)] {
        let bytes = serde_json::to_string(other).expect("serializable");
        if bytes != baseline {
            return CheckResult::fail(
                NAME,
                CheckKind::Differential,
                format!("{label} diverged from the serial run"),
            );
        }
    }
    CheckResult::pass(
        NAME,
        CheckKind::Differential,
        format!("{runs} replicates byte-identical across serial/parallel/cold/warm"),
    )
}

/// The spatial grid's sharded rebuild is a pure optimization: grid
/// contents, links, `topology_version` and every stat stay
/// byte-identical at shard counts {1, 2, 7, n} across a stepped mobile
/// network.
fn check_grid_shard_invariance(seed: u64) -> CheckResult {
    const NAME: &str = "grid-shard-invariance";
    let nodes = 120usize;
    let build = |shards: usize| {
        NetworkBuilder::new(nodes)
            .gateways(5)
            .mobile_fraction(0.4)
            .min_initial_reachability(0.0)
            .advance_shards(shards)
            .build(seed ^ 0x31)
            .expect("buildable")
    };
    let mut baseline = build(1);
    let shard_counts = [2usize, 7, nodes];
    let mut others: Vec<WirelessNetwork> = shard_counts.iter().map(|&s| build(s)).collect();
    for step in 0..40 {
        baseline.advance();
        for (net, &s) in others.iter_mut().zip(&shard_counts) {
            net.advance();
            let same = net.grid_cells() == baseline.grid_cells()
                && net.links() == baseline.links()
                && net.topology_version() == baseline.topology_version()
                && net.stats() == baseline.stats();
            if !same {
                return CheckResult::fail(
                    NAME,
                    CheckKind::Differential,
                    format!("shards={s} diverged from the sequential path at step {step}"),
                );
            }
        }
    }
    CheckResult::pass(
        NAME,
        CheckKind::Differential,
        format!("grid, links, topology and stats byte-identical at shard counts {{1, 2, 7, {nodes}}} over 40 steps"),
    )
}

/// Incremental grid maintenance is a pure optimization: with the
/// incremental path engaged (low mobility, mains power), grid contents,
/// links and `topology_version` stay byte-identical to a network that
/// always re-indexes from scratch.
fn check_grid_incremental_differential(seed: u64) -> CheckResult {
    const NAME: &str = "grid-incremental-differential";
    let build = |incremental: bool| {
        NetworkBuilder::new(150)
            .gateways(6)
            .mobile_fraction(0.02)
            .mobile_battery(BatteryModel::Mains)
            .min_initial_reachability(0.0)
            .grid_incremental(incremental)
            .build(seed ^ 0x37)
            .expect("buildable")
    };
    let mut with_inc = build(true);
    let mut without = build(false);
    for step in 0..60 {
        with_inc.advance();
        without.advance();
        let same = with_inc.grid_cells() == without.grid_cells()
            && with_inc.links() == without.links()
            && with_inc.topology_version() == without.topology_version();
        if !same {
            return CheckResult::fail(
                NAME,
                CheckKind::Differential,
                format!("incremental grid diverged from full rebuilds at step {step}"),
            );
        }
    }
    let engaged = with_inc.stats().grid_incremental_updates;
    if engaged == 0 {
        return CheckResult::fail(
            NAME,
            CheckKind::Differential,
            "incremental path never engaged — the comparison was vacuous".to_string(),
        );
    }
    CheckResult::pass(
        NAME,
        CheckKind::Differential,
        format!("{engaged} incremental refreshes byte-identical to full rebuilds over 60 steps"),
    )
}

/// On a frozen topology, converged distance-vector tables equal BFS
/// distances over the *usable* relay graph: links live in both
/// directions, with other gateways excluded (gateways advertise only
/// themselves, so they never relay foreign routes).
fn check_dv_matches_bfs(seed: u64) -> CheckResult {
    const NAME: &str = "dv-matches-bfs-on-frozen-topology";
    let net = NetworkBuilder::new(40)
        .gateways(3)
        .target_edges(320)
        .mobile_fraction(0.0)
        .build(seed ^ 0x21)
        .expect("buildable");
    let links = net.links().clone();
    let n = net.node_count();
    let gateways = net.gateways().to_vec();
    let mut is_gateway = vec![false; n];
    for &g in &gateways {
        is_gateway[g.index()] = true;
    }
    let config = DvConfig { max_age: 3, max_dist: 64 };
    let mut dv = DvSim::new(net, config).expect("valid network");
    let _ = dv.run(60);

    let mut compared = 0usize;
    for &gw in &gateways {
        let usable = |u: NodeId| u == gw || !is_gateway[u.index()];
        let mut relay = DiGraph::new(n);
        for v in links.nodes().filter(|&v| usable(v)) {
            for &w in links.out_neighbors(v) {
                if usable(w) && links.has_edge(w, v) {
                    relay.add_edge(v, w);
                }
            }
        }
        let dist = bfs_distances(&relay, gw);
        for v in (0..n).map(NodeId::new) {
            if is_gateway[v.index()] {
                continue;
            }
            let expected = if dist[v.index()] == usize::MAX || dist[v.index()] > 64 {
                None
            } else {
                Some(dist[v.index()] as u32)
            };
            let got = dv.entry(v, gw).map(|e| e.dist);
            if got != expected {
                return CheckResult::fail(
                    NAME,
                    CheckKind::Differential,
                    format!("{v} -> gw {gw}: dv says {got:?}, bfs says {expected:?}"),
                );
            }
            compared += 1;
        }
    }
    CheckResult::pass(
        NAME,
        CheckKind::Differential,
        format!("{compared} (node, gateway) distances agree with BFS"),
    )
}

/// On a frozen topology, every installed agent route claim is honest:
/// the fresh link it references is live, and its hop count never beats
/// the true shortest path from the gateway.
fn check_agent_claims_vs_bfs(seed: u64) -> CheckResult {
    const NAME: &str = "agent-claims-bounded-by-bfs";
    let net = NetworkBuilder::new(40)
        .gateways(3)
        .target_edges(320)
        .mobile_fraction(0.0)
        .build(seed ^ 0x31)
        .expect("buildable");
    let rcfg = RoutingConfig::new(RoutingPolicy::OldestNode, 15).communication(true);
    let mut sim = RoutingSim::new(net, rcfg, seed).expect("valid config");
    let _ = sim.run(60);
    let links = sim.network().links().clone();
    let mut entries = 0usize;
    for v in (0..sim.network().node_count()).map(NodeId::new) {
        for e in sim.table(v).entries() {
            entries += 1;
            if !links.has_edge(e.next_hop, v) {
                return CheckResult::fail(
                    NAME,
                    CheckKind::Differential,
                    format!("entry at {v} references dead link {} -> {v}", e.next_hop),
                );
            }
            match hop_distance(&links, e.gateway, v) {
                Some(d) if (e.hops as usize) >= d => {}
                shortest => {
                    return CheckResult::fail(
                        NAME,
                        CheckKind::Differential,
                        format!(
                            "entry at {v} claims {} hops from {}, shortest path is {shortest:?}",
                            e.hops, e.gateway
                        ),
                    );
                }
            }
        }
    }
    if entries == 0 {
        return CheckResult::fail(
            NAME,
            CheckKind::Differential,
            "no routing entries were installed in 60 steps".to_string(),
        );
    }
    CheckResult::pass(
        NAME,
        CheckKind::Differential,
        format!("{entries} route claims bounded below by BFS distance"),
    )
}

// ---------------------------------------------------------------------------
// Protocol-zoo checks
// ---------------------------------------------------------------------------

/// Per-step table invariants for one zoo arm on a fully dynamic network
/// (mobility, battery decay): every installed entry has in-range ids, a
/// real gateway, no self-forwarding, positive hops, and a non-future
/// install stamp — [`RoutingProtocol::validate_tables`] after every
/// step.
fn check_zoo_tables(kind: ProtocolKind, seed: u64) -> CheckResult {
    let name = format!("zoo-tables-{kind}");
    let net = NetworkBuilder::new(40)
        .gateways(3)
        .target_edges(320)
        .build(seed ^ 0x54)
        .expect("buildable");
    let mut arm = match build_protocol(kind, net, &ZooParams::with_population(12), seed) {
        Ok(arm) => arm,
        Err(e) => {
            return CheckResult::fail(
                &name,
                CheckKind::Invariant,
                format!("arm failed to build: {e}"),
            )
        }
    };
    let steps = 80u64;
    for s in 0..steps {
        let now = Step::new(s);
        arm.step(now);
        if let Err(e) = arm.validate_tables(now) {
            return CheckResult::fail(&name, CheckKind::Invariant, format!("at {now}: {e}"));
        }
    }
    CheckResult::pass(
        &name,
        CheckKind::Invariant,
        format!("tables valid after every one of {steps} dynamic steps"),
    )
}

/// Replays one arm's route claims against the ground-truth link history:
/// on a frozen topology (install-time links = final links) every entry's
/// forwarding link must be live in the direction the arm installed it,
/// and its hop count must never beat the BFS shortest path — the
/// `agent-claims-bounded-by-bfs` differential, extended to every arm.
///
/// Install direction per arm: the agent arms (`agents`, `stigmergic`)
/// record the node the carrier *arrived from* (a `next_hop -> v` link,
/// hops counted from the gateway); AntNet backward ants record the next
/// node *toward* the gateway (`v -> next_hop`, hops to the gateway);
/// the flooding arms record the announcement's sender, whose reverse
/// link `v -> next_hop` was required at adoption (hops from the
/// gateway).
fn check_zoo_claims(kind: ProtocolKind, seed: u64) -> CheckResult {
    let name = format!("zoo-claims-{kind}");
    let net = NetworkBuilder::new(40)
        .gateways(3)
        .target_edges(320)
        .mobile_fraction(0.0)
        .build(seed ^ 0x31)
        .expect("buildable");
    let mut arm = match build_protocol(kind, net, &ZooParams::with_population(15), seed) {
        Ok(arm) => arm,
        Err(e) => {
            return CheckResult::fail(
                &name,
                CheckKind::Differential,
                format!("arm failed to build: {e}"),
            )
        }
    };
    let _ = arm.run(60);
    let links = arm.network().links().clone();
    let mut entries = 0usize;
    for (v, table) in arm.tables().iter().enumerate() {
        let v = NodeId::new(v);
        for e in table.entries() {
            entries += 1;
            let (from, to) = match kind {
                ProtocolKind::Agents | ProtocolKind::Stigmergic => (e.next_hop, v),
                ProtocolKind::AntNet | ProtocolKind::Epidemic | ProtocolKind::SprayAndWait => {
                    (v, e.next_hop)
                }
            };
            if !links.has_edge(from, to) {
                return CheckResult::fail(
                    &name,
                    CheckKind::Differential,
                    format!("entry at {v} references dead link {from} -> {to}"),
                );
            }
            let shortest = match kind {
                ProtocolKind::AntNet => hop_distance(&links, v, e.gateway),
                _ => hop_distance(&links, e.gateway, v),
            };
            match shortest {
                Some(d) if (e.hops as usize) >= d => {}
                other => {
                    return CheckResult::fail(
                        &name,
                        CheckKind::Differential,
                        format!(
                            "entry at {v} claims {} hops for {}, shortest path is {other:?}",
                            e.hops, e.gateway
                        ),
                    );
                }
            }
        }
    }
    if entries == 0 {
        return CheckResult::fail(
            &name,
            CheckKind::Differential,
            "no routing entries were installed in 60 steps".to_string(),
        );
    }
    CheckResult::pass(
        &name,
        CheckKind::Differential,
        format!("{entries} route claims live and bounded below by BFS distance"),
    )
}

/// The reachability set one arm's tables induce: exactly the forwarding
/// semantics of [`agentnet_core::routing::chain_connectivity`], kept as
/// the per-node vector instead of its mean.
fn reachable_set(arm: &dyn RoutingProtocol) -> Vec<bool> {
    let links = arm.network().links();
    let mut forwarding = DiGraph::new(arm.network().node_count());
    for (v, table) in arm.tables().iter().enumerate() {
        let from = NodeId::new(v);
        if arm.network().gateways().contains(&from) {
            continue;
        }
        for next in table.next_hops() {
            if links.has_edge(from, next) {
                forwarding.add_edge(from, next);
            }
        }
    }
    reaches_any(&forwarding, arm.live_gateways())
}

/// Cross-arm metamorphic relation: on a small dense *static* topology
/// with generous budgets (no route loss to mobility, TTLs outlasting the
/// run, an unthrottled copy budget), every arm must converge to the
/// identical reachability set — the set the topology itself dictates,
/// regardless of protocol.
fn check_zoo_static_reachability(seed: u64) -> CheckResult {
    const NAME: &str = "zoo-static-reachability-agreement";
    // A 4x4 grid of stationary mains-powered nodes, 150 units apart,
    // one shared 260-unit radio range: every link is symmetric (the
    // agent arms install the link direction they *arrived* by, so an
    // asymmetric link would let arms disagree legitimately) and the
    // network is connected, so the topology dictates one reachability
    // set: everyone.
    let net = || {
        let nodes = (0..16)
            .map(|i| WirelessNode {
                id: NodeId::new(i),
                position: Point2::new(150.0 * (i % 4) as f64, 150.0 * (i / 4) as f64),
                nominal_range: 260.0,
                kind: if i < 3 { NodeKind::Gateway } else { NodeKind::Stationary },
                battery: BatteryState::mains(),
                motion: Motion::Stationary,
            })
            .collect();
        WirelessNetwork::from_nodes(Rect::square(600.0), nodes, seed ^ 0x41)
    };
    let steps = 200u64;
    let mut arms: Vec<(ProtocolKind, Box<dyn RoutingProtocol>)> = vec![
        (
            ProtocolKind::Agents,
            Box::new(
                RoutingSim::new(
                    net(),
                    RoutingConfig::new(RoutingPolicy::OldestNode, 32).communication(true),
                    seed,
                )
                .expect("valid config"),
            ),
        ),
        (
            ProtocolKind::Stigmergic,
            Box::new(
                StigRouteSim::new(
                    net(),
                    StigRouteConfig::new(32).trail_length(64).route_ttl(1_000_000),
                    seed,
                )
                .expect("valid config"),
            ),
        ),
        (
            ProtocolKind::AntNet,
            Box::new(
                AntNetSim::new(net(), AntNetConfig::new(32).ttl(64).route_ttl(1_000_000), seed)
                    .expect("valid config"),
            ),
        ),
        (
            ProtocolKind::Epidemic,
            Box::new(FloodSim::new(net(), FloodConfig::epidemic(), seed).expect("valid config")),
        ),
        (
            ProtocolKind::SprayAndWait,
            Box::new(
                FloodSim::new(net(), FloodConfig::spray_and_wait(64), seed).expect("valid config"),
            ),
        ),
    ];
    let mut sets: Vec<(ProtocolKind, Vec<bool>)> = Vec::with_capacity(arms.len());
    for (kind, arm) in &mut arms {
        let _ = arm.run(steps);
        sets.push((*kind, reachable_set(arm.as_ref())));
    }
    let (ref_kind, reference) = &sets[0];
    for (kind, set) in &sets[1..] {
        if set != reference {
            let diff: Vec<usize> = reference
                .iter()
                .zip(set)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect();
            return CheckResult::fail(
                NAME,
                CheckKind::Metamorphic,
                format!("{kind} disagrees with {ref_kind} on nodes {diff:?}"),
            );
        }
    }
    let reached = reference.iter().filter(|&&ok| ok).count();
    CheckResult::pass(
        NAME,
        CheckKind::Metamorphic,
        format!(
            "all {} arms agree on the same {reached}/{}-node reachability set after {steps} \
             static steps",
            sets.len(),
            reference.len()
        ),
    )
}

/// Regression guard for the spray-and-wait starvation fix: at the
/// arm's *default* copy budget, delivery on the frozen validate
/// scenario must stay within reach of epidemic's. Before single-copy
/// holders got a direct-delivery phase, at most `L` nodes per wave
/// ever installed a route and steady-state delivery sat near 0.36.
fn check_spray_default_budget_delivery(seed: u64) -> CheckResult {
    const NAME: &str = "zoo-spray-default-budget";
    const FLOOR: f64 = 0.8;
    let net = || {
        NetworkBuilder::new(40).gateways(3).target_edges(320).build(seed ^ 0x54).expect("buildable")
    };
    let steps = 200u64;
    let window = 100..200;
    // `cache: 0` keeps the arm's default copy budget — exactly the
    // configuration the zoo figures (E19/E21) run at.
    let mut spray =
        match build_protocol(ProtocolKind::SprayAndWait, net(), &ZooParams::default(), seed) {
            Ok(arm) => arm,
            Err(e) => {
                return CheckResult::fail(
                    NAME,
                    CheckKind::Differential,
                    format!("arm failed to build: {e}"),
                )
            }
        };
    let mut epidemic =
        match build_protocol(ProtocolKind::Epidemic, net(), &ZooParams::default(), seed) {
            Ok(arm) => arm,
            Err(e) => {
                return CheckResult::fail(
                    NAME,
                    CheckKind::Differential,
                    format!("arm failed to build: {e}"),
                )
            }
        };
    let spray_delivery =
        spray.run(steps).mean_connectivity(window.clone()).expect("window inside run");
    let epidemic_delivery =
        epidemic.run(steps).mean_connectivity(window).expect("window inside run");
    let details = format!(
        "spray-and-wait {spray_delivery:.3} vs epidemic {epidemic_delivery:.3} \
         (floor {FLOOR}) at the default budget over steps 100-200"
    );
    // Epidemic is reported alongside as the ceiling for context; the
    // ordering claim itself is pinned by ext-zoo on the paper regime.
    if spray_delivery < FLOOR {
        return CheckResult::fail(NAME, CheckKind::Differential, details);
    }
    CheckResult::pass(NAME, CheckKind::Differential, details)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_battery_passes() {
        let report = run_battery(ValidateConfig::default());
        assert!(report.passed(), "failures: {:#?}", report.failures());
        let invariants = report.checks().iter().filter(|c| c.kind == CheckKind::Invariant).count();
        let relations = report.checks().iter().filter(|c| c.kind != CheckKind::Invariant).count();
        assert!(invariants >= 8, "only {invariants} invariants swept");
        assert!(relations >= 4, "only {relations} metamorphic/differential checks");
    }

    #[test]
    fn injected_failure_turns_the_battery_red() {
        let report =
            run_battery(ValidateConfig { seed: 2010, inject_failure: true, protocol: None });
        assert!(!report.passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1, "only the canary should fail: {failures:#?}");
        assert_eq!(failures[0].name, "injected-failure");
        assert!(failures[0].details.contains("fired as expected"), "{}", failures[0].details);
    }

    #[test]
    fn protocol_restricted_battery_runs_one_arms_checks() {
        for kind in ProtocolKind::ALL {
            let cfg = ValidateConfig { protocol: Some(kind), ..ValidateConfig::default() };
            let report = run_battery(cfg);
            assert!(report.passed(), "{kind} failures: {:#?}", report.failures());
            assert_eq!(report.len(), 2, "{kind} should run exactly its two checks");
            let names: Vec<&str> = report.checks().iter().map(|c| c.name.as_str()).collect();
            assert_eq!(
                names,
                [format!("zoo-tables-{kind}"), format!("zoo-claims-{kind}")],
                "unexpected check set for {kind}"
            );
        }
    }

    #[test]
    fn full_battery_covers_every_zoo_arm() {
        let report = run_battery(ValidateConfig::default());
        let names: Vec<&str> = report.checks().iter().map(|c| c.name.as_str()).collect();
        for kind in ProtocolKind::ALL {
            assert!(names.contains(&format!("zoo-tables-{kind}").as_str()), "missing {kind}");
            assert!(names.contains(&format!("zoo-claims-{kind}").as_str()), "missing {kind}");
        }
        assert!(names.contains(&"zoo-static-reachability-agreement"));
    }

    #[test]
    fn battery_is_deterministic_in_seed() {
        let a = run_battery(ValidateConfig::default());
        let b = run_battery(ValidateConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn report_renders_as_table() {
        let mut report = ValidationReport::default();
        report.push(CheckResult::pass("a", CheckKind::Invariant, "ok".into()));
        report.push(CheckResult::fail("b", CheckKind::Differential, "broke".into()));
        assert!(!report.is_empty());
        assert_eq!(report.len(), 2);
        let table = report.to_table();
        assert_eq!(table.headers(), ["check", "kind", "status", "details"]);
        let md = table.to_markdown();
        assert!(md.contains("PASS") && md.contains("FAIL"), "{md}");
        assert!(!report.passed());
    }
}
