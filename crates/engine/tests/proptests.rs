//! Property-based tests for the simulation engine.

use agentnet_engine::events::EventQueue;
use agentnet_engine::rng::SeedSequence;
use agentnet_engine::stats::Summary;
use agentnet_engine::{Step, TimeSeries};
use proptest::prelude::*;

proptest! {
    #[test]
    fn summary_mean_is_bounded_by_extrema(values in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Summary::from_samples(values.clone()).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.n, values.len());
    }

    #[test]
    fn summary_of_constant_sample_has_zero_spread(v in -1e6f64..1e6, n in 1usize..32) {
        let s = Summary::from_samples(std::iter::repeat_n(v, n)).unwrap();
        prop_assert!((s.mean - v).abs() < 1e-9);
        prop_assert!(s.std.abs() < 1e-9);
        prop_assert!(s.ci95.abs() < 1e-9);
    }

    #[test]
    fn window_mean_is_bounded(values in proptest::collection::vec(0.0f64..1.0, 4..64)) {
        let series: TimeSeries = values.iter().copied().collect();
        let mean = series.window_mean(1..values.len()).unwrap();
        let lo = values[1..].iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values[1..].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo - 1e-12 <= mean && mean <= hi + 1e-12);
    }

    #[test]
    fn mean_of_single_series_is_identity(values in proptest::collection::vec(0.0f64..1.0, 1..32)) {
        let series: TimeSeries = values.iter().copied().collect();
        let mean = TimeSeries::mean_of(std::slice::from_ref(&series));
        prop_assert_eq!(mean, series);
    }

    #[test]
    fn mean_of_is_bounded_by_inputs(
        a in proptest::collection::vec(0.0f64..1.0, 8),
        b in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let sa: TimeSeries = a.iter().copied().collect();
        let sb: TimeSeries = b.iter().copied().collect();
        let m = TimeSeries::mean_of(&[sa, sb]);
        for i in 0..8 {
            let lo = a[i].min(b[i]);
            let hi = a[i].max(b[i]);
            prop_assert!(lo - 1e-12 <= m.values()[i] && m.values()[i] <= hi + 1e-12);
        }
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time(times in proptest::collection::vec(0u64..1000, 0..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Step::new(t), i);
        }
        let mut last = Step::ZERO;
        let mut count = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn event_queue_same_time_preserves_fifo(n in 1usize..64, t in 0u64..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Step::new(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn seed_children_have_no_collisions(master in 0u64..1000) {
        let root = SeedSequence::new(master);
        let mut seeds: Vec<u64> = (0..256).map(|i| root.child(i).seed()).collect();
        seeds.push(root.seed());
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), 257);
    }

    #[test]
    fn labeled_children_are_stable_and_distinct(master in 0u64..1000) {
        let root = SeedSequence::new(master);
        prop_assert_eq!(root.labeled("x").seed(), root.labeled("x").seed());
        prop_assert_ne!(root.labeled("x").seed(), root.labeled("y").seed());
        prop_assert_ne!(root.labeled("ab").seed(), root.labeled("ba").seed());
    }

    #[test]
    fn first_reaching_returns_first_index(values in proptest::collection::vec(0.0f64..1.0, 1..64), thr in 0.0f64..1.0) {
        let series: TimeSeries = values.iter().copied().collect();
        match series.first_reaching(thr) {
            Some(step) => {
                let i = step.as_u64() as usize;
                prop_assert!(values[i] >= thr);
                prop_assert!(values[..i].iter().all(|&v| v < thr));
            }
            None => prop_assert!(values.iter().all(|&v| v < thr)),
        }
    }
}
