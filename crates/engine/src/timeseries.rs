//! Per-step metric recording.

use crate::sim::Step;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A metric sampled once per simulation step (step `i` is index `i`).
///
/// The routing study's headline number is "the average fraction of
/// connectivity for all nodes from time 150 to 300" — i.e.
/// [`TimeSeries::window_mean`] over `150..300`.
///
/// ```
/// use agentnet_engine::TimeSeries;
/// let mut s = TimeSeries::new();
/// for v in [0.0, 0.5, 1.0, 1.0] { s.record(v); }
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.window_mean(2..4), Some(1.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { values: Vec::new() }
    }

    /// Creates an empty series with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries { values: Vec::with_capacity(n) }
    }

    /// Appends the sample for the next step.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sample at `step`, if recorded.
    pub fn get(&self, step: Step) -> Option<f64> {
        self.values.get(step.as_u64() as usize).copied()
    }

    /// All samples in step order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean over the half-open step range, or `None` if the range is empty
    /// or extends past the recorded data.
    pub fn window_mean(&self, range: Range<usize>) -> Option<f64> {
        if range.is_empty() || range.end > self.values.len() {
            return None;
        }
        let slice = &self.values[range.clone()];
        Some(slice.iter().sum::<f64>() / slice.len() as f64)
    }

    /// Sample standard deviation over the half-open step range (`None` for
    /// windows of fewer than two samples or out-of-range windows).
    pub fn window_std(&self, range: Range<usize>) -> Option<f64> {
        if range.len() < 2 || range.end > self.values.len() {
            return None;
        }
        let slice = &self.values[range];
        let mean = slice.iter().sum::<f64>() / slice.len() as f64;
        let var =
            slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (slice.len() - 1) as f64;
        Some(var.sqrt())
    }

    /// First step index at which the series reaches `threshold`
    /// (`values[i] >= threshold`), or `None` if it never does.
    pub fn first_reaching(&self, threshold: f64) -> Option<Step> {
        self.values.iter().position(|&v| v >= threshold).map(|i| Step::new(i as u64))
    }

    /// Element-wise mean of several equal-length series (used to average
    /// knowledge-over-time curves across the paper's 40 replicate runs).
    ///
    /// Series shorter than the longest are treated as holding their final
    /// value afterwards (a finished mapping run stays at knowledge = 1).
    /// Returns an empty series when `series` is empty or all-empty.
    pub fn mean_of(series: &[TimeSeries]) -> TimeSeries {
        let longest = series.iter().map(|s| s.len()).max().unwrap_or(0);
        if longest == 0 {
            return TimeSeries::new();
        }
        let nonempty: Vec<&TimeSeries> = series.iter().filter(|s| !s.is_empty()).collect();
        let mut out = TimeSeries::with_capacity(longest);
        for i in 0..longest {
            let sum: f64 = nonempty.iter().map(|s| s.values[i.min(s.len() - 1)]).sum();
            out.record(sum / nonempty.len() as f64);
        }
        out
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        TimeSeries { values: iter.into_iter().collect() }
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        vals.iter().copied().collect()
    }

    #[test]
    fn record_and_get() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.record(0.25);
        s.record(0.75);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(Step::new(1)), Some(0.75));
        assert_eq!(s.get(Step::new(2)), None);
    }

    #[test]
    fn window_mean_basic() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.window_mean(0..4), Some(2.5));
        assert_eq!(s.window_mean(1..3), Some(2.5));
    }

    #[test]
    fn window_mean_rejects_bad_ranges() {
        let s = series(&[1.0, 2.0]);
        assert_eq!(s.window_mean(0..0), None);
        assert_eq!(s.window_mean(0..3), None);
    }

    #[test]
    fn window_std_constant_is_zero() {
        let s = series(&[2.0, 2.0, 2.0]);
        assert_eq!(s.window_std(0..3), Some(0.0));
        assert_eq!(s.window_std(0..1), None);
    }

    #[test]
    fn first_reaching_finds_threshold() {
        let s = series(&[0.1, 0.4, 0.9, 1.0]);
        assert_eq!(s.first_reaching(0.9), Some(Step::new(2)));
        assert_eq!(s.first_reaching(1.1), None);
        assert_eq!(s.first_reaching(0.0), Some(Step::ZERO));
    }

    #[test]
    fn mean_of_equal_lengths() {
        let m = TimeSeries::mean_of(&[series(&[0.0, 1.0]), series(&[1.0, 1.0])]);
        assert_eq!(m.values(), &[0.5, 1.0]);
    }

    #[test]
    fn mean_of_extends_short_series_with_final_value() {
        // A run that finished at step 1 holds its last value while the
        // longer run continues.
        let m = TimeSeries::mean_of(&[series(&[0.5, 1.0]), series(&[0.0, 0.0, 1.0])]);
        assert_eq!(m.values(), &[0.25, 0.5, 1.0]);
    }

    #[test]
    fn mean_of_empty_input() {
        assert!(TimeSeries::mean_of(&[]).is_empty());
        assert!(TimeSeries::mean_of(&[TimeSeries::new()]).is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut s = series(&[1.0]);
        s.extend([2.0, 3.0]);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
    }
}
