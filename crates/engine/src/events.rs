//! A deterministic discrete-event queue.
//!
//! The time-step simulations in this workspace mostly advance in lockstep,
//! but several extensions (link-failure injection, agent re-firing after
//! topology drift) are naturally event-driven. [`EventQueue`] orders events
//! by `(time, insertion sequence)`, so two events scheduled for the same
//! step pop in the order they were scheduled — never in allocation or hash
//! order — keeping runs bit-reproducible.

use crate::sim::Step;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event scheduled at a step, carrying a payload `E`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: Step,
    /// The payload.
    pub event: E,
}

/// Min-heap of events ordered by time, with FIFO tie-breaking.
///
/// ```
/// use agentnet_engine::events::EventQueue;
/// use agentnet_engine::Step;
///
/// let mut q = EventQueue::new();
/// q.schedule(Step::new(5), "b");
/// q.schedule(Step::new(3), "a");
/// q.schedule(Step::new(5), "c");
/// assert_eq!(q.pop().unwrap().event, "a");
/// assert_eq!(q.pop().unwrap().event, "b"); // same-time events pop FIFO
/// assert_eq!(q.pop().unwrap().event, "c");
/// assert!(q.pop().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Clone, Debug)]
struct Entry<E> {
    at: Step,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` to fire at step `at`.
    pub fn schedule(&mut self, at: Step, event: E) {
        let entry = Entry { at, seq: self.seq, event };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|Reverse(e)| Scheduled { at: e.at, event: e.event })
    }

    /// The firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Step> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops every event scheduled at or before `now`, in order.
    pub fn drain_due(&mut self, now: Step) -> Vec<Scheduled<E>> {
        let mut due = Vec::new();
        while self.peek_time().is_some_and(|t| t <= now) {
            due.push(self.pop().expect("peeked event vanished"));
        }
        due
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Step::new(9), 9);
        q.schedule(Step::new(1), 1);
        q.schedule(Step::new(4), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec![1, 4, 9]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Step::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drain_due_takes_only_due_events() {
        let mut q = EventQueue::new();
        q.schedule(Step::new(2), "a");
        q.schedule(Step::new(5), "b");
        q.schedule(Step::new(5), "c");
        q.schedule(Step::new(8), "d");
        let due = q.drain_due(Step::new(5));
        let names: Vec<_> = due.iter().map(|s| s.event).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Step::new(8)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(q.drain_due(Step::new(100)).is_empty());
    }

    #[test]
    fn schedule_in_past_still_pops() {
        let mut q = EventQueue::new();
        q.schedule(Step::new(0), "late");
        assert_eq!(q.drain_due(Step::new(10)).len(), 1);
    }

    #[test]
    fn len_tracks_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Step::new(1), ());
        q.schedule(Step::new(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
