//! The time-step simulation driver.
//!
//! Both of the paper's studies use a "simple discrete event, time-step based
//! simulation": every simulated step, every agent performs its four-phase
//! update. [`TimeStepSim`] abstracts "one step of simulated time";
//! [`run_until`] drives a simulation to completion or a step budget.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in whole time steps.
///
/// ```
/// use agentnet_engine::Step;
/// let t = Step::new(10) + Step::new(5);
/// assert_eq!(t.as_u64(), 15);
/// assert!(t > Step::ZERO);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Step(u64);

impl Step {
    /// Time zero.
    pub const ZERO: Step = Step(0);

    /// Creates a step count.
    #[inline]
    pub const fn new(steps: u64) -> Self {
        Step(steps)
    }

    /// The raw step count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The step count as `f64` (for plotting / statistics).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// The next step.
    #[inline]
    pub fn next(self) -> Step {
        Step(self.0 + 1)
    }

    /// Steps elapsed since `earlier` (`self - earlier`), or `None` if
    /// `earlier` is in the future. For callers that can legitimately see
    /// timestamps ahead of their own clock (e.g. route entries installed
    /// by a co-located exchange at a step boundary) and must not take the
    /// [`Self::since`] panic.
    #[inline]
    pub fn checked_since(self, earlier: Step) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }

    /// Steps elapsed since `earlier` (`self - earlier`).
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`: asking how long ago a
    /// *future* time was is always a logic error upstream, and silently
    /// returning 0 (the old saturating behaviour) masked it. Callers for
    /// which a future timestamp is *not* a logic error should use
    /// [`Self::checked_since`].
    #[inline]
    pub fn since(self, earlier: Step) -> u64 {
        match self.checked_since(earlier) {
            Some(elapsed) => elapsed,
            None => panic!("Step::since: `earlier` ({earlier}) is after `self` ({self})"),
        }
    }
}

impl Add for Step {
    type Output = Step;
    fn add(self, rhs: Step) -> Step {
        Step(self.0 + rhs.0)
    }
}

impl AddAssign for Step {
    fn add_assign(&mut self, rhs: Step) {
        self.0 += rhs.0;
    }
}

impl Sub for Step {
    type Output = Step;
    fn sub(self, rhs: Step) -> Step {
        Step(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Step {
    fn from(value: u64) -> Self {
        Step(value)
    }
}

impl From<Step> for u64 {
    fn from(value: Step) -> Self {
        value.0
    }
}

/// One simulation advanced in discrete time steps.
///
/// Implementors perform *all* per-step work in [`TimeStepSim::step`]; the
/// driver queries [`TimeStepSim::is_done`] *before* each step, so a
/// simulation that starts in a done state runs zero steps.
pub trait TimeStepSim {
    /// Advances the simulation by one time step. `now` is the index of the
    /// step being executed, starting from 0.
    fn step(&mut self, now: Step);

    /// Returns `true` once the simulation has reached its terminal
    /// condition (e.g. every agent holds a perfect map). Simulations that
    /// run for a fixed horizon may simply return `false` and rely on the
    /// driver's step budget.
    fn is_done(&self) -> bool {
        false
    }
}

/// Outcome of [`run_until`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Number of steps actually executed.
    pub steps: Step,
    /// `true` if the simulation reported [`TimeStepSim::is_done`] within
    /// the budget, `false` if the budget expired first.
    pub finished: bool,
}

/// Runs `sim` until it reports done or `max_steps` steps have executed.
///
/// Returns how many steps ran and whether the simulation finished. The
/// paper's *finishing time* metric is exactly `outcome.steps` of a run with
/// `finished == true`.
pub fn run_until<S: TimeStepSim + ?Sized>(sim: &mut S, max_steps: Step) -> RunOutcome {
    let mut now = Step::ZERO;
    while now < max_steps {
        if sim.is_done() {
            return RunOutcome { steps: now, finished: true };
        }
        sim.step(now);
        now = now.next();
    }
    RunOutcome { steps: now, finished: sim.is_done() }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Upto {
        ticks: u64,
        done_at: u64,
        seen: Vec<u64>,
    }

    impl TimeStepSim for Upto {
        fn step(&mut self, now: Step) {
            self.seen.push(now.as_u64());
            self.ticks += 1;
        }
        fn is_done(&self) -> bool {
            self.ticks >= self.done_at
        }
    }

    #[test]
    fn step_arithmetic() {
        assert_eq!(Step::new(3) + Step::new(4), Step::new(7));
        assert_eq!(Step::new(4) - Step::new(3), Step::new(1));
        assert_eq!(Step::new(3) - Step::new(4), Step::ZERO);
        assert_eq!(Step::new(9).since(Step::new(4)), 5);
        assert_eq!(Step::new(7).since(Step::new(7)), 0);
        assert_eq!(Step::new(9).checked_since(Step::new(4)), Some(5));
        assert_eq!(Step::new(4).checked_since(Step::new(9)), None);
        let mut s = Step::ZERO;
        s += Step::new(2);
        assert_eq!(s, Step::new(2));
        assert_eq!(Step::new(5).next(), Step::new(6));
    }

    #[test]
    #[should_panic(expected = "`earlier` (t9) is after `self` (t4)")]
    fn since_a_future_step_panics() {
        let _ = Step::new(4).since(Step::new(9));
    }

    #[test]
    fn step_display_and_conversions() {
        assert_eq!(Step::new(12).to_string(), "t12");
        assert_eq!(u64::from(Step::from(3u64)), 3);
        assert_eq!(Step::new(2).as_f64(), 2.0);
    }

    #[test]
    fn run_until_stops_at_done() {
        let mut sim = Upto { ticks: 0, done_at: 5, seen: vec![] };
        let out = run_until(&mut sim, Step::new(100));
        assert!(out.finished);
        assert_eq!(out.steps, Step::new(5));
        assert_eq!(sim.seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_respects_budget() {
        let mut sim = Upto { ticks: 0, done_at: 1000, seen: vec![] };
        let out = run_until(&mut sim, Step::new(10));
        assert!(!out.finished);
        assert_eq!(out.steps, Step::new(10));
    }

    #[test]
    fn run_until_zero_budget_runs_nothing() {
        let mut sim = Upto { ticks: 0, done_at: 1, seen: vec![] };
        let out = run_until(&mut sim, Step::ZERO);
        assert_eq!(out.steps, Step::ZERO);
        assert!(!out.finished);
        assert!(sim.seen.is_empty());
    }

    #[test]
    fn run_until_already_done_runs_nothing() {
        let mut sim = Upto { ticks: 5, done_at: 5, seen: vec![] };
        let out = run_until(&mut sim, Step::new(10));
        assert!(out.finished);
        assert_eq!(out.steps, Step::ZERO);
    }

    #[test]
    fn budget_boundary_reports_finished_if_done_exactly_at_budget() {
        let mut sim = Upto { ticks: 0, done_at: 10, seen: vec![] };
        let out = run_until(&mut sim, Step::new(10));
        assert!(out.finished);
        assert_eq!(out.steps, Step::new(10));
    }
}
