//! Result tables: markdown, CSV and JSON emission.
//!
//! Every experiment prints "the same rows/series the paper reports" through
//! this type, so the repro binary, the benches and EXPERIMENTS.md all share
//! one formatter.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A rectangular table of strings with a header row.
///
/// ```
/// use agentnet_engine::table::Table;
/// let mut t = Table::new(["agent", "finish"]);
/// t.push_row(["random", "8000"]);
/// t.push_row(["conscientious", "3000"]);
/// let md = t.to_markdown();
/// assert!(md.contains("| agent"));
/// assert!(md.contains("| conscientious | 3000"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a GitHub-flavoured markdown table with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas, quotes or
    /// newlines are quoted; embedded quotes doubled).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Renders a JSON array of objects keyed by header.
    pub fn to_json(&self) -> serde_json::Value {
        let objects: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let map: serde_json::Map<String, serde_json::Value> = self
                    .headers
                    .iter()
                    .cloned()
                    .zip(row.iter().map(|c| serde_json::Value::String(c.clone())))
                    .collect();
                serde_json::Value::Object(map)
            })
            .collect();
        serde_json::Value::Array(objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "x"]);
        t.push_row(["22", "yy"]);
        t
    }

    #[test]
    fn markdown_has_separator_and_alignment() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].starts_with("| 1 "));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["v"]);
        t.push_row(["a,b"]);
        t.push_row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_plain_cells_unquoted() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().next(), Some("a,b"));
        assert_eq!(csv.lines().nth(1), Some("1,x"));
    }

    #[test]
    fn json_round_trip() {
        let json = sample().to_json();
        assert_eq!(json[1]["a"], "22");
        assert_eq!(json.as_array().unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["h"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_markdown().lines().count(), 2);
    }
}
