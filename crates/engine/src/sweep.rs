//! Parameter sweeps.
//!
//! The paper varies "types of agents, population size and history size ...
//! independently". A [`Sweep`] runs one closure per parameter value and
//! collects labelled rows ready for [`crate::table::Table`].

use crate::stats::Summary;
use serde::{Deserialize, Serialize};

/// One labelled outcome of a sweep: the parameter value (as a string,
/// so heterogeneous sweeps print uniformly) and the replicate summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The swept parameter's display value (e.g. `"15"` agents).
    pub param: String,
    /// Summary of the replicate samples at this parameter value.
    pub summary: Summary,
}

/// Result of sweeping a parameter: a named parameter axis and its rows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    /// Name of the swept parameter (e.g. `"population"`).
    pub param_name: String,
    /// Name of the measured quantity (e.g. `"finishing time"`).
    pub metric_name: String,
    /// One row per parameter value, in sweep order.
    pub rows: Vec<SweepRow>,
}

impl Sweep {
    /// Runs `measure` once per value in `values`, collecting a summary per
    /// value.
    ///
    /// `measure` returns the replicate [`Summary`] for that parameter value
    /// (typically via [`crate::replicate::replicate_summary`]).
    ///
    /// ```
    /// use agentnet_engine::sweep::Sweep;
    /// use agentnet_engine::Summary;
    /// let sweep = Sweep::run("population", "finish", [1, 5, 15], |&p| {
    ///     Summary::from_samples([p as f64 * 2.0]).unwrap()
    /// });
    /// assert_eq!(sweep.means(), vec![2.0, 10.0, 30.0]);
    /// assert_eq!(sweep.best_by_min_mean().unwrap().param, "1");
    /// ```
    pub fn run<P, F>(
        param_name: impl Into<String>,
        metric_name: impl Into<String>,
        values: impl IntoIterator<Item = P>,
        mut measure: F,
    ) -> Sweep
    where
        P: std::fmt::Display,
        F: FnMut(&P) -> Summary,
    {
        let rows = values
            .into_iter()
            .map(|p| {
                let summary = measure(&p);
                SweepRow { param: p.to_string(), summary }
            })
            .collect();
        Sweep { param_name: param_name.into(), metric_name: metric_name.into(), rows }
    }

    /// The row whose summary mean is smallest (e.g. the fastest finishing
    /// time), or `None` for an empty sweep.
    pub fn best_by_min_mean(&self) -> Option<&SweepRow> {
        self.rows.iter().min_by(|a, b| a.summary.mean.total_cmp(&b.summary.mean))
    }

    /// The row whose summary mean is largest (e.g. the best connectivity).
    pub fn best_by_max_mean(&self) -> Option<&SweepRow> {
        self.rows.iter().max_by(|a, b| a.summary.mean.total_cmp(&b.summary.mean))
    }

    /// Means in sweep order (convenient for shape assertions in tests).
    pub fn means(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.summary.mean).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_of(v: f64) -> Summary {
        Summary::from_samples([v, v]).unwrap()
    }

    #[test]
    fn sweep_preserves_order_and_labels() {
        let s = Sweep::run("population", "finish", [1, 5, 15], |&p| summary_of(p as f64));
        assert_eq!(s.rows.len(), 3);
        assert_eq!(s.rows[0].param, "1");
        assert_eq!(s.rows[2].param, "15");
        assert_eq!(s.means(), vec![1.0, 5.0, 15.0]);
    }

    #[test]
    fn best_rows() {
        let s = Sweep::run("h", "conn", [3, 1, 2], |&p| summary_of(p as f64));
        assert_eq!(s.best_by_min_mean().unwrap().param, "1");
        assert_eq!(s.best_by_max_mean().unwrap().param, "3");
    }

    #[test]
    fn empty_sweep_has_no_best() {
        let s = Sweep::run("x", "y", Vec::<u32>::new(), |_| unreachable!());
        assert!(s.best_by_min_mean().is_none());
        assert!(s.best_by_max_mean().is_none());
    }
}
