//! Structured observability: counters, gauges, fixed-bucket histograms
//! and span timers behind a single cloneable [`Metrics`] handle.
//!
//! The paper's simulator is a "data-collection system"; this module is
//! its production-shaped counterpart. Design constraints:
//!
//! * **Zero overhead when disabled.** [`Metrics::disabled`] carries no
//!   registry; every recording call is an early-return on a `None` and
//!   span timers never read the clock. Simulation results must be
//!   byte-identical with metrics on or off — observability is a side
//!   channel, never an input.
//! * **Deterministic.** The registry is `BTreeMap`-ordered, so
//!   snapshots, JSON manifests and Prometheus expositions list series
//!   in a stable order. No ambient entropy enters any measured value
//!   except wall-clock *durations*, which never feed back into reports.
//! * **Fixed buckets.** Histograms take their bucket bounds at first
//!   observation and never resize, so merged/serialized output is
//!   comparable across runs.
//!
//! This file is one of the sanctioned timing modules under agentlint's
//! `no-ambient-entropy` rule: [`SpanTimer`] owns the only `Instant`
//! reads, and only while a registry is attached.
//!
//! # Example
//!
//! ```
//! use agentnet_engine::obs::{Metrics, DURATION_MICROS_BUCKETS};
//!
//! let metrics = Metrics::enabled();
//! metrics.counter_add("cells_total", 3);
//! metrics.observe("cell_micros", 42.0, DURATION_MICROS_BUCKETS);
//! {
//!     let _span = metrics.span("phase_micros"); // records on drop
//! }
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counters["cells_total"], 3);
//! assert!(snap.to_prometheus().contains("agentnet_cells_total 3"));
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default histogram buckets for durations measured in microseconds:
/// decades from 10µs to 10s. Spans land here.
pub const DURATION_MICROS_BUCKETS: &[f64] =
    &[10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0];

/// A fixed-bucket histogram: counts per upper bound (a final implicit
/// `+Inf` bucket catches the rest), plus the sum and count of all
/// observations — exactly the shape Prometheus expects.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; one longer than `bounds` (the last
    /// entry is the `+Inf` bucket).
    counts: Vec<u64>,
    /// Sum of all observed values.
    sum: f64,
    /// Number of observations.
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram over the given finite bucket bounds.
    ///
    /// Bounds are *normalized*, not trusted: non-finite entries (NaN,
    /// ±infinity) are rejected, the remainder is sorted ascending and
    /// deduplicated. An unsorted or duplicated bound list therefore
    /// produces the same histogram as its cleaned-up form instead of
    /// silently misbucketing every observation (the `+Inf` bucket is
    /// always implicit, so an explicit `f64::INFINITY` bound is
    /// redundant and dropped too).
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_unstable_by(|a, b| a.partial_cmp(b).expect("bounds are finite"));
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts, sum: 0.0, count: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.sum += value;
        self.count += 1;
    }

    /// Finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the `+Inf` bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimates the value at quantile `q` (clamped to `0.0..=1.0`) by
    /// linear interpolation inside the bucket the quantile rank falls
    /// in — the same estimator as Prometheus's `histogram_quantile`.
    ///
    /// Conventions (matching Prometheus):
    /// * the first bucket interpolates from `0` when its upper bound is
    ///   positive, and reports its upper bound otherwise (so negative
    ///   buckets never fabricate values below their bound);
    /// * a rank landing in the implicit `+Inf` bucket reports the
    ///   largest finite bound — tail quantiles saturate rather than
    ///   extrapolate;
    /// * `None` with no observations, or with no finite buckets at all
    ///   (every observation in `+Inf` leaves nothing to interpolate).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let max_bound = self.bounds.last().copied()?;
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, (&bound, &count)) in self.bounds.iter().zip(&self.counts).enumerate() {
            cumulative += count;
            if cumulative as f64 >= rank {
                let lower = if i == 0 {
                    if bound <= 0.0 {
                        return Some(bound);
                    }
                    0.0
                } else {
                    *self.bounds.get(i - 1)?
                };
                let below = cumulative - count;
                let fraction = (rank - below as f64) / count as f64;
                return Some(lower + (bound - lower) * fraction);
            }
        }
        // The rank lives in the +Inf bucket: saturate at the largest
        // finite bound.
        Some(max_bound)
    }

    /// The median estimate ([`Self::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// A point-in-time copy of the registry: every counter, gauge and
/// histogram, `BTreeMap`-ordered so serialized output is deterministic.
/// This is the `metrics` section of the run manifest.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins point values.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Keeps metric names inside the Prometheus charset
/// (`[a-zA-Z0-9_:]`); anything else becomes `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Formats a bucket bound the way Prometheus renders `le` labels:
/// the shortest decimal representation that parses back to exactly the
/// same `f64` (`1000`, not `1000.0`; `-0.5` and `0.00025` stay
/// intact). Rust's `Display` is already shortest-round-trip for every
/// finite float, including negative and sub-`1e-3` bounds; the
/// parse-back check guards the invariant, falling to the explicit
/// exponent form if it ever fails.
fn prom_bound(bound: f64) -> String {
    let text = format!("{bound}");
    if text.parse::<f64>().ok() == Some(bound) {
        text
    } else {
        format!("{bound:e}")
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format,
    /// every series prefixed `agentnet_`. Histograms emit cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE agentnet_{name} counter\n"));
            out.push_str(&format!("agentnet_{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE agentnet_{name} gauge\n"));
            out.push_str(&format!("agentnet_{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE agentnet_{name} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                cumulative += count;
                out.push_str(&format!(
                    "agentnet_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    prom_bound(*bound)
                ));
            }
            out.push_str(&format!("agentnet_{name}_bucket{{le=\"+Inf\"}} {}\n", hist.count));
            out.push_str(&format!("agentnet_{name}_sum {}\n", hist.sum));
            out.push_str(&format!("agentnet_{name}_count {}\n", hist.count));
        }
        out
    }
}

/// Cloneable handle to a shared metrics registry — or to nothing.
///
/// [`Metrics::disabled`] (also `Default`) is the zero-cost mode: every
/// method is a no-op returning immediately. [`Metrics::enabled`] backs
/// the handle with an `Arc<Mutex<MetricsSnapshot>>` shared by all
/// clones, so executor workers and experiment threads record into one
/// registry.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<MetricsSnapshot>>>,
}

impl Metrics {
    /// A handle that records nothing (the default).
    pub fn disabled() -> Self {
        Metrics { inner: None }
    }

    /// A handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Metrics { inner: Some(Arc::new(Mutex::new(MetricsSnapshot::default()))) }
    }

    /// Whether this handle is backed by a registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_registry(&self, f: impl FnOnce(&mut MetricsSnapshot)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.lock().expect("metrics registry mutex poisoned"));
        }
    }

    /// Adds `n` to the named counter (creating it at zero).
    pub fn counter_add(&self, name: &str, n: u64) {
        self.with_registry(|reg| {
            *reg.counters.entry(name.to_string()).or_insert(0) += n;
        });
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with_registry(|reg| {
            reg.gauges.insert(name.to_string(), value);
        });
    }

    /// Records `value` into the named histogram, created with `bounds`
    /// on first observation (later `bounds` arguments are ignored — the
    /// bucket layout is fixed at creation).
    pub fn observe(&self, name: &str, value: f64, bounds: &[f64]) {
        self.with_registry(|reg| {
            reg.histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(bounds))
                .observe(value);
        });
    }

    /// Starts a span timer; on drop it records the elapsed wall time in
    /// microseconds into the named histogram (buckets
    /// [`DURATION_MICROS_BUCKETS`]). With a disabled handle the clock
    /// is never read.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer {
            state: self
                .inner
                .as_ref()
                .map(|reg| (Arc::clone(reg), name.to_string(), Instant::now())),
        }
    }

    /// A copy of the registry's current contents (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.lock().expect("metrics registry mutex poisoned").clone(),
            None => MetricsSnapshot::default(),
        }
    }
}

/// Guard returned by [`Metrics::span`]: measures the wall time between
/// creation and drop and records it as a histogram observation.
/// Durations flow *out* of the simulation only — they never influence
/// simulated behavior, so runs stay deterministic.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanTimer {
    state: Option<(Arc<Mutex<MetricsSnapshot>>, String, Instant)>,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((registry, name, started)) = self.state.take() {
            let micros = started.elapsed().as_micros() as f64;
            if let Ok(mut reg) = registry.lock() {
                reg.histograms
                    .entry(name)
                    .or_insert_with(|| Histogram::new(DURATION_MICROS_BUCKETS))
                    .observe(micros);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.counter_add("c", 5);
        m.gauge_set("g", 1.5);
        m.observe("h", 3.0, DURATION_MICROS_BUCKETS);
        drop(m.span("s"));
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = Metrics::enabled();
        m.counter_add("cells", 2);
        m.counter_add("cells", 3);
        m.gauge_set("wall", 1.0);
        m.gauge_set("wall", 2.5);
        let snap = m.snapshot();
        assert_eq!(snap.counters["cells"], 5);
        assert_eq!(snap.gauges["wall"], 2.5);
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::enabled();
        let clone = m.clone();
        clone.counter_add("shared", 1);
        m.counter_add("shared", 1);
        assert_eq!(m.snapshot().counters["shared"], 2);
    }

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 1]); // 10.0 lands in its own bucket (le)
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 565.5).abs() < 1e-9);
    }

    #[test]
    fn span_records_a_duration() {
        let m = Metrics::enabled();
        {
            let _span = m.span("phase_micros");
        }
        let snap = m.snapshot();
        let h = &snap.histograms["phase_micros"];
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::enabled();
        m.counter_add("a", 7);
        m.gauge_set("b", 0.25);
        m.observe("c", 42.0, &[10.0, 100.0]);
        let snap = m.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_exposition_is_complete_and_ordered() {
        let m = Metrics::enabled();
        m.counter_add("z_counter", 1);
        m.counter_add("a_counter", 2);
        m.gauge_set("speed", 1.5);
        m.observe("lat", 5.0, &[1.0, 10.0]);
        m.observe("lat", 0.5, &[1.0, 10.0]);
        let text = m.snapshot().to_prometheus();
        // BTreeMap order: a_counter before z_counter.
        let a = text.find("agentnet_a_counter 2").unwrap();
        let z = text.find("agentnet_z_counter 1").unwrap();
        assert!(a < z);
        assert!(text.contains("# TYPE agentnet_speed gauge\nagentnet_speed 1.5\n"));
        // Cumulative buckets: le=1 has one observation, le=10 both.
        assert!(text.contains("agentnet_lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("agentnet_lat_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("agentnet_lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("agentnet_lat_sum 5.5\n"));
        assert!(text.contains("agentnet_lat_count 2\n"));
        // Every line is newline-terminated.
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn unsorted_bounds_are_sorted_on_construction() {
        let h = Histogram::new(&[100.0, 1.0, 10.0]);
        assert_eq!(h.bounds(), &[1.0, 10.0, 100.0]);
        let mut h = h;
        h.observe(5.0);
        // 5.0 lands in the (1, 10] bucket, not wherever the unsorted
        // scan would have dropped it.
        assert_eq!(h.counts(), &[0, 1, 0, 0]);
    }

    #[test]
    fn duplicate_bounds_are_deduplicated() {
        let h = Histogram::new(&[1.0, 1.0, 10.0, 10.0]);
        assert_eq!(h.bounds(), &[1.0, 10.0]);
        assert_eq!(h.counts().len(), 3);
    }

    #[test]
    fn non_finite_bounds_are_rejected() {
        let h = Histogram::new(&[f64::NAN, 1.0, f64::INFINITY, 10.0, f64::NEG_INFINITY]);
        assert_eq!(h.bounds(), &[1.0, 10.0]);
        let empty = Histogram::new(&[f64::NAN]);
        assert!(empty.bounds().is_empty());
        assert_eq!(empty.counts().len(), 1, "the +Inf bucket survives");
    }

    #[test]
    fn normalized_histograms_bucket_identically() {
        let mut clean = Histogram::new(&[1.0, 10.0, 100.0]);
        let mut messy = Histogram::new(&[100.0, f64::NAN, 10.0, 1.0, 10.0]);
        for v in [0.5, 5.0, 50.0, 500.0] {
            clean.observe(v);
            messy.observe(v);
        }
        assert_eq!(clean, messy);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[10.0, 20.0, 30.0]);
        // 10 observations per bucket: uniform over (0, 30].
        for bucket in [5.0, 15.0, 25.0] {
            for _ in 0..10 {
                h.observe(bucket);
            }
        }
        // Rank 15 of 30 is halfway through the (10, 20] bucket.
        assert!((h.p50().unwrap() - 15.0).abs() < 1e-9);
        // Rank 28.5 of 30: 8.5/10 through the (20, 30] bucket.
        assert!((h.p95().unwrap() - 28.5).abs() < 1e-9);
        assert!((h.quantile(0.0).unwrap() - 1.0).abs() < 1e-9, "rank floors at 1");
        assert!((h.quantile(1.0).unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_saturates_in_the_inf_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for _ in 0..10 {
            h.observe(1000.0);
        }
        // Every observation is beyond the finite buckets: all quantiles
        // report the largest finite bound rather than extrapolating.
        assert_eq!(h.p50(), Some(10.0));
        assert_eq!(h.p99(), Some(10.0));
    }

    #[test]
    fn quantile_handles_empty_and_negative_cases() {
        let h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.p50(), None, "no observations, no quantile");
        let mut boundless = Histogram::new(&[]);
        boundless.observe(5.0);
        assert_eq!(boundless.p50(), None, "no finite bucket to interpolate in");
        let mut neg = Histogram::new(&[-10.0, 10.0]);
        neg.observe(-20.0);
        neg.observe(-15.0);
        // The quantile rank falls in the first bucket with a negative
        // upper bound: report the bound, never interpolate toward 0.
        assert_eq!(neg.p50(), Some(-10.0));
    }

    #[test]
    fn prom_bounds_render_losslessly() {
        for bound in [-2.5, -0.0005, 0.00025, 0.001, 1e-9, 123456.789, -1.0] {
            let text = prom_bound(bound);
            assert_eq!(text.parse::<f64>().unwrap(), bound, "{bound} rendered as {text}");
            assert!(!text.contains("inf"), "{text}");
        }
        assert_eq!(prom_bound(1000.0), "1000");
        assert_eq!(prom_bound(-0.5), "-0.5");
        assert_eq!(prom_bound(0.00025), "0.00025");
    }

    #[test]
    fn sub_millisecond_buckets_survive_the_exposition() {
        let m = Metrics::enabled();
        m.observe("lat_secs", 0.0004, &[0.00025, 0.0005, -0.001]);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("agentnet_lat_secs_bucket{le=\"-0.001\"} 0\n"), "{text}");
        assert!(text.contains("agentnet_lat_secs_bucket{le=\"0.00025\"} 0\n"), "{text}");
        assert!(text.contains("agentnet_lat_secs_bucket{le=\"0.0005\"} 1\n"), "{text}");
    }

    #[test]
    fn metric_names_are_sanitized_for_prometheus() {
        let m = Metrics::enabled();
        m.counter_add("weird-name.total", 1);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("agentnet_weird_name_total 1"));
    }
}
