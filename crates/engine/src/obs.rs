//! Structured observability: counters, gauges, fixed-bucket histograms
//! and span timers behind a single cloneable [`Metrics`] handle.
//!
//! The paper's simulator is a "data-collection system"; this module is
//! its production-shaped counterpart. Design constraints:
//!
//! * **Zero overhead when disabled.** [`Metrics::disabled`] carries no
//!   registry; every recording call is an early-return on a `None` and
//!   span timers never read the clock. Simulation results must be
//!   byte-identical with metrics on or off — observability is a side
//!   channel, never an input.
//! * **Deterministic.** The registry is `BTreeMap`-ordered, so
//!   snapshots, JSON manifests and Prometheus expositions list series
//!   in a stable order. No ambient entropy enters any measured value
//!   except wall-clock *durations*, which never feed back into reports.
//! * **Fixed buckets.** Histograms take their bucket bounds at first
//!   observation and never resize, so merged/serialized output is
//!   comparable across runs.
//!
//! This file is one of the sanctioned timing modules under agentlint's
//! `no-ambient-entropy` rule: [`SpanTimer`] owns the only `Instant`
//! reads, and only while a registry is attached.
//!
//! # Example
//!
//! ```
//! use agentnet_engine::obs::{Metrics, DURATION_MICROS_BUCKETS};
//!
//! let metrics = Metrics::enabled();
//! metrics.counter_add("cells_total", 3);
//! metrics.observe("cell_micros", 42.0, DURATION_MICROS_BUCKETS);
//! {
//!     let _span = metrics.span("phase_micros"); // records on drop
//! }
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counters["cells_total"], 3);
//! assert!(snap.to_prometheus().contains("agentnet_cells_total 3"));
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default histogram buckets for durations measured in microseconds:
/// decades from 10µs to 10s. Spans land here.
pub const DURATION_MICROS_BUCKETS: &[f64] =
    &[10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0];

/// A fixed-bucket histogram: counts per upper bound (a final implicit
/// `+Inf` bucket catches the rest), plus the sum and count of all
/// observations — exactly the shape Prometheus expects.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; one longer than `bounds` (the last
    /// entry is the `+Inf` bucket).
    counts: Vec<u64>,
    /// Sum of all observed values.
    sum: f64,
    /// Number of observations.
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram over the given finite bucket bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be increasing");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.sum += value;
        self.count += 1;
    }

    /// Finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the `+Inf` bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// A point-in-time copy of the registry: every counter, gauge and
/// histogram, `BTreeMap`-ordered so serialized output is deterministic.
/// This is the `metrics` section of the run manifest.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins point values.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Keeps metric names inside the Prometheus charset
/// (`[a-zA-Z0-9_:]`); anything else becomes `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Formats a bucket bound the way Prometheus renders `le` labels
/// (shortest float representation; `1000`, not `1000.0`).
fn prom_bound(bound: f64) -> String {
    format!("{bound}")
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format,
    /// every series prefixed `agentnet_`. Histograms emit cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE agentnet_{name} counter\n"));
            out.push_str(&format!("agentnet_{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE agentnet_{name} gauge\n"));
            out.push_str(&format!("agentnet_{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE agentnet_{name} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                cumulative += count;
                out.push_str(&format!(
                    "agentnet_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    prom_bound(*bound)
                ));
            }
            out.push_str(&format!("agentnet_{name}_bucket{{le=\"+Inf\"}} {}\n", hist.count));
            out.push_str(&format!("agentnet_{name}_sum {}\n", hist.sum));
            out.push_str(&format!("agentnet_{name}_count {}\n", hist.count));
        }
        out
    }
}

/// Cloneable handle to a shared metrics registry — or to nothing.
///
/// [`Metrics::disabled`] (also `Default`) is the zero-cost mode: every
/// method is a no-op returning immediately. [`Metrics::enabled`] backs
/// the handle with an `Arc<Mutex<MetricsSnapshot>>` shared by all
/// clones, so executor workers and experiment threads record into one
/// registry.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<MetricsSnapshot>>>,
}

impl Metrics {
    /// A handle that records nothing (the default).
    pub fn disabled() -> Self {
        Metrics { inner: None }
    }

    /// A handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Metrics { inner: Some(Arc::new(Mutex::new(MetricsSnapshot::default()))) }
    }

    /// Whether this handle is backed by a registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_registry(&self, f: impl FnOnce(&mut MetricsSnapshot)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.lock().expect("metrics registry mutex poisoned"));
        }
    }

    /// Adds `n` to the named counter (creating it at zero).
    pub fn counter_add(&self, name: &str, n: u64) {
        self.with_registry(|reg| {
            *reg.counters.entry(name.to_string()).or_insert(0) += n;
        });
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with_registry(|reg| {
            reg.gauges.insert(name.to_string(), value);
        });
    }

    /// Records `value` into the named histogram, created with `bounds`
    /// on first observation (later `bounds` arguments are ignored — the
    /// bucket layout is fixed at creation).
    pub fn observe(&self, name: &str, value: f64, bounds: &[f64]) {
        self.with_registry(|reg| {
            reg.histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(bounds))
                .observe(value);
        });
    }

    /// Starts a span timer; on drop it records the elapsed wall time in
    /// microseconds into the named histogram (buckets
    /// [`DURATION_MICROS_BUCKETS`]). With a disabled handle the clock
    /// is never read.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer {
            state: self
                .inner
                .as_ref()
                .map(|reg| (Arc::clone(reg), name.to_string(), Instant::now())),
        }
    }

    /// A copy of the registry's current contents (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.lock().expect("metrics registry mutex poisoned").clone(),
            None => MetricsSnapshot::default(),
        }
    }
}

/// Guard returned by [`Metrics::span`]: measures the wall time between
/// creation and drop and records it as a histogram observation.
/// Durations flow *out* of the simulation only — they never influence
/// simulated behavior, so runs stay deterministic.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanTimer {
    state: Option<(Arc<Mutex<MetricsSnapshot>>, String, Instant)>,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((registry, name, started)) = self.state.take() {
            let micros = started.elapsed().as_micros() as f64;
            if let Ok(mut reg) = registry.lock() {
                reg.histograms
                    .entry(name)
                    .or_insert_with(|| Histogram::new(DURATION_MICROS_BUCKETS))
                    .observe(micros);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.counter_add("c", 5);
        m.gauge_set("g", 1.5);
        m.observe("h", 3.0, DURATION_MICROS_BUCKETS);
        drop(m.span("s"));
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = Metrics::enabled();
        m.counter_add("cells", 2);
        m.counter_add("cells", 3);
        m.gauge_set("wall", 1.0);
        m.gauge_set("wall", 2.5);
        let snap = m.snapshot();
        assert_eq!(snap.counters["cells"], 5);
        assert_eq!(snap.gauges["wall"], 2.5);
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::enabled();
        let clone = m.clone();
        clone.counter_add("shared", 1);
        m.counter_add("shared", 1);
        assert_eq!(m.snapshot().counters["shared"], 2);
    }

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 1]); // 10.0 lands in its own bucket (le)
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 565.5).abs() < 1e-9);
    }

    #[test]
    fn span_records_a_duration() {
        let m = Metrics::enabled();
        {
            let _span = m.span("phase_micros");
        }
        let snap = m.snapshot();
        let h = &snap.histograms["phase_micros"];
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::enabled();
        m.counter_add("a", 7);
        m.gauge_set("b", 0.25);
        m.observe("c", 42.0, &[10.0, 100.0]);
        let snap = m.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_exposition_is_complete_and_ordered() {
        let m = Metrics::enabled();
        m.counter_add("z_counter", 1);
        m.counter_add("a_counter", 2);
        m.gauge_set("speed", 1.5);
        m.observe("lat", 5.0, &[1.0, 10.0]);
        m.observe("lat", 0.5, &[1.0, 10.0]);
        let text = m.snapshot().to_prometheus();
        // BTreeMap order: a_counter before z_counter.
        let a = text.find("agentnet_a_counter 2").unwrap();
        let z = text.find("agentnet_z_counter 1").unwrap();
        assert!(a < z);
        assert!(text.contains("# TYPE agentnet_speed gauge\nagentnet_speed 1.5\n"));
        // Cumulative buckets: le=1 has one observation, le=10 both.
        assert!(text.contains("agentnet_lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("agentnet_lat_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("agentnet_lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("agentnet_lat_sum 5.5\n"));
        assert!(text.contains("agentnet_lat_count 2\n"));
        // Every line is newline-terminated.
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn metric_names_are_sanitized_for_prometheus() {
        let m = Metrics::enabled();
        m.counter_add("weird-name.total", 1);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("agentnet_weird_name_total 1"));
    }
}
