//! Parallel, resumable, cache-backed execution of experiment cells.
//!
//! [`Executor::run_cells`] generalizes [`crate::replicate::run_replicates`]
//! in three ways while keeping its central guarantee — results come back
//! indexed by replicate, so output is bit-identical no matter how work was
//! scheduled:
//!
//! * **Global work gating.** All `run_cells` calls on one executor share a
//!   single permit pool of `jobs` slots, so a driver may run many
//!   experiments concurrently (one thread per experiment) and the flattened
//!   stream of (experiment × parameter × replicate) cells still occupies at
//!   most `jobs` cores at a time.
//! * **Persistent results.** With a [`ResultCache`] attached, every computed
//!   cell is written to disk; with resume reads enabled, cached cells are
//!   loaded instead of recomputed. Because cached values round-trip floats
//!   bit-exactly, a resumed run produces byte-identical reports.
//! * **Observability.** An optional event sink receives one
//!   [`RunEvent::CellFinished`] per cell, carrying whether it was a cache
//!   hit and how long it took — enough for live progress and a final
//!   metrics table without touching the report path.

use crate::cache::ResultCache;
use crate::rng::SeedSequence;
use crossbeam::channel;
use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Structured trace event emitted by the executor.
#[derive(Clone, Debug)]
pub enum RunEvent {
    /// One replicate cell finished (computed or served from cache).
    CellFinished {
        /// Experiment the cell belongs to.
        experiment: String,
        /// Replicate index within its group.
        replicate: usize,
        /// The cell's derived RNG seed (its cache identity).
        seed: u64,
        /// `true` when the value came from the result cache.
        cached: bool,
        /// Wall-clock cost of producing the value, in microseconds.
        micros: u64,
        /// Of `micros`, how long the cell waited for a worker permit
        /// before computing (queue pressure; 0 for cache hits).
        wait_micros: u64,
    },
}

/// Counting semaphore over std primitives (the vendored `parking_lot`
/// has no `Condvar`), sized once at executor construction.
struct Permits {
    available: Mutex<usize>,
    signal: Condvar,
}

impl Permits {
    fn new(count: usize) -> Self {
        Permits { available: Mutex::new(count.max(1)), signal: Condvar::new() }
    }

    fn acquire(&self) -> PermitGuard<'_> {
        let mut available = self.available.lock().expect("permit mutex poisoned");
        while *available == 0 {
            available = self.signal.wait(available).expect("permit mutex poisoned");
        }
        *available -= 1;
        PermitGuard { permits: self }
    }
}

/// Releases its permit on drop, including during unwinding, so a
/// panicking cell never starves the pool.
struct PermitGuard<'a> {
    permits: &'a Permits,
}

impl Drop for PermitGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut available) = self.permits.available.lock() {
            *available += 1;
            self.permits.signal.notify_one();
        }
    }
}

/// Schedules experiment cells across worker threads with an optional
/// persistent cache and event sink. Shared by reference between
/// experiment threads; all configuration happens up front via the
/// builder methods.
pub struct Executor {
    jobs: usize,
    cache: Option<ResultCache>,
    resume: bool,
    permits: Permits,
    sink: Option<channel::Sender<RunEvent>>,
}

impl Executor {
    /// Creates an executor running at most `jobs` cells concurrently
    /// across *all* of its `run_cells` calls. `jobs == 0` means "one
    /// per available core".
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        } else {
            jobs
        };
        Executor { jobs, cache: None, resume: false, permits: Permits::new(jobs), sink: None }
    }

    /// A one-cell-at-a-time executor with no cache and no sink — the
    /// configuration whose output every other configuration must match.
    pub fn serial() -> Self {
        Executor::new(1)
    }

    /// Attaches a result cache. Computed cells are always stored;
    /// `resume` additionally enables reading existing entries instead
    /// of recomputing.
    pub fn with_cache(mut self, cache: ResultCache, resume: bool) -> Self {
        self.cache = Some(cache);
        self.resume = resume;
        self
    }

    /// Attaches an event sink; one [`RunEvent`] is sent per finished
    /// cell. Dropping the executor drops its sender, ending the
    /// receiver's iteration.
    pub fn with_event_sink(mut self, sink: channel::Sender<RunEvent>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The concurrency limit this executor was built with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    fn emit(
        &self,
        experiment: &str,
        replicate: usize,
        seed: u64,
        cached: bool,
        micros: u64,
        wait_micros: u64,
    ) {
        if let Some(sink) = &self.sink {
            let _ = sink.send(RunEvent::CellFinished {
                experiment: experiment.to_string(),
                replicate,
                seed,
                cached,
                micros,
                wait_micros,
            });
        }
    }

    /// Runs `runs` replicate cells of `job` and returns their results
    /// in replicate order.
    ///
    /// Each cell `i` receives `seeds.child(i)` exactly as
    /// [`crate::replicate::run_replicates`] would, so the returned
    /// vector is identical to a serial run for every `jobs` setting and
    /// cache state. `config_hash` (see [`crate::cache::hash_config`])
    /// identifies the group's configuration for cache addressing.
    pub fn run_cells<T, F>(
        &self,
        experiment: &str,
        config_hash: u64,
        runs: usize,
        seeds: SeedSequence,
        job: F,
    ) -> Vec<T>
    where
        T: Serialize + Deserialize + Send,
        F: Fn(usize, SeedSequence) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();

        // Phase 1: serve what the cache already has.
        let mut misses: Vec<usize> = Vec::with_capacity(runs);
        for (i, slot) in slots.iter_mut().enumerate() {
            let key = ResultCache::key_for(experiment, config_hash, seeds, i);
            let hit = if self.resume {
                self.cache.as_ref().and_then(|c| c.load::<T>(&key))
            } else {
                None
            };
            match hit {
                Some(value) => {
                    self.emit(experiment, i, key.seed, true, 0, 0);
                    *slot = Some(value);
                }
                None => misses.push(i),
            }
        }

        // Phase 2: compute the misses, at most `jobs` at a time
        // globally. A single local worker still goes through the permit
        // pool so concurrent experiments cannot oversubscribe it.
        let compute = |i: usize| -> T {
            let key = ResultCache::key_for(experiment, config_hash, seeds, i);
            // Measures per-cell wall time for the stderr trace only; it
            // never enters results.
            // agentlint::allow(no-ambient-entropy)
            let started = Instant::now();
            let (value, wait_micros) = {
                let _permit = self.permits.acquire();
                let wait_micros = started.elapsed().as_micros() as u64;
                (job(i, seeds.child(i as u64)), wait_micros)
            };
            let micros = started.elapsed().as_micros() as u64;
            if let Some(cache) = &self.cache {
                if let Err(err) = cache.store(&key, &value) {
                    eprintln!("warning: cache write failed for {experiment}: {err}");
                }
            }
            self.emit(experiment, i, key.seed, false, micros, wait_micros);
            value
        };

        let workers = self.jobs.min(misses.len());
        if workers <= 1 {
            for i in misses {
                slots[i] = Some(compute(i));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = channel::unbounded::<(usize, T)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let misses = &misses;
                    let compute = &compute;
                    scope.spawn(move || loop {
                        // Ticket counter: only atomicity matters, the
                        // scope exit is the visibility barrier for the
                        // results. agentlint::allow(no-relaxed-atomics)
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= misses.len() {
                            break;
                        }
                        let i = misses[slot];
                        if tx.send((i, compute(i))).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, value) in rx {
                    slots[i] = Some(value);
                }
            });
        }

        slots.into_iter().map(|s| s.expect("executor worker dropped a cell")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("agentnet-exec-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_job(i: usize, seeds: SeedSequence) -> f64 {
        let mut rng = seeds.rng();
        (0..50).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() + i as f64
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let seeds = SeedSequence::new(2010).child(77);
        let serial = Executor::serial().run_cells("t", 1, 24, seeds, sample_job);
        for jobs in [2, 4, 7] {
            let parallel = Executor::new(jobs).run_cells("t", 1, 24, seeds, sample_job);
            let same = serial.iter().zip(&parallel).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn matches_run_replicates_exactly() {
        let seeds = SeedSequence::new(5).child(3);
        let legacy = crate::replicate::run_replicates(16, seeds, sample_job);
        let cells = Executor::new(4).run_cells("t", 9, 16, seeds, sample_job);
        assert_eq!(legacy, cells);
    }

    #[test]
    fn second_run_is_all_cache_hits_and_identical() {
        let root = tmpdir("hits");
        let seeds = SeedSequence::new(1).child(1);

        let first = Executor::new(2)
            .with_cache(ResultCache::new(&root), true)
            .run_cells("exp", 4, 12, seeds, sample_job);

        let (tx, rx) = channel::unbounded();
        let exec = Executor::new(2).with_cache(ResultCache::new(&root), true).with_event_sink(tx);
        let second = exec.run_cells("exp", 4, 12, seeds, sample_job);
        drop(exec);

        assert_eq!(first, second);
        let events: Vec<RunEvent> = rx.iter().collect();
        assert_eq!(events.len(), 12);
        let hits = events.iter().filter(|RunEvent::CellFinished { cached, .. }| *cached).count();
        assert_eq!(hits, 12, "second run should be served entirely from cache");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn without_resume_cache_is_write_only() {
        let root = tmpdir("writeonly");
        let seeds = SeedSequence::new(1).child(2);
        Executor::serial()
            .with_cache(ResultCache::new(&root), false)
            .run_cells("exp", 4, 3, seeds, sample_job);

        let (tx, rx) = channel::unbounded();
        let exec =
            Executor::serial().with_cache(ResultCache::new(&root), false).with_event_sink(tx);
        exec.run_cells("exp", 4, 3, seeds, sample_job);
        drop(exec);
        let hits = rx.iter().filter(|RunEvent::CellFinished { cached, .. }| *cached).count();
        assert_eq!(hits, 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn resume_after_mid_run_kill_recomputes_only_the_tail() {
        let root = tmpdir("resume");
        let seeds = SeedSequence::new(6).child(4);
        let runs = 10;
        let die_at = 6usize;

        // Simulate a kill: the job panics after `die_at` cells have been
        // computed and persisted. Serial order makes the cut exact.
        let exec = Executor::serial().with_cache(ResultCache::new(&root), true);
        let interrupted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.run_cells("exp", 2, runs, seeds, |i, s| {
                assert!(i < die_at, "simulated kill");
                sample_job(i, s)
            })
        }));
        assert!(interrupted.is_err());
        drop(exec);

        let (tx, rx) = channel::unbounded();
        let exec = Executor::new(3).with_cache(ResultCache::new(&root), true).with_event_sink(tx);
        let resumed = exec.run_cells("exp", 2, runs, seeds, sample_job);
        drop(exec);

        let hits = rx.iter().filter(|RunEvent::CellFinished { cached, .. }| *cached).count();
        assert_eq!(hits, die_at, "finished cells must not be recomputed");
        let fresh = Executor::serial().run_cells("exp", 2, runs, seeds, sample_job);
        assert_eq!(resumed, fresh);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupted_cache_entry_falls_back_to_recompute() {
        let root = tmpdir("corrupt");
        let seeds = SeedSequence::new(9).child(9);
        Executor::serial()
            .with_cache(ResultCache::new(&root), true)
            .run_cells("exp", 8, 4, seeds, sample_job);

        // Garble one entry on disk.
        let dir = root.join("exp");
        let victim = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        std::fs::write(&victim, "{not json").unwrap();

        let (tx, rx) = channel::unbounded();
        let exec = Executor::serial().with_cache(ResultCache::new(&root), true).with_event_sink(tx);
        let resumed = exec.run_cells("exp", 8, 4, seeds, sample_job);
        drop(exec);

        let hits = rx.iter().filter(|RunEvent::CellFinished { cached, .. }| *cached).count();
        assert_eq!(hits, 3, "three intact entries hit, one recomputes");
        let fresh = Executor::serial().run_cells("exp", 8, 4, seeds, sample_job);
        assert_eq!(resumed, fresh);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn global_permits_gate_concurrent_run_cells_calls() {
        // Two experiment threads share a jobs=1 executor; at no point
        // may two cells run simultaneously.
        let exec = Executor::new(1);
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let exec = &exec;
                let in_flight = &in_flight;
                let peak = &peak;
                scope.spawn(move || {
                    exec.run_cells("g", t, 6, SeedSequence::new(t).child(0), |_, _| {
                        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        0.0f64
                    });
                });
            }
        });
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn events_carry_wait_within_total_micros() {
        let (tx, rx) = channel::unbounded();
        let exec = Executor::new(2).with_event_sink(tx);
        exec.run_cells("w", 0, 6, SeedSequence::new(3).child(0), sample_job);
        drop(exec);
        let events: Vec<RunEvent> = rx.iter().collect();
        assert_eq!(events.len(), 6);
        for RunEvent::CellFinished { cached, micros, wait_micros, .. } in &events {
            assert!(!cached, "no cache attached");
            assert!(wait_micros <= micros, "permit wait is part of the cell's wall time");
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert!(Executor::new(0).jobs() >= 1);
    }

    #[test]
    fn deterministic_across_invocations_with_random_payloads() {
        let job = |_: usize, seeds: SeedSequence| -> u64 { seeds.rng().random() };
        // u64 payloads exercise the non-f64 serialization path too.
        let a = Executor::new(3).run_cells("d", 0, 16, SeedSequence::new(5), job);
        let b = Executor::serial().run_cells("d", 0, 16, SeedSequence::new(5), job);
        assert_eq!(a, b);
    }
}
