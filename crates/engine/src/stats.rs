//! Summary statistics over replicate runs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of a sample: count, mean, sample standard deviation, extrema and
/// a normal-approximation 95 % confidence half-width on the mean.
///
/// The paper reports "numbers averaged over a set of 40 different runs";
/// `Summary` is what every experiment in this workspace reports per
/// parameter setting.
///
/// ```
/// use agentnet_engine::Summary;
/// let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert_eq!(s.n, 8);
/// assert_eq!(s.mean, 5.0);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 9.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Half-width of the 95 % confidence interval on the mean
    /// (`1.96 * std / sqrt(n)`; 0 for a single sample).
    pub ci95: f64,
}

impl Summary {
    /// Summarizes a non-empty sample. Returns `None` for an empty iterator.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Option<Summary> {
        let values: Vec<f64> = samples.into_iter().collect();
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std = var.sqrt();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &values {
            min = min.min(v);
            max = max.max(v);
        }
        let ci95 = if n > 1 { 1.96 * std / (n as f64).sqrt() } else { 0.0 };
        Some(Summary { n, mean, std, min, max, ci95 })
    }

    /// `mean ± ci95` as a compact string, e.g. `"0.873 ± 0.012"`.
    pub fn mean_ci_string(&self, decimals: usize) -> String {
        format!("{:.d$} ± {:.d$}", self.mean, self.ci95, d = decimals)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4} ci95={:.4}",
            self.n, self.mean, self.std, self.min, self.max, self.ci95
        )
    }
}

/// Mean of an iterator of samples; `None` when empty.
pub fn mean(samples: impl IntoIterator<Item = f64>) -> Option<f64> {
    Summary::from_samples(samples).map(|s| s.mean)
}

/// The `p`-th percentile (`0.0..=1.0`) of a sample, with linear
/// interpolation between order statistics. Returns `None` for an empty
/// sample or `p` outside `[0, 1]`.
///
/// ```
/// use agentnet_engine::stats::percentile;
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&data, 0.0), Some(1.0));
/// assert_eq!(percentile(&data, 0.5), Some(2.5));
/// assert_eq!(percentile(&data, 1.0), Some(4.0));
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&p) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median of a sample (`percentile(_, 0.5)`).
pub fn median(samples: &[f64]) -> Option<f64> {
    percentile(samples, 0.5)
}

/// Relative change `(b - a) / a`, e.g. a speed-up when `a` and `b` are
/// finishing times. Returns `None` if `a` is zero.
pub fn relative_change(a: f64, b: f64) -> Option<f64> {
    if a == 0.0 {
        None
    } else {
        Some((b - a) / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::from_samples(std::iter::empty()).is_none());
        assert!(mean(std::iter::empty()).is_none());
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::from_samples([3.5]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn known_sample_statistics() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.std - 2.138089935).abs() < 1e-6);
        assert!((s.ci95 - 1.96 * s.std / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_helper_matches_summary() {
        assert_eq!(mean([1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn relative_change_basic() {
        assert_eq!(relative_change(100.0, 90.0), Some(-0.1));
        assert_eq!(relative_change(0.0, 5.0), None);
    }

    #[test]
    fn percentile_interpolates_and_bounds() {
        let data = [5.0, 1.0, 3.0]; // unsorted on purpose
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 0.5), Some(3.0));
        assert_eq!(percentile(&data, 1.0), Some(5.0));
        assert_eq!(percentile(&data, 0.25), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&data, 1.5), None);
        assert_eq!(median(&data), Some(3.0));
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn display_and_ci_string() {
        let s = Summary::from_samples([1.0, 3.0]).unwrap();
        assert!(s.to_string().contains("n=2"));
        assert_eq!(s.mean_ci_string(1), format!("{:.1} ± {:.1}", 2.0, s.ci95));
    }
}
