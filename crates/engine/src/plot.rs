//! Terminal plotting of time series.
//!
//! The paper's Java simulator shipped "a graphical view and plots"; this
//! is the terminal equivalent — Unicode sparklines and block charts used
//! by the examples and the `repro` binary to show knowledge/connectivity
//! curves without leaving the shell.

use crate::timeseries::TimeSeries;

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a one-line sparkline of the series, resampled to at most
/// `width` characters. Values are scaled to the series' own min..max
/// (a flat series renders as a line of mid blocks). Returns an empty
/// string for an empty series or zero width.
///
/// ```
/// use agentnet_engine::plot::sparkline;
/// use agentnet_engine::TimeSeries;
/// let s: TimeSeries = (0..32).map(|i| i as f64).collect();
/// let line = sparkline(&s, 8);
/// assert_eq!(line.chars().count(), 8);
/// assert!(line.starts_with('▁') && line.ends_with('█'));
/// ```
pub fn sparkline(series: &TimeSeries, width: usize) -> String {
    let values = series.values();
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let resampled = resample(values, width);
    let (lo, hi) = bounds(&resampled);
    let span = (hi - lo).max(f64::EPSILON);
    resampled
        .iter()
        .map(|v| {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            SPARKS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Renders a multi-line block chart (`height` rows by up to `width`
/// columns) with a `y`-axis legend of the value range. Returns an empty
/// string for an empty series or degenerate dimensions.
///
/// ```
/// use agentnet_engine::plot::chart;
/// use agentnet_engine::TimeSeries;
/// let s: TimeSeries = (0..20).map(|i| (i as f64).sin().abs()).collect();
/// let art = chart(&s, 20, 4);
/// assert_eq!(art.lines().count(), 4);
/// ```
pub fn chart(series: &TimeSeries, width: usize, height: usize) -> String {
    let values = series.values();
    if values.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    let resampled = resample(values, width);
    // Label with the *original* series' range: bucket averaging shrinks
    // extrema and would make the axis lie.
    let (lo, hi) = bounds(values);
    let span = (hi - lo).max(f64::EPSILON);
    let mut rows = Vec::with_capacity(height);
    for row in 0..height {
        // Row 0 is the top of the chart.
        let upper = 1.0 - row as f64 / height as f64;
        let lower = 1.0 - (row + 1) as f64 / height as f64;
        let label = if row == 0 {
            format!("{hi:>8.3} ")
        } else if row == height - 1 {
            format!("{lo:>8.3} ")
        } else {
            " ".repeat(9)
        };
        let mut line = label;
        for v in &resampled {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            line.push(if t >= upper {
                '█'
            } else if t > lower {
                // Partial fill of this row.
                let frac = (t - lower) * height as f64;
                SPARKS[((frac * 7.0).round() as usize).min(7)]
            } else {
                ' '
            });
        }
        rows.push(line);
    }
    rows.join("\n")
}

/// Averages `values` into at most `width` buckets.
fn resample(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let start = i * values.len() / width;
            let end = (((i + 1) * values.len()) / width).max(start + 1);
            let bucket = &values[start..end];
            bucket.iter().sum::<f64>() / bucket.len() as f64
        })
        .collect()
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        vals.iter().copied().collect()
    }

    #[test]
    fn sparkline_empty_and_zero_width() {
        assert_eq!(sparkline(&TimeSeries::new(), 10), "");
        assert_eq!(sparkline(&series(&[1.0]), 0), "");
    }

    #[test]
    fn sparkline_short_series_is_not_resampled() {
        let line = sparkline(&series(&[0.0, 1.0]), 10);
        assert_eq!(line.chars().count(), 2);
        assert_eq!(line, "▁█");
    }

    #[test]
    fn sparkline_monotone_series_is_monotone() {
        let s: TimeSeries = (0..100).map(|i| i as f64).collect();
        let line: Vec<char> = sparkline(&s, 10).chars().collect();
        assert!(line.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sparkline_flat_series_renders_uniformly() {
        let line = sparkline(&series(&[5.0; 16]), 8);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars.len(), 8);
        assert!(chars.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn chart_dimensions_and_labels() {
        let s: TimeSeries = (0..50).map(|i| i as f64 / 49.0).collect();
        let art = chart(&s, 30, 5);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].trim_start().starts_with("1.000"));
        assert!(lines[4].trim_start().starts_with("0.000"));
    }

    #[test]
    fn chart_empty_inputs() {
        assert_eq!(chart(&TimeSeries::new(), 10, 5), "");
        assert_eq!(chart(&series(&[1.0]), 0, 5), "");
        assert_eq!(chart(&series(&[1.0]), 5, 0), "");
    }

    #[test]
    fn resample_preserves_mean_roughly() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let r = resample(&values, 10);
        assert_eq!(r.len(), 10);
        let mean_in = values.iter().sum::<f64>() / values.len() as f64;
        let mean_out = r.iter().sum::<f64>() / r.len() as f64;
        assert!((mean_in - mean_out).abs() < 0.5);
    }
}
