//! Parallel replication of independent simulation runs.
//!
//! Every figure in the paper averages 40 independent runs of one parameter
//! setting "to factor out randomness in the initial placements of the
//! agents". [`run_replicates`] executes those runs across the machine's
//! cores; results come back indexed by replicate so the output is identical
//! no matter how work was scheduled.

use crate::rng::SeedSequence;
use crossbeam::channel;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `runs` independent replicates of `job` and returns their results in
/// replicate order.
///
/// `job` receives the replicate index and a [`SeedSequence`] derived from
/// `seeds.child(index)`, so each replicate gets an independent random
/// stream and the overall result is deterministic in the master seed
/// regardless of thread scheduling.
///
/// Uses up to `available_parallelism` worker threads (capped by `runs`).
///
/// ```
/// use agentnet_engine::replicate::run_replicates;
/// use agentnet_engine::rng::SeedSequence;
///
/// let out = run_replicates(8, SeedSequence::new(1), |i, seeds| {
///     (i, seeds.seed())
/// });
/// assert_eq!(out.len(), 8);
/// assert!(out.iter().enumerate().all(|(i, &(j, _))| i == j));
/// ```
pub fn run_replicates<T, F>(runs: usize, seeds: SeedSequence, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SeedSequence) -> T + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let workers =
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(runs);
    if workers <= 1 {
        return (0..runs).map(|i| job(i, seeds.child(i as u64))).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                // Ticket counter: only atomicity matters, the scope
                // exit is the visibility barrier for the results.
                // agentlint::allow(no-relaxed-atomics)
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= runs {
                    break;
                }
                let result = job(i, seeds.child(i as u64));
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();
        for (i, value) in rx {
            slots[i] = Some(value);
        }
        slots.into_iter().map(|s| s.expect("replicate worker dropped a result")).collect()
    })
}

/// Convenience wrapper: replicates a job returning `f64` and summarizes.
///
/// Returns `None` when `runs == 0`.
pub fn replicate_summary<F>(
    runs: usize,
    seeds: SeedSequence,
    job: F,
) -> Option<crate::stats::Summary>
where
    F: Fn(usize, SeedSequence) -> f64 + Sync,
{
    crate::stats::Summary::from_samples(run_replicates(runs, seeds, job))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn results_are_in_replicate_order() {
        let out = run_replicates(64, SeedSequence::new(0), |i, _| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_runs_is_empty() {
        let out: Vec<u32> = run_replicates(0, SeedSequence::new(0), |_, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn deterministic_across_invocations() {
        let job = |_: usize, seeds: SeedSequence| -> u64 { seeds.rng().random() };
        let a = run_replicates(16, SeedSequence::new(5), job);
        let b = run_replicates(16, SeedSequence::new(5), job);
        assert_eq!(a, b);
    }

    #[test]
    fn replicates_receive_distinct_seeds() {
        let out = run_replicates(32, SeedSequence::new(1), |_, seeds| seeds.seed());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len());
    }

    #[test]
    fn summary_wrapper_counts_runs() {
        let s = replicate_summary(10, SeedSequence::new(2), |i, _| i as f64).unwrap();
        assert_eq!(s.n, 10);
        assert_eq!(s.mean, 4.5);
        assert!(replicate_summary(0, SeedSequence::new(2), |_, _| 0.0).is_none());
    }

    #[test]
    fn single_run_uses_child_zero() {
        let direct = SeedSequence::new(7).child(0).seed();
        let out = run_replicates(1, SeedSequence::new(7), |_, s| s.seed());
        assert_eq!(out, vec![direct]);
    }
}
