//! Reproducible random-number streams.
//!
//! Every experiment owns a single master seed; everything random in a run —
//! topology, agent placement, movement tie-breaks, mobility — draws from
//! streams derived from `(master seed, label, index)`. Two properties
//! matter:
//!
//! 1. **Reproducibility** — the same master seed produces bit-identical
//!    results on any machine.
//! 2. **Independence** — replicate `i` and replicate `j` use unrelated
//!    streams, as do the topology generator and the agents inside one run,
//!    so adding a random draw in one component never perturbs another.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer — a high-quality 64-bit mixing function used to
/// derive child seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A derivable tree of seeds rooted at a master seed.
///
/// ```
/// use agentnet_engine::rng::SeedSequence;
///
/// let root = SeedSequence::new(42);
/// let run3 = root.child(3);
/// let mut agents = run3.child(0).rng();
/// let mut mobility = run3.child(1).rng();
/// // Streams are deterministic:
/// assert_eq!(root.child(3).seed(), run3.seed());
/// // ...and children differ from each other and the root:
/// assert_ne!(root.child(0).seed(), root.child(1).seed());
/// # let _ = (&mut agents, &mut mobility);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct SeedSequence {
    seed: u64,
}

impl SeedSequence {
    /// Creates the root of a seed tree.
    pub fn new(master: u64) -> Self {
        SeedSequence { seed: splitmix64(master) }
    }

    /// The raw 64-bit seed at this point of the tree.
    pub fn seed(self) -> u64 {
        self.seed
    }

    /// Derives the `index`-th child sequence.
    pub fn child(self, index: u64) -> SeedSequence {
        SeedSequence { seed: splitmix64(self.seed ^ splitmix64(index.wrapping_add(1))) }
    }

    /// Derives a child keyed by a string label (e.g. a component name),
    /// so components don't have to agree on index assignments.
    pub fn labeled(self, label: &str) -> SeedSequence {
        let mut acc = self.seed;
        for b in label.as_bytes() {
            acc = splitmix64(acc ^ u64::from(*b));
        }
        SeedSequence { seed: acc }
    }

    /// Instantiates a random-number generator at this node of the tree.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_master_same_stream() {
        let mut a = SeedSequence::new(7).child(2).rng();
        let mut b = SeedSequence::new(7).child(2).rng();
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn children_are_distinct() {
        let root = SeedSequence::new(1);
        let seeds: Vec<u64> = (0..100).map(|i| root.child(i).seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn child_is_not_parent() {
        let root = SeedSequence::new(5);
        assert_ne!(root.child(0).seed(), root.seed());
    }

    #[test]
    fn sibling_subtrees_do_not_collide() {
        let root = SeedSequence::new(9);
        // child(0).child(1) must differ from child(1).child(0)
        assert_ne!(root.child(0).child(1).seed(), root.child(1).child(0).seed());
    }

    #[test]
    fn labels_derive_distinct_streams() {
        let root = SeedSequence::new(3);
        assert_ne!(root.labeled("agents").seed(), root.labeled("mobility").seed());
        assert_eq!(root.labeled("agents").seed(), root.labeled("agents").seed());
    }

    #[test]
    fn masters_map_to_distinct_roots() {
        assert_ne!(SeedSequence::new(0).seed(), SeedSequence::new(1).seed());
    }

    #[test]
    fn splitmix_known_nonzero() {
        // Zero must not be a fixed point (StdRng tolerates it, but a zero
        // seed colliding with the "unset" convention would be confusing).
        assert_ne!(SeedSequence::new(0).seed(), 0);
    }
}
