//! Micro-benchmark harness behind `repro bench`.
//!
//! Times named kernels with a warmup/measured-iteration protocol and
//! packages the results as a serialisable [`BenchReport`] (the
//! `BENCH_<date>.json` files the CI smoke job gates on). Because CI
//! machines differ in raw speed, regression comparison is done on
//! *normalized* timings: every kernel's ns/iter is divided by the
//! ns/iter of a fixed pure-CPU [`calibration_kernel`] measured in the
//! same run, so a uniformly slower machine cancels out and only changes
//! in the kernels' relative cost trip the gate.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Name of the calibration kernel every report must contain for
/// normalized comparison.
pub const CALIBRATION_KERNEL: &str = "calibration";

/// Warmup/measurement protocol for [`time_kernel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchOptions {
    /// Untimed iterations before measurement (cache/branch warmup).
    pub warmup: u32,
    /// Timed iterations; the reported ns/iter is their median.
    pub iters: u32,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions { warmup: 3, iters: 10 }
    }
}

/// Timing of one kernel: the median, mean and minimum of the measured
/// per-iteration wall times in nanoseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Kernel name (stable across runs; the regression gate joins on it).
    pub kernel: String,
    /// Median wall time per iteration in nanoseconds.
    pub ns_per_iter: f64,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration in nanoseconds — the gated value: the minimum
    /// is the least noise-contaminated sample, so the regression gate
    /// stays stable on loaded CI machines.
    pub min_ns: f64,
    /// Number of measured iterations.
    pub iters: u32,
}

/// One kernel's regression verdict from [`BenchReport::regressions`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// The regressed kernel.
    pub kernel: String,
    /// Baseline calibration-normalized cost.
    pub baseline: f64,
    /// Current calibration-normalized cost.
    pub current: f64,
    /// `current / baseline` (> 1 means slower).
    pub ratio: f64,
}

/// A machine-readable bench run: the `BENCH_<date>.json` schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version of this file format.
    pub schema: u32,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Warmup iterations used.
    pub warmup: u32,
    /// Measured iterations used.
    pub iters: u32,
    /// Per-kernel timings, in execution order.
    pub kernels: Vec<KernelTiming>,
}

impl BenchReport {
    /// Creates an empty report stamped with `date`.
    pub fn new(date: impl Into<String>, opts: BenchOptions) -> Self {
        BenchReport {
            schema: 1,
            date: date.into(),
            warmup: opts.warmup,
            iters: opts.iters,
            kernels: Vec::new(),
        }
    }

    /// The timing recorded for `kernel`, if any.
    pub fn kernel(&self, kernel: &str) -> Option<&KernelTiming> {
        self.kernels.iter().find(|k| k.kernel == kernel)
    }

    /// `kernel`'s fastest iteration divided by the run's fastest
    /// calibration iteration — the machine-independent cost the gate
    /// compares (minima, being the least noise-contaminated samples,
    /// keep the gate stable on loaded machines).
    pub fn normalized(&self, kernel: &str) -> Option<f64> {
        let cal = self.kernel(CALIBRATION_KERNEL)?.min_ns;
        if cal <= 0.0 {
            return None;
        }
        Some(self.kernel(kernel)?.min_ns / cal)
    }

    /// Why this report cannot be calibration-normalized, if it can't:
    /// the calibration kernel is missing, or its recorded minimum is not
    /// a positive time. Either condition makes [`Self::normalized`]
    /// return `None` for *every* kernel — which would let the regression
    /// gate pass vacuously — so gate drivers must check this first and
    /// fail loudly.
    pub fn calibration_error(&self) -> Option<String> {
        match self.kernel(CALIBRATION_KERNEL) {
            None => Some(format!("report has no `{CALIBRATION_KERNEL}` kernel")),
            Some(k) if k.min_ns.is_nan() || k.min_ns <= 0.0 => Some(format!(
                "`{CALIBRATION_KERNEL}` kernel min_ns is {} (must be a positive time)",
                k.min_ns
            )),
            Some(_) => None,
        }
    }

    /// Kernels timed in this run but absent from `baseline` (the
    /// calibration kernel excepted): [`Self::regressions`] iterates
    /// baseline kernels only, so these are invisible to the gate until
    /// the baseline is refreshed. Gate drivers must report them.
    pub fn ungated_kernels(&self, baseline: &BenchReport) -> Vec<&str> {
        self.kernels
            .iter()
            .map(|k| k.kernel.as_str())
            .filter(|&k| k != CALIBRATION_KERNEL && baseline.kernel(k).is_none())
            .collect()
    }

    /// Kernels whose normalized cost exceeds the baseline's by more than
    /// `max_regression_pct` percent. Kernels missing from either report
    /// (and the calibration kernel itself) are skipped — see
    /// [`Self::ungated_kernels`] and [`Self::calibration_error`] for the
    /// blind spots a gate driver must close.
    pub fn regressions(&self, baseline: &BenchReport, max_regression_pct: f64) -> Vec<Regression> {
        let mut out = Vec::new();
        let limit = 1.0 + max_regression_pct / 100.0;
        for base in &baseline.kernels {
            if base.kernel == CALIBRATION_KERNEL {
                continue;
            }
            let (Some(b), Some(c)) =
                (baseline.normalized(&base.kernel), self.normalized(&base.kernel))
            else {
                continue;
            };
            if b > 0.0 && c / b > limit {
                out.push(Regression {
                    kernel: base.kernel.clone(),
                    baseline: b,
                    current: c,
                    ratio: c / b,
                });
            }
        }
        out
    }
}

/// Times `f` under the given protocol: `opts.warmup` untimed calls, then
/// `opts.iters` timed calls, reporting the median/mean/min wall time.
///
/// # Panics
///
/// Panics if `opts.iters` is zero.
pub fn time_kernel<F: FnMut()>(name: &str, opts: BenchOptions, mut f: F) -> KernelTiming {
    assert!(opts.iters > 0, "bench needs at least one measured iteration");
    for _ in 0..opts.warmup {
        f();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(opts.iters as usize);
    for _ in 0..opts.iters {
        let started = Instant::now();
        f();
        samples.push(started.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    let mid = samples.len() / 2;
    let median =
        if samples.len() % 2 == 1 { samples[mid] } else { 0.5 * (samples[mid - 1] + samples[mid]) };
    KernelTiming {
        kernel: name.to_string(),
        ns_per_iter: median,
        mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
        min_ns: samples[0],
        iters: opts.iters,
    }
}

/// The fixed pure-CPU workload used to normalize timings across
/// machines: an FNV-1a fold over a fixed integer stream. Wrap the result
/// in [`std::hint::black_box`] so the loop cannot be optimized away.
pub fn calibration_kernel() -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..200_000u64 {
        h = (h ^ i).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Formats a unix timestamp (seconds since the epoch) as a UTC
/// `YYYY-MM-DD` date — the `<date>` part of `BENCH_<date>.json`.
pub fn utc_date_string(unix_seconds: u64) -> String {
    // Civil-from-days (Howard Hinnant's algorithm), valid for all days
    // representable here.
    let z = (unix_seconds / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(kernel: &str, ns: f64) -> KernelTiming {
        KernelTiming { kernel: kernel.into(), ns_per_iter: ns, mean_ns: ns, min_ns: ns, iters: 10 }
    }

    fn report(pairs: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new("2026-01-01", BenchOptions::default());
        r.kernels = pairs.iter().map(|&(k, ns)| timing(k, ns)).collect();
        r
    }

    #[test]
    fn time_kernel_measures_and_counts() {
        let mut calls = 0u32;
        let t = time_kernel("busy", BenchOptions { warmup: 2, iters: 5 }, || {
            calls += 1;
            std::hint::black_box(calibration_kernel());
        });
        assert_eq!(calls, 7);
        assert_eq!(t.iters, 5);
        assert!(t.ns_per_iter > 0.0);
        assert!(t.min_ns <= t.ns_per_iter);
        assert!(t.mean_ns > 0.0);
    }

    #[test]
    fn normalization_divides_by_calibration() {
        let r = report(&[(CALIBRATION_KERNEL, 100.0), ("k", 250.0)]);
        assert_eq!(r.normalized("k"), Some(2.5));
        assert_eq!(r.normalized("missing"), None);
    }

    #[test]
    fn regression_gate_is_machine_speed_invariant() {
        let base = report(&[(CALIBRATION_KERNEL, 100.0), ("k", 200.0)]);
        // 3x slower machine, kernel unchanged relative to calibration.
        let same = report(&[(CALIBRATION_KERNEL, 300.0), ("k", 600.0)]);
        assert!(same.regressions(&base, 25.0).is_empty());
        // Same machine speed, kernel 2x slower: flagged.
        let slow = report(&[(CALIBRATION_KERNEL, 100.0), ("k", 400.0)]);
        let regs = slow.regressions(&base, 25.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].kernel, "k");
        assert!((regs[0].ratio - 2.0).abs() < 1e-12);
        // Within threshold: not flagged.
        let ok = report(&[(CALIBRATION_KERNEL, 100.0), ("k", 240.0)]);
        assert!(ok.regressions(&base, 25.0).is_empty());
    }

    #[test]
    fn regressions_skip_missing_and_calibration_kernels() {
        let base = report(&[(CALIBRATION_KERNEL, 100.0), ("gone", 100.0)]);
        let cur = report(&[(CALIBRATION_KERNEL, 500.0)]);
        assert!(cur.regressions(&base, 25.0).is_empty());
    }

    #[test]
    fn calibration_error_catches_missing_and_degenerate_kernels() {
        let ok = report(&[(CALIBRATION_KERNEL, 100.0), ("k", 200.0)]);
        assert_eq!(ok.calibration_error(), None);

        let missing = report(&[("k", 200.0)]);
        let err = missing.calibration_error().unwrap();
        assert!(err.contains("no `calibration` kernel"), "{err}");
        assert_eq!(missing.normalized("k"), None, "the silent-pass mode being guarded");

        for bad in [0.0, -5.0, f64::NAN] {
            let degenerate = report(&[(CALIBRATION_KERNEL, bad), ("k", 200.0)]);
            let err = degenerate.calibration_error().unwrap();
            assert!(err.contains("min_ns"), "{err}");
        }
    }

    #[test]
    fn ungated_kernels_lists_additions_only() {
        let base = report(&[(CALIBRATION_KERNEL, 100.0), ("old", 200.0)]);
        let cur = report(&[(CALIBRATION_KERNEL, 100.0), ("old", 210.0), ("new", 50.0)]);
        assert_eq!(cur.ungated_kernels(&base), vec!["new"]);
        // A fully covered report has nothing to flag, and the
        // calibration kernel itself is never listed.
        assert!(base.ungated_kernels(&cur).is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(&[(CALIBRATION_KERNEL, 123.5), ("k", 4.0)]);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn utc_dates_are_correct() {
        assert_eq!(utc_date_string(0), "1970-01-01");
        assert_eq!(utc_date_string(86_400), "1970-01-02");
        // 2000-02-29 00:00:00 UTC (leap day).
        assert_eq!(utc_date_string(951_782_400), "2000-02-29");
        // 2026-08-05 12:00:00 UTC.
        assert_eq!(utc_date_string(1_785_931_200), "2026-08-05");
    }
}
