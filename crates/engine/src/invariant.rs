//! Per-step simulation invariant checking.
//!
//! A stochastic simulator cannot be validated by output assertions alone:
//! a modelling bug can shift a statistic without breaking any unit test.
//! This module adds a second line of defence — predicates over simulation
//! state that must hold after *every* step, threaded through the driver
//! by [`run_until_checked`].
//!
//! Checking is strictly opt-in: [`crate::run_until`] is untouched, so a
//! simulation driven without an [`InvariantSet`] pays nothing.
//!
//! ```
//! use agentnet_engine::invariant::{invariant_fn, InvariantSet, run_until_checked};
//! use agentnet_engine::sim::{Step, TimeStepSim};
//!
//! struct Counter { ticks: u64 }
//! impl TimeStepSim for Counter {
//!     fn step(&mut self, _now: Step) { self.ticks += 1; }
//!     fn is_done(&self) -> bool { self.ticks >= 5 }
//! }
//!
//! let mut checks = InvariantSet::new();
//! checks.register(invariant_fn("ticks-track-time", |sim: &Counter, now| {
//!     if sim.ticks == now.as_u64() + 1 { Ok(()) } else { Err("drift".into()) }
//! }));
//! let out = run_until_checked(&mut Counter { ticks: 0 }, Step::new(10), &mut checks).unwrap();
//! assert!(out.finished);
//! ```

use crate::sim::{RunOutcome, Step, TimeStepSim};
use std::fmt;

/// A predicate over simulation state that must hold after every step.
///
/// Implementations take `&mut self` so they can carry state *across*
/// steps — monotonicity invariants remember the previous step's value
/// and compare against it.
pub trait Invariant<S: ?Sized> {
    /// Stable name of the invariant, shown in violation reports.
    fn name(&self) -> &'static str;

    /// Checks the invariant against `sim` just after the step `now` was
    /// executed. Returns a human-readable description of the violation
    /// on failure.
    fn check(&mut self, sim: &S, now: Step) -> Result<(), String>;
}

/// A named invariant violation: which check failed, when, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// The step after which the check failed.
    pub at: Step,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant `{}` violated at {}: {}", self.invariant, self.at, self.message)
    }
}

impl std::error::Error for InvariantViolation {}

/// Wraps a closure as an [`Invariant`] — the quickest way to register
/// one-off checks.
pub fn invariant_fn<S, F>(name: &'static str, f: F) -> impl Invariant<S>
where
    S: ?Sized,
    F: FnMut(&S, Step) -> Result<(), String>,
{
    struct FnInvariant<F> {
        name: &'static str,
        f: F,
    }
    impl<S: ?Sized, F: FnMut(&S, Step) -> Result<(), String>> Invariant<S> for FnInvariant<F> {
        fn name(&self) -> &'static str {
            self.name
        }
        fn check(&mut self, sim: &S, now: Step) -> Result<(), String> {
            (self.f)(sim, now)
        }
    }
    FnInvariant { name, f }
}

/// An ordered registry of invariants over one simulation type.
///
/// Checks run in registration order; the first failure wins.
#[derive(Default)]
pub struct InvariantSet<S: ?Sized> {
    checks: Vec<Box<dyn Invariant<S>>>,
}

impl<S: ?Sized> InvariantSet<S> {
    /// Creates an empty set.
    pub fn new() -> Self {
        InvariantSet { checks: Vec::new() }
    }

    /// Registers an invariant at the end of the set.
    pub fn register(&mut self, invariant: impl Invariant<S> + 'static) -> &mut Self {
        self.checks.push(Box::new(invariant));
        self
    }

    /// Number of registered invariants.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// Returns `true` if no invariants are registered.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Names of the registered invariants, in check order.
    pub fn names(&self) -> Vec<&'static str> {
        self.checks.iter().map(|c| c.name()).collect()
    }

    /// Runs every check against `sim`; stops at the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] encountered.
    pub fn check_all(&mut self, sim: &S, now: Step) -> Result<(), InvariantViolation> {
        for check in &mut self.checks {
            if let Err(message) = check.check(sim, now) {
                return Err(InvariantViolation { invariant: check.name(), at: now, message });
            }
        }
        Ok(())
    }
}

impl<S: ?Sized> fmt::Debug for InvariantSet<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvariantSet").field("names", &self.names()).finish()
    }
}

/// Like [`crate::run_until`], but runs `checks` after every executed
/// step and aborts on the first violation.
///
/// The unchecked driver is left untouched, so simulations driven without
/// an invariant set pay no overhead at all.
///
/// # Errors
///
/// Returns the first [`InvariantViolation`]; the simulation is left in
/// the state that violated it, available for inspection.
pub fn run_until_checked<S: TimeStepSim + ?Sized>(
    sim: &mut S,
    max_steps: Step,
    checks: &mut InvariantSet<S>,
) -> Result<RunOutcome, InvariantViolation> {
    let mut now = Step::ZERO;
    while now < max_steps {
        if sim.is_done() {
            return Ok(RunOutcome { steps: now, finished: true });
        }
        sim.step(now);
        checks.check_all(sim, now)?;
        now = now.next();
    }
    Ok(RunOutcome { steps: now, finished: sim.is_done() })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Upto {
        ticks: u64,
        done_at: u64,
    }

    impl TimeStepSim for Upto {
        fn step(&mut self, _now: Step) {
            self.ticks += 1;
        }
        fn is_done(&self) -> bool {
            self.ticks >= self.done_at
        }
    }

    #[test]
    fn empty_set_behaves_like_run_until() {
        let mut checks = InvariantSet::new();
        assert!(checks.is_empty());
        let out =
            run_until_checked(&mut Upto { ticks: 0, done_at: 5 }, Step::new(100), &mut checks)
                .unwrap();
        assert!(out.finished);
        assert_eq!(out.steps, Step::new(5));
    }

    #[test]
    fn violation_reports_name_step_and_message() {
        let mut checks = InvariantSet::new();
        checks.register(invariant_fn("tick-cap", |sim: &Upto, _| {
            if sim.ticks <= 3 {
                Ok(())
            } else {
                Err(format!("{} ticks", sim.ticks))
            }
        }));
        let err =
            run_until_checked(&mut Upto { ticks: 0, done_at: 50 }, Step::new(10), &mut checks)
                .unwrap_err();
        assert_eq!(err.invariant, "tick-cap");
        assert_eq!(err.at, Step::new(3), "4th step (index 3) pushed ticks to 4");
        assert_eq!(err.message, "4 ticks");
        assert!(err.to_string().contains("tick-cap"));
        assert!(err.to_string().contains("t3"));
    }

    #[test]
    fn checks_run_in_registration_order_and_first_failure_wins() {
        let mut checks: InvariantSet<Upto> = InvariantSet::new();
        checks.register(invariant_fn("first", |_: &Upto, _| Err("a".into())));
        checks.register(invariant_fn("second", |_: &Upto, _| Err("b".into())));
        assert_eq!(checks.names(), vec!["first", "second"]);
        assert_eq!(checks.len(), 2);
        let err = checks.check_all(&Upto { ticks: 0, done_at: 1 }, Step::ZERO).unwrap_err();
        assert_eq!(err.invariant, "first");
    }

    #[test]
    fn stateful_invariants_carry_state_across_steps() {
        struct Monotone {
            prev: Option<u64>,
        }
        impl Invariant<Upto> for Monotone {
            fn name(&self) -> &'static str {
                "ticks-monotone"
            }
            fn check(&mut self, sim: &Upto, _now: Step) -> Result<(), String> {
                let ok = self.prev.is_none_or(|p| sim.ticks >= p);
                self.prev = Some(sim.ticks);
                if ok {
                    Ok(())
                } else {
                    Err("ticks went backwards".into())
                }
            }
        }
        let mut checks = InvariantSet::new();
        checks.register(Monotone { prev: None });
        let out = run_until_checked(&mut Upto { ticks: 0, done_at: 8 }, Step::new(20), &mut checks)
            .unwrap();
        assert!(out.finished);
    }

    #[test]
    fn already_done_sim_runs_no_checks() {
        let mut checks: InvariantSet<Upto> = InvariantSet::new();
        checks.register(invariant_fn("never-run", |_: &Upto, _| Err("ran".into())));
        let out = run_until_checked(&mut Upto { ticks: 5, done_at: 5 }, Step::new(10), &mut checks)
            .unwrap();
        assert!(out.finished);
        assert_eq!(out.steps, Step::ZERO);
    }
}
