//! Content-addressed on-disk cache of replicate cell results.
//!
//! One *cell* is the smallest unit of experiment work: a single
//! replicate of one parameter setting of one experiment. A cell is
//! addressed by [`CellKey`] — the experiment id, a hash of everything
//! that determines the cell's value except randomness (configuration,
//! topology, constants), and the replicate's derived RNG seed. Because
//! every simulation in this workspace is bit-deterministic in its seed,
//! the key fully determines the value, so results can be transparently
//! reused across runs: a killed sweep resumes where it stopped, and a
//! `--full` run reuses the cells a `--quick` run already computed.
//!
//! **Invalidation rule:** any change to an experiment's configuration
//! (or to the simulation semantics, via [`SCHEMA_VERSION`]) changes the
//! config hash, which changes the cell's path — the stale entry is
//! simply never read again. Entries are plain JSON files under the
//! cache root; deleting the directory is always safe.

use crate::rng::SeedSequence;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Bump when simulation semantics change in a way serialized configs
/// cannot express (e.g. a policy bugfix alters trajectories). Stale
/// cells from older schemas are never read.
pub const SCHEMA_VERSION: u32 = 1;

/// Address of one replicate cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CellKey<'a> {
    /// The experiment the cell belongs to (e.g. `"fig5"`).
    pub experiment: &'a str,
    /// Hash of the cell's full configuration (see [`hash_config`]).
    pub config_hash: u64,
    /// The replicate's derived RNG seed.
    pub seed: u64,
}

impl CellKey<'_> {
    /// Relative path of this cell under the cache root:
    /// `<experiment>/<config_hash>-<seed>.json`.
    fn rel_path(&self) -> PathBuf {
        let dir: String = self
            .experiment
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        PathBuf::from(dir).join(format!("{:016x}-{:016x}.json", self.config_hash, self.seed))
    }
}

/// FNV-1a over a byte string — a stable, dependency-free content hash.
/// (Not cryptographic; collisions would silently alias cache entries,
/// but at 64 bits that needs billions of distinct configs.)
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of a cell configuration: a kind label (which helper /
/// metric the cell computes) plus any serializable parameter bundle.
/// The serialized JSON is the canonical form, so two configs hash equal
/// iff they serialize equal. [`SCHEMA_VERSION`] is mixed in so semantic
/// changes to the simulator can invalidate every existing entry at once.
pub fn hash_config<T: Serialize + ?Sized>(kind: &str, params: &T) -> u64 {
    let json = serde_json::to_string(params).unwrap_or_default();
    let mut h = hash_bytes(kind.as_bytes());
    h ^= hash_bytes(json.as_bytes()).rotate_left(17);
    h ^= u64::from(SCHEMA_VERSION).rotate_left(48);
    h
}

/// A directory of cell results, one JSON file per cell.
///
/// All operations are infallible from the caller's perspective: a
/// missing, unreadable, corrupted or mismatched entry loads as `None`
/// (the caller recomputes), and a failed store is reported but never
/// fatal (the run still has the value in memory).
#[derive(Clone, Debug)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// Opens (lazily — no I/O happens here) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ResultCache { root: root.into() }
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, key: &CellKey<'_>) -> PathBuf {
        self.root.join(key.rel_path())
    }

    /// Loads the cell stored under `key`, or `None` if it is absent,
    /// unparsable, or was stored under a different key (a corrupted or
    /// hand-edited file). Never panics and never errors: a bad entry
    /// behaves exactly like a miss.
    pub fn load<T: Deserialize>(&self, key: &CellKey<'_>) -> Option<T> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        let value: serde_json::Value = serde_json::parse(&text).ok()?;
        let envelope = value.as_object()?;
        // The envelope must match the key exactly — path collisions or
        // truncated/garbled writes must not surface as foreign results.
        if envelope.get("schema")?.as_u64()? != u64::from(SCHEMA_VERSION)
            || envelope.get("experiment")?.as_str()? != key.experiment
            || envelope.get("config_hash")?.as_u64()? != key.config_hash
            || envelope.get("seed")?.as_u64()? != key.seed
        {
            return None;
        }
        T::from_value(envelope.get("payload")?).ok()
    }

    /// Stores `payload` under `key`, atomically (write to a sibling temp
    /// file, then rename), so a kill mid-write leaves either the old
    /// entry or none — never a torn one.
    pub fn store<T: Serialize>(&self, key: &CellKey<'_>, payload: &T) -> std::io::Result<()> {
        let path = self.path(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let entry = serde_json::json!({
            "schema": SCHEMA_VERSION,
            "experiment": key.experiment,
            "config_hash": key.config_hash,
            "seed": key.seed,
            "payload": payload,
        });
        let text = serde_json::to_string(&entry)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // Temp name includes the seed so concurrent writers of different
        // cells in the same experiment directory never collide.
        let tmp = path.with_extension(format!("tmp-{:016x}", key.seed));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
        }
        std::fs::rename(&tmp, &path)
    }

    /// Derives the cell key for replicate `index` of a group whose
    /// replicate seeds fan out of `seeds` — the one place the
    /// (experiment, config, replicate) → key mapping is defined.
    pub fn key_for<'a>(
        experiment: &'a str,
        config_hash: u64,
        seeds: SeedSequence,
        index: usize,
    ) -> CellKey<'a> {
        CellKey { experiment, config_hash, seed: seeds.child(index as u64).seed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("agentnet-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = ResultCache::new(tmpdir("roundtrip"));
        let key = CellKey { experiment: "fig1", config_hash: 0xabcd, seed: 42 };
        cache.store(&key, &vec![1.5f64, 2.25, -0.75]).unwrap();
        let back: Vec<f64> = cache.load(&key).unwrap();
        assert_eq!(back, vec![1.5, 2.25, -0.75]);
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn float_payloads_round_trip_bit_exactly() {
        let cache = ResultCache::new(tmpdir("bits"));
        let key = CellKey { experiment: "fig1", config_hash: 1, seed: 2 };
        for (i, v) in [0.1f64, 1.0 / 3.0, 1e-300, 12345.678901234567].iter().enumerate() {
            let key = CellKey { seed: i as u64, ..key };
            cache.store(&key, v).unwrap();
            let back: f64 = cache.load(&key).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn missing_entry_is_none() {
        let cache = ResultCache::new(tmpdir("missing"));
        let key = CellKey { experiment: "fig1", config_hash: 7, seed: 7 };
        assert_eq!(cache.load::<f64>(&key), None);
    }

    #[test]
    fn corrupted_entry_is_none() {
        let cache = ResultCache::new(tmpdir("corrupt"));
        let key = CellKey { experiment: "fig1", config_hash: 9, seed: 9 };
        cache.store(&key, &3.0f64).unwrap();
        // Truncate the file mid-JSON.
        let path = cache.root().join(key.rel_path());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(cache.load::<f64>(&key), None);
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn entry_under_wrong_key_is_none() {
        let cache = ResultCache::new(tmpdir("wrongkey"));
        let key = CellKey { experiment: "fig1", config_hash: 5, seed: 5 };
        cache.store(&key, &1.0f64).unwrap();
        // Move the file to a different key's path: envelope mismatch.
        let other = CellKey { experiment: "fig1", config_hash: 5, seed: 6 };
        std::fs::rename(cache.root().join(key.rel_path()), cache.root().join(other.rel_path()))
            .unwrap();
        assert_eq!(cache.load::<f64>(&other), None);
        std::fs::remove_dir_all(cache.root()).unwrap();
    }

    #[test]
    fn config_hash_separates_kinds_params_and_schema() {
        let a = hash_config("mapping-finish", &(1u64, 2u64));
        let b = hash_config("mapping-curve", &(1u64, 2u64));
        let c = hash_config("mapping-finish", &(1u64, 3u64));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, hash_config("mapping-finish", &(1u64, 2u64)));
    }

    #[test]
    fn key_paths_are_filesystem_safe() {
        let key = CellKey { experiment: "ext/weird id", config_hash: 1, seed: 1 };
        let rel = key.rel_path();
        assert_eq!(rel.components().count(), 2);
        assert!(rel.to_str().unwrap().starts_with("ext_weird_id/"));
    }

    #[test]
    fn key_for_matches_seed_tree() {
        let seeds = SeedSequence::new(99);
        let key = ResultCache::key_for("fig2", 11, seeds, 3);
        assert_eq!(key.seed, seeds.child(3).seed());
        assert_eq!(key.experiment, "fig2");
    }
}
