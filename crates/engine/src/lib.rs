//! Deterministic time-step / discrete-event simulation engine.
//!
//! This crate is the paper's "2000/3000 lines of Java ... discrete event
//! scheduler, data-collection system" substrate, rebuilt as a reusable Rust
//! library:
//!
//! * [`sim`] — the time-step driver ([`TimeStepSim`]) used by both the
//!   mapping and routing simulations, plus the [`Step`] clock type.
//! * [`invariant`] — per-step invariant checking: an [`Invariant`]
//!   registry the checked driver [`run_until_checked`] threads through
//!   every simulation step (opt-in; the plain driver is untouched).
//! * [`events`] — a deterministic discrete-event queue (time plus insertion
//!   sequence ordering) for event-driven extensions.
//! * [`rng`] — reproducible random-number streams: a master seed fans out
//!   into independent per-run / per-component streams.
//! * [`timeseries`] — per-step metric recording with windowed statistics
//!   (the paper averages connectivity over steps 150–300).
//! * [`stats`] — summary statistics and normal-approximation confidence
//!   intervals over replicate runs.
//! * [`replicate`] — a parallel replication runner (the paper repeats every
//!   parameter setting 40 times).
//! * [`cache`] — a content-addressed on-disk store of replicate results,
//!   keyed by experiment, configuration hash, and replicate seed.
//! * [`exec`] — the cell executor: flattens (experiment × parameter ×
//!   replicate) work across a shared worker pool, resumes from the cache,
//!   and emits structured run events.
//! * [`obs`] — structured observability: counters, gauges, fixed-bucket
//!   histograms and span timers behind a zero-overhead-when-disabled
//!   [`Metrics`] handle, snapshot-exportable as JSON or Prometheus text.
//! * [`perf`] — the micro-benchmark harness behind `repro bench`:
//!   warmup/measure kernel timing, `BENCH_<date>.json` reports, and the
//!   calibration-normalized regression gate.
//! * [`sweep`] — parameter sweeps producing labelled result rows.
//! * [`table`] — markdown / CSV / JSON emission of result tables.
//! * [`plot`] — terminal sparklines and block charts of time series.
//!
//! # Example
//!
//! ```
//! use agentnet_engine::sim::{run_until, Step, TimeStepSim};
//!
//! struct Counter { ticks: u64 }
//! impl TimeStepSim for Counter {
//!     fn step(&mut self, _now: Step) { self.ticks += 1; }
//!     fn is_done(&self) -> bool { self.ticks >= 10 }
//! }
//!
//! let mut sim = Counter { ticks: 0 };
//! let outcome = run_until(&mut sim, Step::new(100));
//! assert!(outcome.finished);
//! assert_eq!(outcome.steps.as_u64(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod events;
pub mod exec;
pub mod invariant;
pub mod obs;
pub mod perf;
pub mod plot;
pub mod replicate;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod timeseries;

pub use cache::ResultCache;
pub use exec::{Executor, RunEvent};
pub use invariant::{run_until_checked, Invariant, InvariantSet, InvariantViolation};
pub use obs::{Metrics, MetricsSnapshot};
pub use rng::SeedSequence;
pub use sim::{run_until, RunOutcome, Step, TimeStepSim};
pub use stats::Summary;
pub use timeseries::TimeSeries;
