//! The UDP query/reply wire protocol: one request per datagram, one
//! reply per datagram, plain ASCII text.
//!
//! Requests (`<id>` is a caller-chosen u64 echoed verbatim in the
//! reply, for matching replies to requests over a shared socket):
//!
//! ```text
//! <id> ROUTE <node>     best current route from <node> to a gateway
//! <id> LINKS <node>     <node>'s live out-links
//! <id> REACH <node>     does <node>'s next-hop chain reach a gateway?
//! <id> INFO             snapshot header + map summary
//! ```
//!
//! Replies all start `<id> OK step=<s> topo=<t> seq=<q>` — the header
//! of the *one* snapshot the whole answer was computed from (staleness
//! semantics: the answer is exact as of step `s` / topology version
//! `t`, not of the instant the datagram arrived) — followed by a body:
//!
//! ```text
//! route gw=<g> next=<x> hops=<h> age=<a>   (or `route none`)
//! links n=<k> <v1> <v2> ...
//! reach 0|1
//! info nodes=<n> gateways=<g> reachable=<fraction>
//! ```
//!
//! Malformed requests and out-of-range nodes get `<id> ERR <message>`
//! (id `0` when no id could be parsed). Verbs are case-insensitive.

use crate::snapshot::MapSnapshot;
use agentnet_graph::NodeId;
use std::fmt::Write as _;

/// A parsed query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Best current route from the node to any live gateway.
    Route(NodeId),
    /// The node's live out-links.
    Links(NodeId),
    /// Whether the node's next-hop chain reaches a live gateway.
    Reach(NodeId),
    /// Snapshot header and map summary.
    Info,
}

/// Parses one request datagram.
///
/// # Errors
///
/// `(id, message)` — the id is whatever could be parsed from the first
/// token (0 otherwise), so the error reply still reaches the right
/// caller slot.
pub fn parse(datagram: &str) -> Result<(u64, Request), (u64, String)> {
    let mut parts = datagram.split_ascii_whitespace();
    let id_token = parts.next().ok_or((0, "empty request".to_string()))?;
    let id = id_token.parse::<u64>().map_err(|_| (0, format!("bad request id {id_token:?}")))?;
    let verb = parts.next().ok_or((id, "missing verb".to_string()))?;
    let node_arg =
        |parts: &mut std::str::SplitAsciiWhitespace<'_>| -> Result<NodeId, (u64, String)> {
            let token = parts.next().ok_or((id, format!("{verb} needs a node argument")))?;
            let index =
                token.parse::<usize>().map_err(|_| (id, format!("bad node argument {token:?}")))?;
            Ok(NodeId::new(index))
        };
    let req = match verb.to_ascii_uppercase().as_str() {
        "ROUTE" => Request::Route(node_arg(&mut parts)?),
        "LINKS" => Request::Links(node_arg(&mut parts)?),
        "REACH" => Request::Reach(node_arg(&mut parts)?),
        "INFO" => Request::Info,
        other => return Err((id, format!("unknown verb {other:?}"))),
    };
    if parts.next().is_some() {
        return Err((id, "trailing tokens after request".to_string()));
    }
    Ok((id, req))
}

/// Renders the reply to `req` computed from `snap` — a pure function of
/// the snapshot, so identical snapshots give byte-identical replies.
pub fn respond(id: u64, req: Request, snap: &MapSnapshot) -> String {
    let answer = |body: Result<String, String>| match body {
        Ok(body) => {
            let h = snap.header();
            format!("{id} OK step={} topo={} seq={} {body}", h.step, h.topology_version, h.seq)
        }
        Err(msg) => error_reply(id, &msg),
    };
    match req {
        Request::Route(node) => answer(snap.route(node).map(|route| match route {
            Some(r) => format!(
                "route gw={} next={} hops={} age={}",
                r.gateway.index(),
                r.next_hop.index(),
                r.hops,
                r.age
            ),
            None => "route none".to_string(),
        })),
        Request::Links(node) => answer(snap.links_of(node).map(|links| {
            let mut body = format!("links n={}", links.len());
            for v in links {
                let _ = write!(body, " {}", v.index());
            }
            body
        })),
        Request::Reach(node) => {
            answer(snap.is_reachable(node).map(|ok| format!("reach {}", u8::from(ok))))
        }
        Request::Info => answer(Ok(format!(
            "info nodes={} gateways={} reachable={:.6}",
            snap.node_count(),
            snap.gateways().len(),
            snap.reachable_fraction()
        ))),
    }
}

/// Renders an error reply.
pub fn error_reply(id: u64, msg: &str) -> String {
    format!("{id} ERR {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_baselines::zoo::{build_protocol, ZooParams};
    use agentnet_core::routing::{ProtocolKind, RouteIndex};
    use agentnet_engine::Step;
    use agentnet_radio::NetworkBuilder;

    fn snap() -> MapSnapshot {
        let net = NetworkBuilder::new(40).gateways(3).target_edges(320).build(5).unwrap();
        let mut protocol =
            build_protocol(ProtocolKind::Agents, net, &ZooParams::with_population(12), 5).unwrap();
        for s in 0..60 {
            protocol.step(Step::new(s));
        }
        MapSnapshot::capture(protocol.as_ref(), &mut RouteIndex::new(40), Step::new(60))
    }

    #[test]
    fn requests_parse_and_echo_ids() {
        assert_eq!(parse("7 ROUTE 12"), Ok((7, Request::Route(NodeId::new(12)))));
        assert_eq!(parse("0 links 3"), Ok((0, Request::Links(NodeId::new(3)))));
        assert_eq!(parse("  9  REACH  0  "), Ok((9, Request::Reach(NodeId::new(0)))));
        assert_eq!(parse("42 INFO"), Ok((42, Request::Info)));
    }

    #[test]
    fn malformed_requests_carry_the_parsed_id() {
        assert_eq!(parse("").unwrap_err().0, 0);
        assert_eq!(parse("x ROUTE 1").unwrap_err().0, 0);
        assert_eq!(parse("5").unwrap_err().0, 5);
        assert_eq!(parse("5 FLY 1").unwrap_err().0, 5);
        assert_eq!(parse("5 ROUTE").unwrap_err().0, 5);
        assert_eq!(parse("5 ROUTE abc").unwrap_err().0, 5);
        assert_eq!(parse("5 INFO extra").unwrap_err().0, 5);
    }

    #[test]
    fn replies_carry_the_snapshot_header_and_id() {
        let snap = snap();
        let h = snap.header();
        let reply = respond(31, Request::Info, &snap);
        assert!(reply.starts_with(&format!(
            "31 OK step={} topo={} seq={} info nodes=40 gateways=3",
            h.step, h.topology_version, h.seq
        )));
    }

    #[test]
    fn route_replies_match_the_snapshot() {
        let snap = snap();
        let routed = (0..40)
            .find(|&v| matches!(snap.route(NodeId::new(v)), Ok(Some(_))))
            .expect("warmed map has at least one route");
        let r = snap.route(NodeId::new(routed)).unwrap().unwrap();
        let reply = respond(1, Request::Route(NodeId::new(routed)), &snap);
        assert!(
            reply.contains(&format!(
                "route gw={} next={} hops={} age={}",
                r.gateway.index(),
                r.next_hop.index(),
                r.hops,
                r.age
            )),
            "{reply}"
        );
        let gw = snap.gateways()[0];
        assert!(respond(2, Request::Route(gw), &snap).contains("route none"));
    }

    #[test]
    fn links_and_reach_replies_are_exact() {
        let snap = snap();
        let node = NodeId::new(1);
        let links = snap.links_of(node).unwrap();
        let reply = respond(3, Request::Links(node), &snap);
        assert!(reply.contains(&format!("links n={}", links.len())), "{reply}");
        for v in links {
            assert!(reply.contains(&format!(" {}", v.index())), "{reply}");
        }
        let reach = respond(4, Request::Reach(node), &snap);
        let expected = u8::from(snap.is_reachable(node).unwrap());
        assert!(reach.ends_with(&format!("reach {expected}")), "{reach}");
    }

    #[test]
    fn out_of_range_nodes_are_errors_not_panics() {
        let snap = snap();
        for req in [
            Request::Route(NodeId::new(999)),
            Request::Links(NodeId::new(999)),
            Request::Reach(NodeId::new(999)),
        ] {
            let reply = respond(8, req, &snap);
            assert!(reply.starts_with("8 ERR"), "{reply}");
        }
        assert_eq!(error_reply(3, "boom"), "3 ERR boom");
    }
}
