//! The publish point: a sequence-keyed, double-buffered cell handing
//! immutable snapshot `Arc`s from one (or more) publishers to any
//! number of readers, without readers ever blocking publishers of the
//! *other* slot.
//!
//! # Design
//!
//! The cell's only atomic is `seq`, the generation counter; the slot a
//! generation lives in is derived from it (`seq & 1`). Earlier designs
//! kept a separate "active index" atomic next to the sequence — that is
//! a real concurrency bug, not just redundancy: a reader can pair a
//! *stale* index value with *fresh* slot content (the slot lock
//! synchronizes with the newest writer even when the index load
//! returned an old value), and on a second load legally observe an
//! older generation — headers moving back in time. The loom canary
//! `old_index_flip_design_breaks_monotonicity` in `tests/loom.rs`
//! reproduces exactly that interleaving. Deriving the slot from the
//! generation removes the two-variable race by construction: there is
//! nothing to pair inconsistently.
//!
//! # Memory-model argument
//!
//! Proven by exhaustive model checking (`tests/loom.rs`, run with
//! `RUSTFLAGS="--cfg loom"`); the human-readable version:
//!
//! * **Publish** stamps generation `g`, writes the snapshot into slot
//!   `g & 1` under that slot's write lock, then `seq.store(g, Release)`
//!   — all while holding the header ledger mutex, so concurrent
//!   publishers are fully serialized and `seq`'s modification order is
//!   exactly 1, 2, 3, …
//! * **Load** reads `target = seq.load(Acquire)`. Synchronizing with
//!   the Release store means the generation-`target` slot write
//!   happens-before the subsequent read-lock, so the slot now holds
//!   generation `target` or a *later* same-parity generation (`target +
//!   2k`) — never an earlier one. The header equality check accepts
//!   only `target`; on a mismatch the retry cannot loop: having
//!   observed generation `target + 2k` under the slot lock, the reader
//!   also inherited the writer's history through `seq.store(target +
//!   2k - 1)`, so its next Acquire load returns at least that — every
//!   retry strictly advances, bounded by the newest publish.
//! * **Monotonicity** needs no stronger orderings because it rides on
//!   per-location coherence: successive reads of `seq` never go
//!   backwards in modification order, the returned snapshot's `seq`
//!   equals the loaded value, and the ledger check makes `step` /
//!   `topology_version` nondecreasing in `seq`. `Relaxed` would be
//!   enough for monotonicity alone — Acquire/Release is required for
//!   tear-freedom (reading the slot before its write is visible).

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex, RwLock};

/// The monotone header every snapshot carries: publish sequence, step
/// count, and link-topology version. Within one [`SnapshotCell`] all
/// three are nondecreasing (`seq` strictly increasing), which is what
/// makes cross-swap reads safe: any two values a reader takes from one
/// snapshot belong to the same `(step, topology_version)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Publish sequence number, assigned by [`SnapshotCell::publish`]
    /// (the initial snapshot is `1`).
    pub seq: u64,
    /// Simulation steps executed when the snapshot was captured.
    pub step: u64,
    /// The substrate's link-topology version at capture.
    pub topology_version: u64,
}

/// What the cell needs from a snapshot type: a monotone header, and a
/// hook for the cell to stamp the publish sequence it assigns. The
/// production implementor is [`crate::snapshot::MapSnapshot`]; the loom
/// tests use a small payload type whose fields are derived from the
/// header so torn reads are detectable.
pub trait Versioned {
    /// The snapshot's current header.
    fn header(&self) -> SnapshotHeader;
    /// Stamps the cell-assigned publish sequence (called once, before
    /// the snapshot becomes shared).
    fn stamp_seq(&mut self, seq: u64);
}

/// The sequence-keyed publish point: generation `g` lives in slot
/// `g & 1`, readers key every access off one `seq` load.
///
/// * [`load`](Self::load) never blocks a publisher of the *other*
///   parity and never spins against a quiescent writer: the retry loop
///   advances only when publishes land mid-load, at most once per
///   intervening generation.
/// * [`publish`](Self::publish) serializes publishers through the
///   header ledger, rejects non-monotone headers, and never touches the
///   slot readers of the current generation are using.
pub struct SnapshotCell<T: Versioned = crate::snapshot::MapSnapshot> {
    /// Newest published generation; `seq & 1` names its slot.
    /// Store-Release in `publish` / load-Acquire in `load` is the one
    /// synchronizing edge readers rely on (see module docs).
    seq: AtomicU64,
    /// Snapshot slots, keyed by generation parity. The locks are held
    /// momentarily (one `Arc` clone or one `Arc` replacement); they
    /// order same-slot access, while cross-slot ordering comes from
    /// `seq` alone.
    slots: [RwLock<Arc<T>>; 2],
    /// Writer-side ledger of the newest published header. Serializes
    /// publishers and carries the monotonicity check; readers never
    /// take it.
    ledger: Mutex<SnapshotHeader>,
}

impl<T: Versioned> SnapshotCell<T> {
    /// Creates a cell publishing `initial` as sequence 1 (both slots
    /// start with a copy, so parity addressing works from the first
    /// load).
    pub fn new(mut initial: T) -> Self {
        initial.stamp_seq(1);
        let header = initial.header();
        let first = Arc::new(initial);
        SnapshotCell {
            seq: AtomicU64::new(1),
            slots: [RwLock::new(Arc::clone(&first)), RwLock::new(first)],
            ledger: Mutex::new(header),
        }
    }

    /// The current snapshot. Answer whole queries from the returned
    /// `Arc`, never from repeated `load` calls — one clone is one
    /// consistent point in time.
    pub fn load(&self) -> Arc<T> {
        loop {
            // Acquire: observing generation `target` makes its slot
            // write (sequenced before the Release store) visible.
            let target = self.seq.load(Ordering::Acquire);
            let slot = &self.slots[(target & 1) as usize];
            let snap = Arc::clone(&slot.read().expect("snapshot slot lock poisoned"));
            if snap.header().seq == target {
                return snap;
            }
            // The slot advanced past `target` (a publish landed between
            // the seq load and the slot read). The slot lock already
            // synchronized us with that newer publish, so the next seq
            // load is strictly larger — bounded retries, no spinning.
        }
    }

    /// Publishes `snap` as the new current snapshot, assigning the next
    /// sequence number. Publishers are serialized by the header ledger,
    /// so concurrent callers are safe (the step thread is the only
    /// production publisher).
    ///
    /// # Errors
    ///
    /// Rejects (and drops) a snapshot whose `step` or
    /// `topology_version` would move backwards relative to the
    /// currently published header.
    pub fn publish(&self, mut snap: T) -> Result<u64, String> {
        let mut ledger = self.ledger.lock().expect("snapshot ledger poisoned");
        let new = snap.header();
        if new.step < ledger.step || new.topology_version < ledger.topology_version {
            return Err(format!(
                "non-monotone snapshot rejected: step {} -> {}, topology {} -> {}",
                ledger.step, new.step, ledger.topology_version, new.topology_version
            ));
        }
        let seq = ledger.seq + 1;
        snap.stamp_seq(seq);
        *ledger = snap.header();
        {
            let slot = &self.slots[(seq & 1) as usize];
            *slot.write().expect("snapshot slot lock poisoned") = Arc::new(snap);
        }
        // Release: everything above — the slot write, the stamped
        // content — becomes visible to any reader whose Acquire load
        // returns `seq`. Still under the ledger lock, so seq's
        // modification order is exactly the publish order.
        self.seq.store(seq, Ordering::Release);
        Ok(seq)
    }
}
