//! The serving layer: a route-query daemon over the live simulation.
//!
//! The paper's agents exist to answer one question continuously — *what
//! is the best route to a gateway right now?* — but the batch
//! experiments only answer it after the fact. This crate turns any
//! protocol-zoo arm into a long-running map service:
//!
//! * a **step thread** advances the wireless substrate and, after every
//!   step, captures a self-contained [`snapshot::MapSnapshot`] (best
//!   route per node, live link rows, per-node reachability from
//!   [`agentnet_core::routing::RouteIndex`]);
//! * snapshots are published through the **sequence-keyed,
//!   double-buffered** [`cell::SnapshotCell`] — readers clone an `Arc`
//!   and answer entirely from one immutable snapshot, so queries never
//!   block the step thread and never mix state across a swap; the cell
//!   is built on the [`sync`] shim and its publish/load/stop protocol
//!   is exhaustively model-checked under `RUSTFLAGS="--cfg loom"`
//!   (`tests/loom.rs`);
//! * **UDP worker threads** answer the wire protocol of [`wire`]
//!   (best-gateway-from-node, current link set, reachability-of-node),
//!   and an optional minimal **HTTP listener** serves `/metrics` in
//!   Prometheus text format for scraping;
//! * per-query latency and snapshot staleness land in
//!   [`agentnet_engine::obs`] histograms, with p50/p95/p99 read back via
//!   [`agentnet_engine::obs::Histogram::quantile`].
//!
//! Determinism boundary: wall time is read only in [`clock`] and flows
//! *out* of the daemon (latency/staleness metrics). Replies are pure
//! functions of the published snapshot, and the snapshot sequence for a
//! given `(preset, protocol, seed, steps)` is byte-identical to a batch
//! run of the same arm.

pub mod cell;
pub mod clock;
pub mod server;
pub mod snapshot;
pub mod sync;
pub mod wire;

pub use cell::{SnapshotCell, SnapshotHeader, Versioned};
pub use server::{ServeConfig, ServeError, Server, QUERY_MICROS_BUCKETS, STALENESS_MICROS_BUCKETS};
pub use snapshot::{MapSnapshot, RouteAnswer};
