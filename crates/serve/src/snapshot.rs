//! Self-contained map snapshots, published through the sequence-keyed
//! cell in [`crate::cell`].
//!
//! A [`MapSnapshot`] freezes everything a query needs — best route per
//! node, live out-link rows, per-node reachability, the gateway set —
//! under one header carrying the step count and
//! [`topology_version`](agentnet_radio::WirelessNetwork::topology_version).
//! Readers answer entirely from one snapshot `Arc`, so a query can
//! never observe half of step *k* and half of step *k+1*: the
//! time-reversal panics `Step::since` guards against are impossible by
//! construction (ages are precomputed at capture with saturating
//! arithmetic, and [`SnapshotCell::publish`] rejects any non-monotone
//! header).
//!
//! The swap point itself — [`SnapshotCell`] — lives in [`crate::cell`]
//! behind the [`crate::sync`] shim, where its publish/load/stop
//! protocol is exhaustively model-checked (`tests/loom.rs`); this
//! module owns what a snapshot *contains* and how one is captured.

use crate::cell::{SnapshotHeader, Versioned};
use crate::clock;
use agentnet_core::routing::{RouteIndex, RoutingProtocol};
use agentnet_engine::Step;
use agentnet_graph::NodeId;
use std::time::Instant;

pub use crate::cell::SnapshotCell;

/// One node's best current route: the fewest-hop table entry whose
/// next-hop link is live at capture time (ties broken by lower gateway
/// id, matching
/// [`RoutingTable::best_entry`](agentnet_core::routing::RoutingTable::best_entry)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteAnswer {
    /// The gateway the route leads to.
    pub gateway: NodeId,
    /// The neighbour to forward to.
    pub next_hop: NodeId,
    /// Estimated hops to the gateway.
    pub hops: u32,
    /// Entry age in steps at the snapshot's step (saturating at 0 for
    /// entries stamped ahead of the capture step by a co-located
    /// exchange — never a `Step::since` panic).
    pub age: u64,
}

/// An immutable, internally consistent view of the map at one step.
#[derive(Clone, Debug)]
pub struct MapSnapshot {
    header: SnapshotHeader,
    /// Live gateways at capture (the BFS seed set).
    gateways: Vec<NodeId>,
    /// Per-node out-link rows of the substrate's link graph.
    out_links: Vec<Vec<NodeId>>,
    /// Best live route per node (`None` for gateways and routeless nodes).
    routes: Vec<Option<RouteAnswer>>,
    /// Per-node chain-reachability flags from [`RouteIndex`].
    reachable: Vec<bool>,
    /// Fraction of nodes whose chains reach a live gateway.
    reachable_fraction: f64,
    /// Wall-clock capture time (staleness metrics only — never answers).
    captured_at: Instant,
    /// FNV-1a fingerprint over the content (excluding `seq` and
    /// `captured_at`); [`MapSnapshot::validate`] recomputes it to catch
    /// torn reads in stress tests.
    checksum: u64,
}

impl MapSnapshot {
    /// Captures a snapshot of `protocol` at `step`, refreshing `index`
    /// against the current tables/links (the index is the daemon's
    /// persistent reverse-BFS cache; pass the same one every capture
    /// for delta-maintained refreshes).
    pub fn capture(protocol: &dyn RoutingProtocol, index: &mut RouteIndex, step: Step) -> Self {
        let net = protocol.network();
        let n = net.node_count();
        let links = net.links();
        let mut is_gateway = vec![false; n];
        for g in net.gateways() {
            if let Some(flag) = is_gateway.get_mut(g.index()) {
                *flag = true;
            }
        }
        let tables = protocol.tables();
        index.refresh(tables, links, &is_gateway, net.topology_version());
        let reachable_fraction = index.connected_fraction(protocol.live_gateways());
        let reachable = index.reached().to_vec();

        let mut out_links = Vec::with_capacity(n);
        let mut routes = Vec::with_capacity(n);
        for v in 0..n {
            let from = NodeId::new(v);
            out_links.push(links.out_neighbors(from).to_vec());
            let best = if is_gateway.get(v).copied().unwrap_or(false) {
                None
            } else {
                tables
                    .get(v)
                    .map(|t| {
                        t.entries()
                            .iter()
                            .filter(|e| links.has_edge(from, e.next_hop))
                            .min_by_key(|e| (e.hops, e.gateway))
                    })
                    .unwrap_or(None)
            };
            routes.push(best.map(|e| RouteAnswer {
                gateway: e.gateway,
                next_hop: e.next_hop,
                hops: e.hops,
                age: step.checked_since(e.installed_at).unwrap_or(0),
            }));
        }

        let mut snap = MapSnapshot {
            header: SnapshotHeader {
                seq: 0,
                step: step.as_u64(),
                topology_version: net.topology_version(),
            },
            gateways: protocol.live_gateways().to_vec(),
            out_links,
            routes,
            reachable,
            reachable_fraction,
            captured_at: clock::now(),
            checksum: 0,
        };
        snap.checksum = snap.fingerprint();
        snap
    }

    /// The snapshot's monotone header.
    pub fn header(&self) -> SnapshotHeader {
        self.header
    }

    /// Number of nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.routes.len()
    }

    /// The live gateways at capture.
    pub fn gateways(&self) -> &[NodeId] {
        &self.gateways
    }

    /// Fraction of nodes whose next-hop chains reached a live gateway.
    pub fn reachable_fraction(&self) -> f64 {
        self.reachable_fraction
    }

    /// The node's best current route (`None` for unknown, routeless, or
    /// gateway nodes); `Err` when the node id is out of range.
    pub fn route(&self, node: NodeId) -> Result<Option<&RouteAnswer>, String> {
        self.routes
            .get(node.index())
            .map(Option::as_ref)
            .ok_or_else(|| format!("node {node} out of range (n={})", self.routes.len()))
    }

    /// The node's live out-links, or `Err` when out of range.
    pub fn links_of(&self, node: NodeId) -> Result<&[NodeId], String> {
        self.out_links
            .get(node.index())
            .map(Vec::as_slice)
            .ok_or_else(|| format!("node {node} out of range (n={})", self.out_links.len()))
    }

    /// Whether the node's next-hop chain reached a live gateway at
    /// capture (gateways count as reachable), or `Err` when out of range.
    pub fn is_reachable(&self, node: NodeId) -> Result<bool, String> {
        self.reachable
            .get(node.index())
            .copied()
            .ok_or_else(|| format!("node {node} out of range (n={})", self.reachable.len()))
    }

    /// Wall time elapsed since capture, relative to `now` (saturating
    /// at zero if `now` predates the capture — a reader racing the
    /// swap). Feeds the staleness histogram; never feeds an answer.
    pub fn staleness_micros(&self, now: Instant) -> f64 {
        now.saturating_duration_since(self.captured_at).as_micros() as f64
    }

    /// FNV-1a over all answer-relevant content. Excludes `seq` (stamped
    /// after capture by [`SnapshotCell::publish`]) and `captured_at`.
    fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.header.step);
        eat(self.header.topology_version);
        eat(self.reachable_fraction.to_bits());
        eat(self.gateways.len() as u64);
        for g in &self.gateways {
            eat(g.index() as u64);
        }
        for row in &self.out_links {
            eat(row.len() as u64);
            for v in row {
                eat(v.index() as u64);
            }
        }
        for route in &self.routes {
            match route {
                None => eat(u64::MAX),
                Some(r) => {
                    eat(r.gateway.index() as u64);
                    eat(r.next_hop.index() as u64);
                    eat(u64::from(r.hops));
                    eat(r.age);
                }
            }
        }
        for &flag in &self.reachable {
            eat(u64::from(flag));
        }
        h
    }

    /// Asserts the snapshot is internally consistent: the stored
    /// fingerprint matches a recomputation (torn-read detector for the
    /// swap-vs-read stress tests) and the structural invariants hold —
    /// parallel vectors agree on `n`, every route's next hop is one of
    /// the node's live out-links, every route's gateway and every BFS
    /// seed is flagged reachable.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.routes.len();
        if self.out_links.len() != n || self.reachable.len() != n {
            return Err(format!(
                "torn snapshot: parallel vectors disagree (routes {n}, links {}, reachable {})",
                self.out_links.len(),
                self.reachable.len()
            ));
        }
        if self.checksum != self.fingerprint() {
            return Err("torn snapshot: content fingerprint mismatch".to_string());
        }
        for g in &self.gateways {
            if !self.reachable.get(g.index()).copied().unwrap_or(false) {
                return Err(format!("live gateway {g} is not flagged reachable"));
            }
        }
        for (v, route) in self.routes.iter().enumerate() {
            let Some(r) = route else { continue };
            let row = self.out_links.get(v).map(Vec::as_slice).unwrap_or(&[]);
            if !row.contains(&r.next_hop) {
                return Err(format!(
                    "route at node {v} forwards over a dead link to {}",
                    r.next_hop
                ));
            }
            if !self.gateways.contains(&r.gateway) {
                return Err(format!("route at node {v} targets non-live gateway {}", r.gateway));
            }
        }
        Ok(())
    }
}

impl Versioned for MapSnapshot {
    fn header(&self) -> SnapshotHeader {
        self.header
    }

    fn stamp_seq(&mut self, seq: u64) {
        // Deliberately outside the fingerprint: the cell assigns it
        // after capture, and `validate` must keep passing.
        self.header.seq = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_baselines::zoo::{build_protocol, ZooParams};
    use agentnet_core::routing::ProtocolKind;
    use agentnet_radio::NetworkBuilder;

    fn arm(seed: u64) -> Box<dyn RoutingProtocol> {
        let net = NetworkBuilder::new(40).gateways(3).target_edges(320).build(seed).unwrap();
        build_protocol(ProtocolKind::Agents, net, &ZooParams::with_population(12), seed).unwrap()
    }

    fn snapshot_after(
        steps: u64,
        seed: u64,
    ) -> (Box<dyn RoutingProtocol>, RouteIndex, MapSnapshot) {
        let mut protocol = arm(seed);
        for s in 0..steps {
            protocol.step(Step::new(s));
        }
        let mut index = RouteIndex::new(protocol.network().node_count());
        let snap = MapSnapshot::capture(protocol.as_ref(), &mut index, Step::new(steps));
        (protocol, index, snap)
    }

    #[test]
    fn capture_is_internally_consistent() {
        let (_, _, snap) = snapshot_after(60, 7);
        snap.validate().expect("fresh capture must validate");
        assert_eq!(snap.header().step, 60);
        assert_eq!(snap.node_count(), 40);
        assert!(snap.reachable_fraction() > 0.0);
        assert!(snap.routes.iter().flatten().count() > 0, "warmed tables must yield routes");
    }

    #[test]
    fn capture_matches_the_protocols_own_connectivity() {
        let (protocol, _, snap) = snapshot_after(80, 3);
        let reference = protocol.connectivity();
        assert_eq!(snap.reachable_fraction(), reference);
        let flagged =
            (0..snap.node_count()).filter(|&v| snap.is_reachable(NodeId::new(v)).unwrap()).count();
        assert_eq!(flagged as f64 / snap.node_count() as f64, reference);
    }

    #[test]
    fn route_answers_reference_live_links_and_real_gateways() {
        let (protocol, _, snap) = snapshot_after(60, 11);
        for v in 0..snap.node_count() {
            let node = NodeId::new(v);
            if let Some(r) = snap.route(node).unwrap() {
                assert!(snap.links_of(node).unwrap().contains(&r.next_hop));
                assert!(protocol.network().gateways().contains(&r.gateway));
            }
        }
        assert!(snap.route(NodeId::new(999)).is_err());
        assert!(snap.links_of(NodeId::new(999)).is_err());
        assert!(snap.is_reachable(NodeId::new(999)).is_err());
    }

    #[test]
    fn gateways_never_carry_routes() {
        let (protocol, _, snap) = snapshot_after(60, 5);
        for g in protocol.network().gateways() {
            assert!(snap.route(*g).unwrap().is_none());
            assert!(snap.is_reachable(*g).unwrap(), "gateways are self-reachable");
        }
    }

    #[test]
    fn validate_catches_a_doctored_snapshot() {
        let (_, _, mut snap) = snapshot_after(60, 9);
        let victim = snap.routes.iter().position(Option::is_some).unwrap();
        snap.routes[victim] = None;
        let err = snap.validate().unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn cell_assigns_strictly_increasing_sequence_numbers() {
        let (protocol, mut index, first) = snapshot_after(10, 2);
        let cell = SnapshotCell::new(first);
        assert_eq!(cell.load().header().seq, 1);
        for k in 0..5 {
            let snap = MapSnapshot::capture(protocol.as_ref(), &mut index, Step::new(10 + k));
            let seq = cell.publish(snap).unwrap();
            assert_eq!(seq, 2 + k);
            assert_eq!(cell.load().header().seq, seq);
        }
    }

    #[test]
    fn cell_rejects_time_reversal() {
        let (protocol, mut index, newer) = snapshot_after(20, 2);
        let older = {
            let mut protocol = arm(2);
            for s in 0..5 {
                protocol.step(Step::new(s));
            }
            MapSnapshot::capture(protocol.as_ref(), &mut RouteIndex::new(40), Step::new(5))
        };
        let cell = SnapshotCell::new(newer);
        let err = cell.publish(older).unwrap_err();
        assert!(err.contains("non-monotone"), "{err}");
        // The published view is untouched and a same-step republish is fine.
        assert_eq!(cell.load().header().step, 20);
        let same = MapSnapshot::capture(protocol.as_ref(), &mut index, Step::new(20));
        assert!(cell.publish(same).is_ok());
    }
}
