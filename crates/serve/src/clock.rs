//! The serve crate's sanctioned wall-clock access.
//!
//! agentlint's `no-ambient-entropy` rule bans `Instant::now` outside
//! dedicated timing modules; this is the serve layer's. Everything the
//! daemon measures with wall time — query latency, snapshot staleness,
//! step duration, serve deadlines — flows *out* of the system as
//! metrics or stop conditions. Query replies are computed purely from
//! the published [`crate::snapshot::MapSnapshot`], so the wall clock
//! never influences an answer's bytes.

use std::time::Instant;

/// The current wall-clock instant.
pub fn now() -> Instant {
    Instant::now()
}
