//! The daemon: step thread + UDP query workers + optional HTTP
//! `/metrics` listener, glued by a [`SnapshotCell`].
//!
//! Threading model (std only — no async runtime in the vendored tree):
//!
//! * **step thread** — advances the protocol arm one [`Step`] at a
//!   time, captures a [`MapSnapshot`] after every step, publishes it
//!   through the cell. Pacing via [`ServeConfig::step_interval`].
//! * **query workers** — N threads sharing one bound `UdpSocket`
//!   (cloned handles, short read timeouts so shutdown is prompt); each
//!   datagram is parsed, answered from one `cell.load()` clone, and
//!   replied to its sender.
//! * **http thread** — a nonblocking `TcpListener` answering
//!   `GET /metrics` with the Prometheus exposition of the shared
//!   [`Metrics`] registry (plus `GET /` with a one-line status).
//!
//! Metrics (all under the registry's `agentnet_` exposition prefix):
//! `serve_queries_total`, `serve_query_errors_total`,
//! `serve_query_micros` (histogram), `serve_snapshot_staleness_micros`
//! (histogram), `serve_step_micros` / `serve_capture_micros`
//! (histograms), `serve_steps_total`, `serve_snapshot_seq` (gauge),
//! and `serve_snapshot_rejects_total` for monotonicity rejections
//! (expected to stay 0).

use crate::clock;
use crate::snapshot::{MapSnapshot, SnapshotCell};
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc;
use crate::wire;
use agentnet_baselines::zoo::{build_protocol, ZooParams};
use agentnet_core::routing::{ProtocolKind, RouteIndex};
use agentnet_engine::obs::Metrics;
use agentnet_engine::Step;
use agentnet_radio::NetworkBuilder;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::thread::JoinHandle;
use std::time::Duration;

/// Query-latency histogram bounds in microseconds: loopback round
/// trips are sub-millisecond, so the buckets start at 1µs.
pub const QUERY_MICROS_BUCKETS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
    50_000.0, 100_000.0,
];

/// Snapshot-staleness histogram bounds in microseconds: from "fresh
/// this millisecond" up to multi-second frozen-map serving.
pub const STALENESS_MICROS_BUCKETS: &[f64] = &[
    100.0,
    1_000.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    500_000.0,
    1_000_000.0,
    5_000_000.0,
    30_000_000.0,
];

/// How long blocked reads wait before re-checking the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Daemon configuration; [`Default`] serves the 1k preset's legacy
/// agents arm frozen at step 0 on an ephemeral loopback port.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Nodes in the [`NetworkBuilder::scaled_preset`] substrate.
    pub nodes: usize,
    /// The protocol-zoo arm to serve.
    pub protocol: ProtocolKind,
    /// Zoo knobs (population / cache) for the arm.
    pub params: ZooParams,
    /// Substrate + protocol seed.
    pub seed: u64,
    /// Steps executed *before* serving begins (lets tables form so a
    /// frozen daemon still has routes to answer).
    pub warmup_steps: u64,
    /// Steps the step thread executes while serving; `0` freezes the
    /// map at the warmup state.
    pub steps: u64,
    /// Pause between serving steps (`ZERO` = free-run).
    pub step_interval: Duration,
    /// UDP query worker threads (min 1).
    pub query_threads: usize,
    /// UDP bind address (port 0 = ephemeral; read back via
    /// [`Server::udp_addr`]).
    pub udp_addr: SocketAddr,
    /// Optional HTTP bind address for `GET /metrics`.
    pub http_addr: Option<SocketAddr>,
    /// Metrics registry (disabled by default; pass
    /// [`Metrics::enabled`] to record).
    pub metrics: Metrics,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            nodes: 1_000,
            protocol: ProtocolKind::Agents,
            params: ZooParams::default(),
            seed: 42,
            warmup_steps: 0,
            steps: 0,
            step_interval: Duration::ZERO,
            query_threads: 4,
            udp_addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            http_addr: None,
            metrics: Metrics::disabled(),
        }
    }
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum ServeError {
    /// Substrate or protocol construction failed.
    Build(String),
    /// Socket setup failed.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Build(msg) => write!(f, "build failed: {msg}"),
            ServeError::Io(e) => write!(f, "socket setup failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A running daemon. Threads run until [`Server::shutdown`] (or drop,
/// which signals stop without joining).
pub struct Server {
    cell: Arc<SnapshotCell>,
    stop: Arc<AtomicBool>,
    stepping_done: Arc<AtomicBool>,
    udp_addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    metrics: Metrics,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the substrate + arm, runs the warmup, publishes the
    /// initial snapshot, binds the sockets, and spawns all threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::Build`] for substrate/arm construction failures,
    /// [`ServeError::Io`] for socket setup failures.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        let net = NetworkBuilder::scaled_preset(config.nodes)
            .build(config.seed)
            .map_err(|e| ServeError::Build(e.to_string()))?;
        let mut protocol = build_protocol(config.protocol, net, &config.params, config.seed)
            .map_err(ServeError::Build)?;
        for s in 0..config.warmup_steps {
            protocol.step(Step::new(s));
        }
        let n = protocol.network().node_count();
        let mut index = RouteIndex::new(n);
        let initial =
            MapSnapshot::capture(protocol.as_ref(), &mut index, Step::new(config.warmup_steps));
        let cell = Arc::new(SnapshotCell::new(initial));
        let stop = Arc::new(AtomicBool::new(false));
        let stepping_done = Arc::new(AtomicBool::new(config.steps == 0));
        let metrics = config.metrics.clone();
        let mut threads = Vec::new();

        let socket = UdpSocket::bind(config.udp_addr)?;
        socket.set_read_timeout(Some(POLL_INTERVAL))?;
        let udp_addr = socket.local_addr()?;
        for worker in 0..config.query_threads.max(1) {
            let socket = socket.try_clone()?;
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let metrics = metrics.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-udp-{worker}"))
                    .spawn(move || query_worker(&socket, &cell, &stop, &metrics))
                    .map_err(ServeError::Io)?,
            );
        }

        let http_addr = match config.http_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                let bound = listener.local_addr()?;
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let metrics = metrics.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name("serve-http".to_string())
                        .spawn(move || http_worker(&listener, &cell, &stop, &metrics))
                        .map_err(ServeError::Io)?,
                );
                Some(bound)
            }
            None => None,
        };

        {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let done = Arc::clone(&stepping_done);
            let metrics = metrics.clone();
            let steps = config.steps;
            let warmup = config.warmup_steps;
            let interval = config.step_interval;
            threads.push(
                std::thread::Builder::new()
                    .name("serve-step".to_string())
                    .spawn(move || {
                        step_loop(
                            protocol.as_mut(),
                            &mut index,
                            &cell,
                            &stop,
                            &metrics,
                            warmup,
                            steps,
                            interval,
                        );
                        // Release, paired with the Acquire in
                        // `stepping_done`: observing done == true
                        // happens-after the final publish, so the next
                        // `cell.load()` returns the final snapshot
                        // (loom: `stop_handshake_delivers_the_final_snapshot`).
                        done.store(true, Ordering::Release);
                    })
                    .map_err(ServeError::Io)?,
            );
        }

        Ok(Server { cell, stop, stepping_done, udp_addr, http_addr, metrics, threads })
    }

    /// The bound UDP query address.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// The bound HTTP address, when one was configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The shared metrics handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<MapSnapshot> {
        self.cell.load()
    }

    /// Whether the step thread has executed its full step budget.
    pub fn stepping_done(&self) -> bool {
        // Acquire, paired with the step thread's Release: true implies
        // every publish of the budget is visible (callers read the
        // final map right after this returns true).
        self.stepping_done.load(Ordering::Acquire)
    }

    /// Blocks until the step budget is exhausted or `timeout` elapses;
    /// returns whether stepping finished.
    pub fn wait_stepping_done(&self, timeout: Duration) -> bool {
        let deadline = clock::now() + timeout;
        while !self.stepping_done() {
            if clock::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Signals every thread to stop and joins them.
    pub fn shutdown(mut self) {
        // Release, paired with the workers' Acquire polls: a worker
        // that observes the stop flag also observes everything the
        // shutdown caller did before raising it. (For the flag alone
        // Relaxed would do — the join below is the real barrier — but
        // Release keeps the flag safe for callers that don't join.)
        self.stop.store(true, Ordering::Release);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Same Release handshake as `shutdown`, minus the joins:
        // detached threads still observe a consistent pre-stop state.
        self.stop.store(true, Ordering::Release);
    }
}

/// The step thread body: advance, capture, publish, pace — until the
/// budget is spent or stop is raised.
#[allow(clippy::too_many_arguments)]
fn step_loop(
    protocol: &mut dyn agentnet_core::routing::RoutingProtocol,
    index: &mut RouteIndex,
    cell: &SnapshotCell,
    stop: &AtomicBool,
    metrics: &Metrics,
    warmup: u64,
    steps: u64,
    interval: Duration,
) {
    for k in 0..steps {
        // Acquire, paired with the Release in shutdown/drop: observing
        // stop also observes the caller's pre-shutdown writes.
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stepped = {
            let _span = metrics.span("serve_step_micros");
            protocol.step(Step::new(warmup + k));
            warmup + k + 1
        };
        {
            let _span = metrics.span("serve_capture_micros");
            let snap = MapSnapshot::capture(protocol, index, Step::new(stepped));
            match cell.publish(snap) {
                Ok(seq) => metrics.gauge_set("serve_snapshot_seq", seq as f64),
                Err(_) => metrics.counter_add("serve_snapshot_rejects_total", 1),
            }
        }
        metrics.counter_add("serve_steps_total", 1);
        if !interval.is_zero() {
            std::thread::sleep(interval);
        }
    }
}

/// One UDP worker: receive, answer from one snapshot clone, reply.
fn query_worker(socket: &UdpSocket, cell: &SnapshotCell, stop: &AtomicBool, metrics: &Metrics) {
    let mut buf = [0u8; 1500];
    // Acquire poll of the stop flag: see `Server::shutdown`.
    while !stop.load(Ordering::Acquire) {
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok(pair) => pair,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let started = clock::now();
        let snap = cell.load();
        let datagram = buf.get(..len).unwrap_or(&[]);
        let reply = match std::str::from_utf8(datagram) {
            Ok(text) => match wire::parse(text) {
                Ok((id, req)) => wire::respond(id, req, &snap),
                Err((id, msg)) => {
                    metrics.counter_add("serve_query_errors_total", 1);
                    wire::error_reply(id, &msg)
                }
            },
            Err(_) => {
                metrics.counter_add("serve_query_errors_total", 1);
                wire::error_reply(0, "request is not utf-8")
            }
        };
        let _ = socket.send_to(reply.as_bytes(), peer);
        metrics.counter_add("serve_queries_total", 1);
        metrics.observe(
            "serve_query_micros",
            started.elapsed().as_micros() as f64,
            QUERY_MICROS_BUCKETS,
        );
        metrics.observe(
            "serve_snapshot_staleness_micros",
            snap.staleness_micros(started),
            STALENESS_MICROS_BUCKETS,
        );
    }
}

/// The HTTP thread: minimal `GET`-only responder for metric scrapes.
fn http_worker(listener: &TcpListener, cell: &SnapshotCell, stop: &AtomicBool, metrics: &Metrics) {
    // Acquire poll of the stop flag: see `Server::shutdown`.
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => handle_http(stream, cell, metrics),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
}

/// Answers one HTTP connection (request head read in one shot — ample
/// for the `GET /metrics` scrapes this exists for).
fn handle_http(mut stream: TcpStream, cell: &SnapshotCell, metrics: &Metrics) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut buf = [0u8; 1024];
    let len = stream.read(&mut buf).unwrap_or(0);
    let head = String::from_utf8_lossy(buf.get(..len).unwrap_or(&[])).into_owned();
    let mut tokens = head.split_ascii_whitespace();
    let method = tokens.next().unwrap_or("");
    let path = tokens.next().unwrap_or("/");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "only GET is served\n".to_string())
    } else {
        match path {
            "/metrics" => ("200 OK", metrics.snapshot().to_prometheus()),
            "/" | "/info" => {
                let snap = cell.load();
                let h = snap.header();
                (
                    "200 OK",
                    format!(
                        "agentnet-serve step={} topo={} seq={} nodes={} gateways={} reachable={:.6}\n",
                        h.step,
                        h.topology_version,
                        h.seq,
                        snap.node_count(),
                        snap.gateways().len(),
                        snap.reachable_fraction()
                    ),
                )
            }
            _ => ("404 Not Found", "unknown path (try /metrics)\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            nodes: 100,
            warmup_steps: 40,
            query_threads: 2,
            metrics: Metrics::enabled(),
            ..ServeConfig::default()
        }
    }

    fn ask(socket: &UdpSocket, server: &SocketAddr, request: &str) -> String {
        socket.send_to(request.as_bytes(), server).unwrap();
        let mut buf = [0u8; 4096];
        let (len, _) = socket.recv_from(&mut buf).unwrap();
        String::from_utf8_lossy(&buf[..len]).into_owned()
    }

    fn client() -> UdpSocket {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        socket
    }

    #[test]
    fn frozen_daemon_answers_queries_from_the_warmup_snapshot() {
        let server = Server::start(tiny_config()).unwrap();
        let addr = server.udp_addr();
        let socket = client();
        let info = ask(&socket, &addr, "1 INFO");
        assert!(info.starts_with("1 OK step=40 "), "{info}");
        assert!(info.contains("nodes=100"), "{info}");

        let snap = server.snapshot();
        snap.validate().unwrap();
        for v in 0..snap.node_count() {
            let reply = ask(&socket, &addr, &format!("7 ROUTE {v}"));
            let expected =
                wire::respond(7, wire::Request::Route(agentnet_graph::NodeId::new(v)), &snap);
            assert_eq!(reply, expected, "served answer must equal the snapshot's answer");
        }
        let errors = ask(&socket, &addr, "9 ROUTE 100000");
        assert!(errors.starts_with("9 ERR"), "{errors}");
        let parse_err = ask(&socket, &addr, "garbage");
        assert!(parse_err.starts_with("0 ERR"), "{parse_err}");

        let metrics = server.metrics().snapshot();
        assert!(metrics.counters["serve_queries_total"] >= 100);
        assert!(metrics.histograms.contains_key("serve_query_micros"));
        assert!(metrics.histograms.contains_key("serve_snapshot_staleness_micros"));
        server.shutdown();
    }

    #[test]
    fn stepping_daemon_advances_the_published_snapshot() {
        let config = ServeConfig { steps: 30, ..tiny_config() };
        let server = Server::start(config).unwrap();
        assert!(server.wait_stepping_done(Duration::from_secs(60)), "step budget must finish");
        let snap = server.snapshot();
        assert_eq!(snap.header().step, 70, "warmup 40 + 30 served steps");
        assert!(snap.header().seq >= 31, "every step publishes");
        snap.validate().unwrap();
        let metrics = server.metrics().snapshot();
        assert_eq!(metrics.counters["serve_steps_total"], 30);
        assert_eq!(metrics.counters.get("serve_snapshot_rejects_total"), None);
        server.shutdown();
    }

    #[test]
    fn http_listener_serves_metrics_and_info() {
        let config =
            ServeConfig { http_addr: Some(SocketAddr::from(([127, 0, 0, 1], 0))), ..tiny_config() };
        let server = Server::start(config).unwrap();
        let http = server.http_addr().unwrap();

        // Prime one query so the latency histogram exists.
        let socket = client();
        let _ = ask(&socket, &server.udp_addr(), "1 INFO");

        let fetch = |path: &str| {
            let mut stream = TcpStream::connect(http).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
            let mut body = String::new();
            let _ = stream.read_to_string(&mut body);
            body
        };
        let metrics = fetch("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("agentnet_serve_query_micros_bucket"), "{metrics}");
        let info = fetch("/");
        assert!(info.contains("agentnet-serve step=40"), "{info}");
        assert!(fetch("/nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads_promptly() {
        let started = clock::now();
        let server = Server::start(ServeConfig {
            steps: 1_000_000,
            step_interval: Duration::from_millis(1),
            ..tiny_config()
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        assert!(started.elapsed() < Duration::from_secs(30));
    }
}
