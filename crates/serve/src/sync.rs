//! The sync shim: `std::sync` in real builds, `loom::sync` under
//! `RUSTFLAGS="--cfg loom"`.
//!
//! Every synchronization primitive the serving layer uses is imported
//! from here, never from `std::sync` directly. That single choke point
//! is what lets `tests/loom.rs` run the *production* [`crate::cell`]
//! code under the model checker: the same publish/load/stop source
//! compiles against loom's intercepted atomics and locks, and every
//! interleaving plus every C11-allowed weak-memory outcome is explored
//! exhaustively.
//!
//! Only the model-checkable subset is re-exported. Real-thread
//! machinery (`std::thread::Builder`, sockets, timers) stays in
//! [`crate::server`], which is compiled but never *run* under loom.

#[cfg(not(loom))]
pub use std::sync::{atomic, Arc, Mutex, RwLock};

#[cfg(loom)]
pub use loom::sync::{atomic, Arc, Mutex, RwLock};

#[cfg(not(loom))]
pub use std::thread;

#[cfg(loom)]
pub use loom::thread;
