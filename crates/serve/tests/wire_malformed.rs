//! Malformed-input hardening for the query front end: every
//! `wire::parse` error path echoes the caller's id, non-UTF-8 and
//! oversized datagrams get an answer instead of a dropped worker, and
//! no byte soup panics the parser. The exact error strings are pinned
//! here because operators match on them when debugging client bugs.

#![cfg(not(loom))]

use agentnet_engine::obs::Metrics;
use agentnet_serve::wire::{self, Request};
use agentnet_serve::{ServeConfig, Server};
use proptest::prelude::*;
use std::net::UdpSocket;
use std::time::Duration;

/// The UDP workers' receive buffer; datagrams beyond this are
/// truncated by the kernel, not rejected (`server.rs::query_worker`).
const RECV_BUF: usize = 1500;

fn err(datagram: &str) -> (u64, String) {
    wire::parse(datagram).expect_err(&format!("{datagram:?} must not parse"))
}

#[test]
fn every_parse_error_path_echoes_the_right_id() {
    // No id recoverable: the reply goes out under id 0.
    assert_eq!(err(""), (0, "empty request".into()));
    assert_eq!(err(" \t \r\n "), (0, "empty request".into()));
    assert_eq!(err("x ROUTE 1"), (0, "bad request id \"x\"".into()));
    assert_eq!(err("-3 INFO"), (0, "bad request id \"-3\"".into()));
    // A u64-overflowing id token is a bad id, not a wrapped one.
    assert_eq!(
        err("99999999999999999999 INFO"),
        (0, "bad request id \"99999999999999999999\"".into())
    );
    // NUL is not ASCII whitespace, so it fuses into the id token (the
    // Debug echo escapes it, keeping the reply printable).
    assert_eq!(err("5\u{0}INFO"), (0, "bad request id \"5\\0INFO\"".into()));

    // Id parsed: every later failure must carry it back.
    assert_eq!(err("5"), (5, "missing verb".into()));
    assert_eq!(err("5 ROUTE"), (5, "ROUTE needs a node argument".into()));
    // The missing-argument echo keeps the caller's casing.
    assert_eq!(err("5 links"), (5, "links needs a node argument".into()));
    assert_eq!(err("5 REACH x9"), (5, "bad node argument \"x9\"".into()));
    assert_eq!(err("5 ROUTE -1"), (5, "bad node argument \"-1\"".into()));
    // A usize-overflowing node token is malformed, not clamped.
    let wide = "9".repeat(40);
    assert_eq!(err(&format!("5 LINKS {wide}")), (5, format!("bad node argument {wide:?}")));
    // Unknown verbs echo post-uppercasing (the form that was matched).
    assert_eq!(err("5 fly 1"), (5, "unknown verb \"FLY\"".into()));
    assert_eq!(err("5 INFO extra"), (5, "trailing tokens after request".into()));
    assert_eq!(err("5 ROUTE 1 2"), (5, "trailing tokens after request".into()));
}

#[test]
fn error_replies_are_id_prefixed() {
    for datagram in ["", "x", "5", "5 FLY", "5 ROUTE zz", "5 INFO 9"] {
        let (id, msg) = err(datagram);
        let reply = wire::error_reply(id, &msg);
        assert!(reply.starts_with(&format!("{id} ERR ")), "{datagram:?} -> {reply:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes, lossily decoded the way a UDP worker would see
    /// them, never panic the parser — and every rejection renders as a
    /// well-formed `<id> ERR <msg>` reply.
    #[test]
    fn parse_never_panics_on_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        let text = String::from_utf8_lossy(&bytes);
        match wire::parse(&text) {
            Ok((_, req)) => {
                prop_assert!(matches!(
                    req,
                    Request::Route(_) | Request::Links(_) | Request::Reach(_) | Request::Info
                ));
            }
            Err((id, msg)) => {
                prop_assert!(!msg.is_empty());
                let reply = wire::error_reply(id, &msg);
                let prefixed = reply.starts_with(&format!("{id} ERR "));
                prop_assert!(prefixed);
            }
        }
    }

    /// Well-formed requests round-trip the id and decode the verb,
    /// whatever the id magnitude or verb casing.
    #[test]
    fn well_formed_requests_round_trip(
        id in 0u64..u64::MAX,
        verb in 0usize..4,
        node in 0usize..100_000,
        upper in 0usize..2,
    ) {
        let name = ["route", "links", "reach", "info"][verb];
        let name = if upper == 1 { name.to_ascii_uppercase() } else { name.to_string() };
        let datagram = if verb == 3 {
            format!("{id} {name}")
        } else {
            format!("{id} {name} {node}")
        };
        let (got_id, req) = wire::parse(&datagram).expect("well-formed request");
        prop_assert_eq!(got_id, id);
        let node_of = |r: Request| match r {
            Request::Route(v) | Request::Links(v) | Request::Reach(v) => Some(v.index()),
            Request::Info => None,
        };
        prop_assert_eq!(node_of(req), if verb == 3 { None } else { Some(node) });
    }

    /// Any non-numeric node token is rejected under the caller's id —
    /// bytes 58..=126 cover printable ASCII with no digits and no
    /// whitespace, so the token survives tokenization intact.
    #[test]
    fn garbage_node_tokens_echo_the_id(
        id in 0u64..10_000,
        junk in proptest::collection::vec(58u8..=126, 1..12),
    ) {
        let token = String::from_utf8(junk).expect("range is ASCII");
        let (got_id, msg) = err(&format!("{id} ROUTE {token}"));
        prop_assert_eq!(got_id, id);
        prop_assert!(msg.contains("bad node argument"), "{}", msg);
    }
}

/// End-to-end over a real socket: a non-UTF-8 datagram and an
/// over-sized one both draw error replies, both bump the error
/// counter, and the worker keeps serving afterwards.
#[test]
fn udp_front_end_survives_malformed_and_oversized_datagrams() {
    let server = Server::start(ServeConfig {
        nodes: 100,
        warmup_steps: 40,
        query_threads: 2,
        metrics: Metrics::enabled(),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.udp_addr();
    let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    socket.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let ask = |bytes: &[u8]| -> String {
        socket.send_to(bytes, addr).unwrap();
        let mut buf = [0u8; 4096];
        let (len, _) = socket.recv_from(&mut buf).unwrap();
        String::from_utf8_lossy(&buf[..len]).into_owned()
    };

    // Invalid UTF-8 cannot carry an id, so the reply goes to id 0.
    assert_eq!(ask(&[0xff, 0xfe, b' ', b'A']), "0 ERR request is not utf-8");

    // A datagram past the worker's buffer is truncated by the kernel,
    // so the worker sees the first RECV_BUF bytes. Here that leaves an
    // id, a verb, and a node token too wide for usize — the reply must
    // still reach id 7 rather than vanishing.
    let oversized = format!("7 ROUTE {}", "9".repeat(2 * RECV_BUF));
    let reply = ask(oversized.as_bytes());
    assert!(reply.starts_with("7 ERR bad node argument"), "{reply}");

    // The worker survived both: a valid query still gets answered.
    let info = ask(b"11 INFO");
    assert!(info.starts_with("11 OK step=40 "), "{info}");

    let metrics = server.metrics().snapshot();
    assert!(metrics.counters["serve_query_errors_total"] >= 2, "{:?}", metrics.counters);
    server.shutdown();
}
