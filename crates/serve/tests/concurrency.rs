//! Swap-vs-read stress and consistency tests for the double-buffered
//! snapshot cell, plus the frozen-daemon-vs-batch golden check.

use agentnet_baselines::zoo::{build_protocol, ZooParams};
use agentnet_core::routing::{ProtocolKind, RouteIndex, RoutingProtocol};
use agentnet_engine::Step;
use agentnet_graph::NodeId;
use agentnet_radio::NetworkBuilder;
use agentnet_serve::{wire, MapSnapshot, SnapshotCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn arm(nodes: usize, seed: u64) -> Box<dyn RoutingProtocol> {
    let net = NetworkBuilder::scaled_preset(nodes).build(seed).unwrap();
    build_protocol(ProtocolKind::Agents, net, &ZooParams::with_population(nodes / 4), seed).unwrap()
}

/// N reader threads hammer `load` while the step thread runs 1k steps,
/// publishing after every one. Every observed snapshot must validate
/// (no torn content) and every reader's header sequence must be
/// monotone — the `Step::since` time-reversal scenario is a header
/// going backwards across a swap, which this hunts directly.
#[test]
fn readers_never_observe_torn_or_time_reversed_snapshots() {
    const STEPS: u64 = 1_000;
    const READERS: usize = 4;

    let mut protocol = arm(100, 7);
    let mut index = RouteIndex::new(100);
    let initial = MapSnapshot::capture(protocol.as_ref(), &mut index, Step::ZERO);
    let cell = Arc::new(SnapshotCell::new(initial));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let mut last = cell.load().header();
                let mut observed = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = cell.load();
                    snap.validate().expect("reader observed a torn snapshot");
                    let h = snap.header();
                    assert!(
                        h.seq >= last.seq
                            && h.step >= last.step
                            && h.topology_version >= last.topology_version,
                        "header went back in time: {last:?} -> {h:?}"
                    );
                    last = h;
                    observed += 1;
                }
                observed
            }));
        }

        for s in 0..STEPS {
            protocol.step(Step::new(s));
            let snap = MapSnapshot::capture(protocol.as_ref(), &mut index, Step::new(s + 1));
            cell.publish(snap).expect("in-order publishes are always monotone");
        }
        done.store(true, Ordering::Release);

        for reader in readers {
            let observed = reader.join().expect("reader panicked");
            assert!(observed > 0, "reader made no observations");
        }
    });

    let final_snap = cell.load();
    assert_eq!(final_snap.header().step, STEPS);
    assert_eq!(final_snap.header().seq, STEPS + 1);
}

/// The golden check behind `repro serve --steps 0`: a frozen snapshot
/// after W warmup steps answers byte-identically to a batch
/// `RouteIndex` capture of the same arm at the same seed and step.
#[test]
fn frozen_snapshot_equals_batch_route_index() {
    const WARMUP: u64 = 60;
    let capture = |seed: u64| {
        let mut protocol = arm(100, seed);
        for s in 0..WARMUP {
            protocol.step(Step::new(s));
        }
        let mut index = RouteIndex::new(100);
        MapSnapshot::capture(protocol.as_ref(), &mut index, Step::new(WARMUP))
    };
    let served = capture(11);
    let batch = capture(11);
    assert_eq!(served.header().step, batch.header().step);
    assert_eq!(served.header().topology_version, batch.header().topology_version);
    assert_eq!(served.reachable_fraction(), batch.reachable_fraction());
    for v in 0..100 {
        let node = NodeId::new(v);
        for req in
            [wire::Request::Route(node), wire::Request::Links(node), wire::Request::Reach(node)]
        {
            assert_eq!(
                wire::respond(1, req, &served),
                wire::respond(1, req, &batch),
                "answer diverged at node {v}"
            );
        }
    }
    // A different seed must actually change the map (the comparison
    // above is not vacuously true).
    let other = capture(12);
    let diverged = (0..100).any(|v| {
        wire::respond(1, wire::Request::Route(NodeId::new(v)), &served)
            != wire::respond(1, wire::Request::Route(NodeId::new(v)), &other)
    });
    assert!(diverged, "different seeds should produce different maps");
}
