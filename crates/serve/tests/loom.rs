//! Exhaustive model checking of the snapshot cell's publish/load/stop
//! protocol. Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --release -p agentnet-serve --test loom
//! ```
//!
//! The production [`SnapshotCell`] code runs unmodified against loom's
//! intercepted primitives (via the `agentnet_serve::sync` shim), so
//! every thread interleaving *and* every C11-allowed weak-memory
//! outcome of the real publish/load paths is enumerated. Two canary
//! tests prove the checker has teeth: a deliberately weakened
//! message-passing pair, and a faithful reimplementation of the old
//! "active index + slots" flip design, both of which loom must fail.
#![cfg(loom)]

use agentnet_serve::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use agentnet_serve::sync::{thread, Arc, RwLock};
use agentnet_serve::{SnapshotCell, SnapshotHeader, Versioned};
use std::panic::resume_unwind;

/// Minimal snapshot: the payload is a checksum of the header, stamped
/// when the cell assigns the sequence, so any torn read (header of one
/// generation, payload of another) is detectable.
#[derive(Clone, Copy, Debug)]
struct TestSnap {
    header: SnapshotHeader,
    payload: u64,
}

fn checksum(h: SnapshotHeader) -> u64 {
    h.seq
        .wrapping_mul(0x100_0003)
        .wrapping_add(h.step.wrapping_mul(31))
        .wrapping_add(h.topology_version.wrapping_mul(7))
}

impl TestSnap {
    fn gen(step: u64, topo: u64) -> Self {
        TestSnap { header: SnapshotHeader { seq: 0, step, topology_version: topo }, payload: 0 }
    }

    fn check(&self) -> SnapshotHeader {
        assert_eq!(self.payload, checksum(self.header), "torn snapshot: {:?}", self.header);
        self.header
    }
}

impl Versioned for TestSnap {
    fn header(&self) -> SnapshotHeader {
        self.header
    }

    fn stamp_seq(&mut self, seq: u64) {
        self.header.seq = seq;
        self.payload = checksum(self.header);
    }
}

/// Re-raise a joined thread's own panic so `#[should_panic(expected)]`
/// can match the inner assertion message.
fn join_or_repanic<T>(handle: thread::JoinHandle<T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    }
}

/// The core theorem, reader side: across every interleaving of a
/// publish with two loads, every load returns an untorn snapshot and
/// the reader's observed headers never move backwards — seq, step and
/// topology_version are all monotone, even when the loads straddle the
/// slot swap (generation 1 and 2 live in different slots).
#[test]
fn publish_load_interleavings_are_monotone_and_untorn() {
    loom::model(|| {
        let cell = Arc::new(SnapshotCell::new(TestSnap::gen(10, 1)));
        let publisher = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.publish(TestSnap::gen(11, 2)).expect("in-order publish");
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let first = cell.load().check();
                let second = cell.load().check();
                assert!(
                    second.seq >= first.seq
                        && second.step >= first.step
                        && second.topology_version >= first.topology_version,
                    "header went back in time: {first:?} -> {second:?}"
                );
            })
        };
        join_or_repanic(publisher);
        join_or_repanic(reader);
        assert_eq!(cell.load().check().seq, 2, "final load sees the final publish");
    });
}

/// The core theorem, retry side: with two publishes racing one load,
/// the reader's equality check can observe a slot that already advanced
/// past its seq target (same parity, two generations later) and must
/// retry. Every execution still terminates with an untorn snapshot
/// whose header matches the generation it claims.
#[test]
fn load_retry_across_slot_reuse_stays_consistent() {
    loom::model(|| {
        let cell = Arc::new(SnapshotCell::new(TestSnap::gen(10, 1)));
        let publisher = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.publish(TestSnap::gen(11, 1)).expect("in-order publish");
                cell.publish(TestSnap::gen(12, 2)).expect("in-order publish");
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let h = cell.load().check();
                let expected_step = 9 + h.seq;
                assert_eq!(h.step, expected_step, "header fields mixed across generations: {h:?}");
            })
        };
        join_or_repanic(publisher);
        join_or_repanic(reader);
        assert_eq!(cell.load().check().seq, 3, "final load sees the final publish");
    });
}

/// Two racing publishers of the same step stay serialized by the header
/// ledger: both sequence numbers are assigned, distinct and
/// consecutive, and the cell ends on the newest generation with an
/// untorn payload. (Racing *different* steps is deliberately not
/// modeled: the ledger is allowed to reject whichever lands second.)
#[test]
fn concurrent_publishers_are_serialized() {
    loom::model(|| {
        let cell = Arc::new(SnapshotCell::new(TestSnap::gen(10, 1)));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.publish(TestSnap::gen(11, 1)).expect("monotone"))
            })
            .collect();
        let mut seqs: Vec<u64> = handles.into_iter().map(join_or_repanic).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![2, 3], "ledger serializes sequence assignment");
        let last = cell.load().check();
        assert_eq!(last.seq, 3);
        assert_eq!(last.step, 11);
    });
}

/// The shutdown handshake the server relies on: the step thread
/// publishes its final snapshot and then raises the done/stop flag
/// with Release. Any thread that observes the flag with Acquire is
/// guaranteed the very next load returns the final generation — there
/// is no window where shutdown is visible but the last map is not.
#[test]
fn stop_handshake_delivers_the_final_snapshot() {
    loom::model(|| {
        let cell = Arc::new(SnapshotCell::new(TestSnap::gen(10, 1)));
        let done = Arc::new(AtomicBool::new(false));
        let stepper = {
            let (cell, done) = (Arc::clone(&cell), Arc::clone(&done));
            thread::spawn(move || {
                cell.publish(TestSnap::gen(11, 1)).expect("monotone");
                done.store(true, Ordering::Release);
            })
        };
        let waiter = {
            let (cell, done) = (Arc::clone(&cell), Arc::clone(&done));
            thread::spawn(move || {
                if done.load(Ordering::Acquire) {
                    let h = cell.load().check();
                    assert_eq!(h.seq, 2, "done implies the final publish is visible");
                }
            })
        };
        join_or_repanic(stepper);
        join_or_repanic(waiter);
    });
}

/// Soundness control for the canary below: the identical
/// message-passing shape with the orderings the cell actually uses
/// (Release store, Acquire load) passes every interleaving.
#[test]
fn release_acquire_publish_flag_is_sound() {
    loom::model(|| {
        let payload = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (p, f) = (Arc::clone(&payload), Arc::clone(&flag));
        let writer = thread::spawn(move || {
            p.store(7, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        let (p, f) = (Arc::clone(&payload), Arc::clone(&flag));
        let reader = thread::spawn(move || {
            if f.load(Ordering::Acquire) == 1 {
                assert_eq!(p.load(Ordering::Relaxed), 7, "flag visible but payload missing");
            }
        });
        join_or_repanic(writer);
        join_or_repanic(reader);
    });
}

/// Deliberately-weakened-ordering canary: the same shape with a Relaxed
/// flag store is exactly the bug `no-relaxed-atomics` exists to keep
/// out of this crate, and loom must find the execution where the flag
/// is visible before the payload. If this test ever stops failing, the
/// model checker has lost its teeth.
#[test]
#[should_panic(expected = "flag visible but payload missing")]
fn canary_relaxed_publish_flag_is_caught() {
    loom::model(|| {
        let payload = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (p, f) = (Arc::clone(&payload), Arc::clone(&flag));
        let writer = thread::spawn(move || {
            p.store(7, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        let (p, f) = (Arc::clone(&payload), Arc::clone(&flag));
        let reader = thread::spawn(move || {
            if f.load(Ordering::Relaxed) == 1 {
                assert_eq!(p.load(Ordering::Relaxed), 7, "flag visible but payload missing");
            }
        });
        join_or_repanic(writer);
        join_or_repanic(reader);
    });
}

/// Faithful miniature of the cell design this PR replaced: an `active`
/// slot-index atomic flipped with Release next to per-slot locks. Its
/// claimed invariant — per-reader headers never go backwards — is
/// false under the C11 model: a reader can pair a stale index value
/// with fresh slot content (the slot lock synchronizes with the newest
/// writer even though the index load returned an old value), then on
/// the next load legally observe the *other*, older slot. No choice of
/// orderings on `active` fixes this pairing race; keying the slot off
/// the generation (the current design) removes it by construction.
struct FlipCell {
    active: AtomicUsize,
    slots: [RwLock<u64>; 2],
}

impl FlipCell {
    fn new(initial: u64) -> Self {
        FlipCell {
            active: AtomicUsize::new(0),
            slots: [RwLock::new(initial), RwLock::new(initial)],
        }
    }

    fn load(&self) -> u64 {
        let i = self.active.load(Ordering::Acquire) & 1;
        *self.slots[i].read().expect("slot lock")
    }

    fn publish(&self, generation: u64) {
        let next = (self.active.load(Ordering::Relaxed) + 1) & 1;
        *self.slots[next].write().expect("slot lock") = generation;
        self.active.store(next, Ordering::Release);
    }
}

#[test]
#[should_panic(expected = "went back in time")]
fn canary_old_index_flip_design_breaks_monotonicity() {
    loom::model(|| {
        let cell = Arc::new(FlipCell::new(1));
        let publisher = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.publish(2);
                cell.publish(3);
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let first = cell.load();
                let second = cell.load();
                assert!(second >= first, "generation went back in time: {first} -> {second}");
            })
        };
        join_or_repanic(publisher);
        join_or_repanic(reader);
    });
}
