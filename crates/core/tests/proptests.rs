//! Property-based tests for the agent core: knowledge stores, bounded
//! memories, footprint boards and the movement-choice function.

use agentnet_core::history::{Trail, VisitMemory};
use agentnet_core::knowledge::{EdgeSet, VisitTimes};
use agentnet_core::policy::{choose_move, TieBreak};
use agentnet_core::stigmergy::FootprintBoard;
use agentnet_core::AgentId;
use agentnet_engine::Step;
use agentnet_graph::NodeId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

proptest! {
    #[test]
    fn edge_set_behaves_like_hashset(
        n in 2usize..20,
        ops in proptest::collection::vec((0usize..20, 0usize..20), 0..200),
    ) {
        let mut set = EdgeSet::new(n);
        let mut model: HashSet<(usize, usize)> = HashSet::new();
        for (a, b) in ops {
            let (a, b) = (a % n, b % n);
            let inserted = set.insert(NodeId::new(a), NodeId::new(b));
            prop_assert_eq!(inserted, model.insert((a, b)));
        }
        prop_assert_eq!(set.len(), model.len());
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    set.contains(NodeId::new(a), NodeId::new(b)),
                    model.contains(&(a, b))
                );
            }
        }
    }

    #[test]
    fn edge_set_merge_is_union_and_idempotent(
        n in 2usize..16,
        left in proptest::collection::vec((0usize..16, 0usize..16), 0..60),
        right in proptest::collection::vec((0usize..16, 0usize..16), 0..60),
    ) {
        let build = |edges: &[(usize, usize)]| {
            let mut s = EdgeSet::new(n);
            for &(a, b) in edges {
                s.insert(NodeId::new(a % n), NodeId::new(b % n));
            }
            s
        };
        let a = build(&left);
        let b = build(&right);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");
        let mut twice = ab.clone();
        twice.merge(&b);
        prop_assert_eq!(&twice, &ab, "merge must be idempotent");
        prop_assert!(ab.len() <= a.len() + b.len());
        prop_assert!(ab.len() >= a.len().max(b.len()));
    }

    #[test]
    fn visit_times_merge_takes_pointwise_max(
        n in 1usize..16,
        left in proptest::collection::vec((0usize..16, 0u64..100), 0..40),
        right in proptest::collection::vec((0usize..16, 0u64..100), 0..40),
    ) {
        let build = |recs: &[(usize, u64)]| {
            let mut v = VisitTimes::new(n);
            for &(node, t) in recs {
                v.record(NodeId::new(node % n), Step::new(t));
            }
            v
        };
        let a = build(&left);
        let b = build(&right);
        let mut m = a.clone();
        m.merge(&b);
        for i in 0..n {
            let id = NodeId::new(i);
            let expect = match (a.last_visit(id), b.last_visit(id)) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            };
            prop_assert_eq!(m.last_visit(id), expect);
        }
    }

    #[test]
    fn visit_memory_never_exceeds_capacity_and_keeps_latest(
        cap in 1usize..12,
        recs in proptest::collection::vec((0usize..30, 0u64..100), 0..100),
    ) {
        let mut mem = VisitMemory::new(cap);
        let mut model: HashMap<usize, u64> = HashMap::new();
        for &(node, t) in &recs {
            mem.record(NodeId::new(node), Step::new(t));
            let e = model.entry(node).or_insert(0);
            *e = (*e).max(t);
            prop_assert!(mem.len() <= cap);
        }
        // Every remembered entry is a time that was actually recorded for
        // that node, and never newer than the newest report. (It may be
        // older: bounded memories forget, and a later, staler report can
        // re-populate a forgotten node.)
        for (node, &newest) in &model {
            if let Some(t) = mem.last_visit(NodeId::new(*node)) {
                prop_assert!(t.as_u64() <= newest);
                prop_assert!(recs
                    .iter()
                    .any(|&(rn, rt)| rn == *node && rt == t.as_u64()));
            }
        }
    }

    #[test]
    fn visit_memory_mutual_merge_converges(
        cap in 1usize..10,
        left in proptest::collection::vec((0usize..20, 0u64..100), 0..30),
        right in proptest::collection::vec((0usize..20, 0u64..100), 0..30),
    ) {
        let build = |recs: &[(usize, u64)]| {
            let mut m = VisitMemory::new(cap);
            for &(node, t) in recs {
                m.record(NodeId::new(node), Step::new(t));
            }
            m
        };
        let a = build(&left);
        let b = build(&right);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "mutual merge must converge to identical memories");
        prop_assert_eq!(ab.content_hash(), ba.content_hash());
        prop_assert!(ab.len() <= cap);
    }

    #[test]
    fn trail_routes_are_contiguous_suffixes(
        cap in 1usize..12,
        walk in proptest::collection::vec(0usize..15, 1..40),
    ) {
        let mut trail = Trail::new(cap);
        for (i, &node) in walk.iter().enumerate() {
            trail.push(NodeId::new(node), Step::new(i as u64));
        }
        prop_assert!(trail.len() <= cap);
        let entries: Vec<NodeId> = trail.entries().map(|(n, _)| n).collect();
        let mut targets = entries.clone();
        targets.dedup();
        for target in targets {
            let route = trail.route_to(target).expect("target is in the trail");
            // Route starts at the current node and ends at the target...
            prop_assert_eq!(route[0], *entries.last().unwrap());
            prop_assert_eq!(*route.last().unwrap(), target);
            // ...and is exactly the reversed suffix from the *most recent*
            // occurrence of the target.
            let pos = entries.iter().rposition(|&n| n == target).unwrap();
            let mut expected: Vec<NodeId> = entries[pos..].to_vec();
            expected.reverse();
            prop_assert_eq!(route, expected);
        }
    }

    #[test]
    fn footprint_board_respects_capacity_and_recency(
        cap in 1usize..8,
        imprints in proptest::collection::vec((0usize..8, 0usize..20), 0..60),
    ) {
        let mut board = FootprintBoard::new(cap);
        for (i, &(agent, target)) in imprints.iter().enumerate() {
            board.imprint(AgentId::new(agent), NodeId::new(target), Step::new(i as u64));
            prop_assert!(board.len() <= cap);
        }
        let now = Step::new(imprints.len() as u64);
        // Marked targets are exactly the targets of the last `cap` imprints.
        let expected: HashSet<usize> = imprints
            .iter()
            .rev()
            .take(cap)
            .map(|&(_, t)| t)
            .collect();
        let marked: HashSet<usize> = board
            .marked_targets(now, u64::MAX)
            .into_iter()
            .map(|n| n.index())
            .collect();
        prop_assert_eq!(marked, expected);
    }

    #[test]
    fn choose_move_always_picks_a_candidate(
        cands in proptest::collection::vec(0usize..30, 1..10),
        avoid in proptest::collection::vec(0usize..30, 0..10),
        seed in 0u64..64,
        tie in 0usize..3,
    ) {
        let mut cands: Vec<NodeId> = cands.into_iter().map(NodeId::new).collect();
        cands.sort_unstable();
        cands.dedup();
        let avoid: Vec<NodeId> = avoid.into_iter().map(NodeId::new).collect();
        let tie = [TieBreak::LowestId, TieBreak::Random, TieBreak::Hashed][tie];
        let mut rng = SmallRng::seed_from_u64(seed);
        let pick = choose_move(
            &cands,
            &avoid,
            Some(|_n: NodeId| None),
            tie,
            seed,
            &mut rng,
        )
        .expect("nonempty candidates must yield a pick");
        prop_assert!(cands.contains(&pick));
        // If any unmarked candidate exists, the pick must be unmarked.
        if cands.iter().any(|c| !avoid.contains(c)) {
            prop_assert!(!avoid.contains(&pick));
        }
    }

    #[test]
    fn choose_move_prefers_strictly_older_visits(
        times in proptest::collection::vec(0u64..1000, 2..8),
        seed in 0u64..32,
    ) {
        let cands: Vec<NodeId> = (0..times.len()).map(NodeId::new).collect();
        let table: HashMap<NodeId, Step> = cands
            .iter()
            .zip(&times)
            .map(|(&c, &t)| (c, Step::new(t)))
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let lookup = {
            let table = table.clone();
            move |n: NodeId| table.get(&n).copied()
        };
        let pick =
            choose_move(&cands, &[], Some(lookup), TieBreak::Hashed, seed, &mut rng).unwrap();
        let oldest = *times.iter().min().unwrap();
        prop_assert_eq!(table[&pick].as_u64(), oldest);
    }
}
