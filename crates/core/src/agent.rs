//! Agent identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a mobile agent (dense, `0..population`).
///
/// ```
/// use agentnet_core::AgentId;
/// let a = AgentId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "a3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AgentId(u32);

impl AgentId {
    /// Creates an agent id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[allow(clippy::expect_used)] // the documented panic above
    pub fn new(index: usize) -> Self {
        AgentId(u32::try_from(index).expect("agent index exceeds u32::MAX"))
    }

    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        assert_eq!(AgentId::new(9).index(), 9);
        assert_eq!(AgentId::new(9).to_string(), "a9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(AgentId::new(1) < AgentId::new(2));
    }
}
