//! Bounded agent memory for the routing task.
//!
//! Routing agents have a finite *history size* (the paper sweeps it): it
//! bounds both the [`Trail`] — the recent walk that routes are derived
//! from — and the [`VisitMemory`] the oldest-node policy steers by.
//! "The more the history size, the higher the connectivity" is Fig. 9.

use agentnet_engine::Step;
use agentnet_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The agent's recent walk: a bounded sequence of `(node, arrival step)`
/// entries, oldest first. Consecutive entries were adjacent (a live
/// directed link) at the time the hop was taken.
///
/// Routes are extracted by walking the trail *backwards* from the current
/// node to the most recent occurrence of a gateway; see
/// [`Trail::route_to`].
///
/// ```
/// use agentnet_core::history::Trail;
/// use agentnet_engine::Step;
/// use agentnet_graph::NodeId;
///
/// let n = NodeId::new;
/// let mut t = Trail::new(8);
/// for (i, node) in [n(5), n(2), n(7)].into_iter().enumerate() {
///     t.push(node, Step::new(i as u64));
/// }
/// // Walking backwards from n7 to the gateway n5: 7 -> 2 -> 5.
/// assert_eq!(t.route_to(n(5)), Some(vec![n(7), n(2), n(5)]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trail {
    entries: VecDeque<(NodeId, Step)>,
    capacity: usize,
}

impl Trail {
    /// Creates an empty trail bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trail capacity must be positive");
        Trail { entries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Maximum number of entries retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the trail holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an arrival; the oldest entry is dropped when full.
    /// Consecutive duplicate nodes are collapsed (staying put is not a
    /// hop).
    pub fn push(&mut self, node: NodeId, when: Step) {
        if let Some(last) = self.entries.back_mut() {
            if last.0 == node {
                // Refresh the timestamp of the stay instead of duplicating.
                last.1 = when;
                return;
            }
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((node, when));
    }

    /// Entries oldest-first.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, Step)> + '_ {
        self.entries.iter().copied()
    }

    /// The node the agent currently stands on (most recent entry).
    pub fn current(&self) -> Option<NodeId> {
        self.entries.back().map(|&(n, _)| n)
    }

    /// Extracts the hop list from the current node back to the **most
    /// recent** occurrence of `target` in the trail:
    /// `[current, ..., target]`. Returns `None` if `target` is not in the
    /// trail. A route of length 1 (`[target]`) is returned when the agent
    /// stands on the target.
    pub fn route_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        let pos = self.entries.iter().rposition(|&(n, _)| n == target)?;
        let mut hops: Vec<NodeId> = self.entries.iter().skip(pos).map(|&(n, _)| n).collect();
        hops.reverse();
        Some(hops)
    }

    /// Every target of `targets` present in the trail, with its extracted
    /// route, shortest first.
    pub fn routes_to_any(&self, targets: &[NodeId]) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut out: Vec<(NodeId, Vec<NodeId>)> =
            targets.iter().filter_map(|&t| self.route_to(t).map(|r| (t, r))).collect();
        out.sort_by_key(|(_, r)| r.len());
        out
    }

    /// Replaces the trail contents with `walk` (oldest first), stamped at
    /// `when`, truncating to capacity by keeping the **most recent** end.
    /// Used when an agent adopts a better route learned from a peer: the
    /// adopted route, reversed, becomes its effective walk.
    pub fn adopt_walk(&mut self, walk: &[NodeId], when: Step) {
        self.entries.clear();
        let skip = walk.len().saturating_sub(self.capacity);
        for &node in &walk[skip..] {
            self.entries.push_back((node, when));
        }
    }
}

/// Bounded per-node last-visit memory: "the adjacent node that it last
/// visited the longest time before, that it never visited, or that it
/// doesn't remember visiting".
///
/// At most `capacity` nodes are remembered; when full, the entry with the
/// **oldest** visit time is evicted (it is the least useful to keep —
/// forgetting it merely makes the node "never visited" again, which the
/// policy treats the same as "oldest").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitMemory {
    entries: Vec<(NodeId, Step)>,
    capacity: usize,
}

impl VisitMemory {
    /// Creates an empty memory bounded to `capacity` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "visit memory capacity must be positive");
        VisitMemory { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Maximum number of nodes remembered.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of nodes currently remembered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The remembered last-visit time of `node`.
    pub fn last_visit(&self, node: NodeId) -> Option<Step> {
        self.entries.iter().find(|&&(n, _)| n == node).map(|&(_, t)| t)
    }

    /// Records a visit, updating an existing entry or evicting the oldest
    /// entry when at capacity.
    pub fn record(&mut self, node: NodeId, when: Step) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == node) {
            e.1 = e.1.max(when);
            return;
        }
        if self.entries.len() == self.capacity {
            let oldest =
                self.entries.iter().enumerate().min_by_key(|&(_, &(n, t))| (t, n)).map(|(i, _)| i);
            // Capacity is validated positive, so a full memory is nonempty.
            if let Some(oldest) = oldest {
                self.entries.swap_remove(oldest);
            }
        }
        self.entries.push((node, when));
    }

    /// Merges another memory: union with most-recent times, then trims
    /// back to capacity by dropping the oldest entries. After a mutual
    /// merge the two memories are identical — "all participating agents
    /// are going to be identical in term of history knowledge".
    pub fn merge(&mut self, other: &VisitMemory) {
        for &(node, when) in &other.entries {
            if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == node) {
                e.1 = e.1.max(when);
            } else {
                self.entries.push((node, when));
            }
        }
        if self.entries.len() > self.capacity {
            // Keep the most recent `capacity` entries, deterministically.
            self.entries.sort_by_key(|&(n, t)| (std::cmp::Reverse(t), n));
            self.entries.truncate(self.capacity);
        }
        // Canonical order so merged memories compare equal.
        self.entries.sort_by_key(|&(n, _)| n);
    }

    /// Canonicalizes entry order (sorted by node id); merged memories are
    /// always canonical, fresh ones may not be.
    pub fn canonicalize(&mut self) {
        self.entries.sort_by_key(|&(n, _)| n);
    }

    /// Order-insensitive digest of the memory contents, used as the
    /// decision seed for hashed tie-breaking: agents whose memories
    /// merged to identical contents digest identically and hence move
    /// identically — the paper's chasing mechanism.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xE703_7ED1_A0B4_28DBu64;
        // XOR of per-entry mixes is order-insensitive, so fresh (unsorted)
        // and canonicalized memories with equal contents agree.
        let mut acc = 0u64;
        for &(n, t) in &self.entries {
            acc ^= crate::policy::mix64(u64::from(n.as_u32()) ^ t.as_u64().rotate_left(23));
        }
        h ^= acc;
        crate::policy::mix64(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn t(i: u64) -> Step {
        Step::new(i)
    }

    #[test]
    fn trail_push_and_capacity() {
        let mut tr = Trail::new(3);
        for i in 0..5 {
            tr.push(n(i), t(i as u64));
        }
        let nodes: Vec<_> = tr.entries().map(|(node, _)| node).collect();
        assert_eq!(nodes, vec![n(2), n(3), n(4)]);
        assert_eq!(tr.current(), Some(n(4)));
        assert_eq!(tr.capacity(), 3);
    }

    #[test]
    fn trail_collapses_stays() {
        let mut tr = Trail::new(4);
        tr.push(n(1), t(0));
        tr.push(n(1), t(1));
        tr.push(n(1), t(2));
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.entries().next(), Some((n(1), t(2))));
    }

    #[test]
    fn route_to_uses_most_recent_occurrence() {
        let mut tr = Trail::new(10);
        for (i, node) in [n(9), n(1), n(9), n(2), n(3)].into_iter().enumerate() {
            tr.push(node, t(i as u64));
        }
        // Most recent visit of 9 is at index 2, so route is 3 -> 2 -> 9.
        assert_eq!(tr.route_to(n(9)), Some(vec![n(3), n(2), n(9)]));
    }

    #[test]
    fn route_to_self_is_single_hop() {
        let mut tr = Trail::new(4);
        tr.push(n(5), t(0));
        assert_eq!(tr.route_to(n(5)), Some(vec![n(5)]));
        assert_eq!(tr.route_to(n(6)), None);
    }

    #[test]
    fn routes_to_any_sorted_by_length() {
        let mut tr = Trail::new(10);
        for (i, node) in [n(8), n(1), n(2), n(7), n(3)].into_iter().enumerate() {
            tr.push(node, t(i as u64));
        }
        let routes = tr.routes_to_any(&[n(8), n(7), n(99)]);
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].0, n(7)); // 2 hops beats 5 hops
        assert_eq!(routes[1].0, n(8));
    }

    #[test]
    fn adopt_walk_truncates_to_most_recent_end() {
        let mut tr = Trail::new(3);
        tr.adopt_walk(&[n(1), n(2), n(3), n(4), n(5)], t(7));
        let nodes: Vec<_> = tr.entries().map(|(node, _)| node).collect();
        assert_eq!(nodes, vec![n(3), n(4), n(5)]);
        assert!(tr.entries().all(|(_, when)| when == t(7)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_trail_panics() {
        let _ = Trail::new(0);
    }

    #[test]
    fn memory_record_and_query() {
        let mut m = VisitMemory::new(4);
        m.record(n(1), t(3));
        m.record(n(1), t(1)); // stale report must not regress
        assert_eq!(m.last_visit(n(1)), Some(t(3)));
        assert_eq!(m.last_visit(n(2)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn memory_evicts_oldest_when_full() {
        let mut m = VisitMemory::new(2);
        m.record(n(1), t(10));
        m.record(n(2), t(5));
        m.record(n(3), t(20)); // evicts n2 (oldest time)
        assert!(m.last_visit(n(2)).is_none());
        assert_eq!(m.last_visit(n(1)), Some(t(10)));
        assert_eq!(m.last_visit(n(3)), Some(t(20)));
    }

    #[test]
    fn memory_merge_makes_agents_identical() {
        let mut a = VisitMemory::new(4);
        a.record(n(1), t(3));
        a.record(n(2), t(9));
        let mut b = VisitMemory::new(4);
        b.record(n(2), t(4));
        b.record(n(5), t(7));
        let mut b2 = b.clone();
        b2.merge(&a);
        let mut a2 = a.clone();
        a2.merge(&b);
        assert_eq!(a2, b2, "mutual merge must converge");
        assert_eq!(a2.last_visit(n(2)), Some(t(9)));
    }

    #[test]
    fn memory_merge_respects_capacity_keeping_recent() {
        let mut a = VisitMemory::new(2);
        a.record(n(1), t(1));
        a.record(n(2), t(50));
        let mut b = VisitMemory::new(2);
        b.record(n(3), t(40));
        b.record(n(4), t(60));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.last_visit(n(4)), Some(t(60)));
        assert_eq!(a.last_visit(n(2)), Some(t(50)));
        assert_eq!(a.last_visit(n(1)), None);
    }

    #[test]
    fn content_hash_is_order_insensitive_and_content_sensitive() {
        let mut a = VisitMemory::new(4);
        a.record(n(1), t(3));
        a.record(n(2), t(9));
        let mut b = VisitMemory::new(4);
        b.record(n(2), t(9));
        b.record(n(1), t(3));
        assert_eq!(a.content_hash(), b.content_hash());
        b.record(n(3), t(1));
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_memory_panics() {
        let _ = VisitMemory::new(0);
    }
}
