//! Stigmergic (footprint-based) indirect communication.
//!
//! "Every agent leaves behind his footprint on the current node. Agents
//! imprint their next target node in the current node ... so that
//! subsequent agents avoid following previous one." Unlike ant pheromones
//! that *attract*, these footprints *repel*: the intent is "to not be
//! followed by others as opposed to encourage others to come after you".
//!
//! Each node carries a small bounded [`FootprintBoard`] of the most recent
//! imprints. The overhead is negligible by design — a few words per node —
//! matching the paper's claim that stigmergy "adds almost no extra cost in
//! agents computational complexity".

use crate::agent::AgentId;
use agentnet_engine::Step;
use agentnet_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One imprint: who left it, which neighbour they departed to, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// The agent that left the footprint.
    pub agent: AgentId,
    /// The neighbour the agent moved to.
    pub target: NodeId,
    /// When the footprint was left.
    pub at: Step,
}

/// A node's footprint board: the most recent `capacity` imprints.
///
/// ```
/// use agentnet_core::stigmergy::FootprintBoard;
/// use agentnet_core::AgentId;
/// use agentnet_engine::Step;
/// use agentnet_graph::NodeId;
///
/// let mut board = FootprintBoard::new(2);
/// board.imprint(AgentId::new(0), NodeId::new(4), Step::new(1));
/// assert!(board.is_marked(NodeId::new(4), Step::new(2), 100));
/// assert!(!board.is_marked(NodeId::new(5), Step::new(2), 100));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintBoard {
    slots: VecDeque<Footprint>,
    capacity: usize,
}

impl FootprintBoard {
    /// Default board capacity used by the simulations: one footprint —
    /// each node remembers only the most recent exit taken from it, the
    /// paper's "the mark it left behind during its previous visit".
    pub const DEFAULT_CAPACITY: usize = 1;

    /// Creates an empty board keeping the `capacity` most recent imprints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "footprint board capacity must be positive");
        FootprintBoard { slots: VecDeque::with_capacity(capacity), capacity }
    }

    /// Number of imprints currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the board holds no imprints.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Records that `agent` departs towards `target` at step `at`,
    /// displacing the oldest imprint when full.
    pub fn imprint(&mut self, agent: AgentId, target: NodeId, at: Step) {
        if self.slots.len() == self.capacity {
            self.slots.pop_front();
        }
        self.slots.push_back(Footprint { agent, target, at });
    }

    /// Returns `true` if some imprint within `window` steps of `now`
    /// points at `target` — i.e. a recent agent already left this node in
    /// that direction. An imprint stamped after `now` saturates to age 0
    /// (still marked) rather than panicking, matching
    /// [`RouteEntry::age`](crate::routing::RouteEntry::age).
    pub fn is_marked(&self, target: NodeId, now: Step, window: u64) -> bool {
        self.slots
            .iter()
            .any(|fp| fp.target == target && now.checked_since(fp.at).unwrap_or(0) <= window)
    }

    /// All distinct targets marked within `window` steps of `now`.
    pub fn marked_targets(&self, now: Step, window: u64) -> Vec<NodeId> {
        let mut targets = Vec::new();
        self.marked_targets_into(now, window, &mut targets);
        targets
    }

    /// Clears `out` and fills it with the distinct targets marked within
    /// `window` steps of `now` — the scratch-reusing form of
    /// [`Self::marked_targets`] for per-step callers.
    pub fn marked_targets_into(&self, now: Step, window: u64, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            self.slots
                .iter()
                .filter(|fp| now.checked_since(fp.at).unwrap_or(0) <= window)
                .map(|fp| fp.target),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Iterator over the raw imprints, oldest first.
    pub fn footprints(&self) -> impl Iterator<Item = &Footprint> + '_ {
        self.slots.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> FootprintBoard {
        FootprintBoard::new(3)
    }

    fn fp(b: &mut FootprintBoard, agent: usize, target: usize, at: u64) {
        b.imprint(AgentId::new(agent), NodeId::new(target), Step::new(at));
    }

    #[test]
    fn imprint_and_mark() {
        let mut b = board();
        fp(&mut b, 0, 7, 10);
        assert!(b.is_marked(NodeId::new(7), Step::new(10), 0));
        assert!(!b.is_marked(NodeId::new(8), Step::new(10), 0));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn window_expires_old_marks() {
        let mut b = board();
        fp(&mut b, 0, 7, 10);
        assert!(b.is_marked(NodeId::new(7), Step::new(15), 5));
        assert!(!b.is_marked(NodeId::new(7), Step::new(16), 5));
    }

    #[test]
    fn capacity_displaces_oldest() {
        let mut b = board();
        fp(&mut b, 0, 1, 1);
        fp(&mut b, 0, 2, 2);
        fp(&mut b, 0, 3, 3);
        fp(&mut b, 0, 4, 4); // displaces target 1
        assert_eq!(b.len(), 3);
        assert!(!b.is_marked(NodeId::new(1), Step::new(4), 100));
        assert!(b.is_marked(NodeId::new(2), Step::new(4), 100));
    }

    #[test]
    fn marked_targets_dedups_and_sorts() {
        let mut b = board();
        fp(&mut b, 0, 9, 1);
        fp(&mut b, 1, 3, 2);
        fp(&mut b, 2, 9, 3);
        assert_eq!(b.marked_targets(Step::new(3), 100), vec![NodeId::new(3), NodeId::new(9)]);
        // Tight window keeps only the latest imprint.
        assert_eq!(b.marked_targets(Step::new(3), 0), vec![NodeId::new(9)]);
        // The into-variant clears stale contents of the scratch vector.
        let mut scratch = vec![NodeId::new(42)];
        b.marked_targets_into(Step::new(3), 100, &mut scratch);
        assert_eq!(scratch, vec![NodeId::new(3), NodeId::new(9)]);
    }

    #[test]
    fn footprints_iterate_oldest_first() {
        let mut b = board();
        fp(&mut b, 0, 1, 1);
        fp(&mut b, 1, 2, 2);
        let agents: Vec<usize> = b.footprints().map(|f| f.agent.index()).collect();
        assert_eq!(agents, vec![0, 1]);
    }

    #[test]
    fn future_stamped_imprints_saturate_instead_of_panicking() {
        let mut b = board();
        fp(&mut b, 0, 7, 10);
        // A query before the imprint's stamp saturates the age to zero
        // (freshest possible) instead of panicking on time reversal.
        assert!(b.is_marked(NodeId::new(7), Step::new(5), 0));
        assert_eq!(b.marked_targets(Step::new(5), 0), vec![NodeId::new(7)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FootprintBoard::new(0);
    }
}
