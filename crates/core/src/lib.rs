//! Mobile software agents for wireless network mapping and dynamic routing.
//!
//! This crate implements the paper's contribution: cooperating mobile
//! software agents that (a) **map** an unknown wireless network and
//! (b) maintain **routing tables** in a dynamic ad-hoc network — with no
//! central control, using direct (meeting-based) and indirect
//! (*stigmergic*, footprint-based) communication.
//!
//! # Architecture
//!
//! * [`agent`] — agent identities.
//! * [`knowledge`] — what an agent knows: the edge map it is building
//!   ([`knowledge::EdgeSet`]) and per-node visit times
//!   ([`knowledge::VisitTimes`]), kept separately for first-hand and
//!   merged (second-hand) information.
//! * [`history`] — bounded agent memory for the routing study: the walk
//!   [`history::Trail`] routes are derived from, and the
//!   [`history::VisitMemory`] the oldest-node policy steers by.
//! * [`stigmergy`] — per-node footprint boards: each agent imprints the
//!   neighbour it departs to, and later agents avoid imprinted exits.
//! * [`policy`] — movement policies: random / conscientious /
//!   super-conscientious (mapping), random / oldest-node (routing), each
//!   with configurable tie-breaking and optional stigmergy.
//! * [`comm`] — direct communication: mapping agents merge edge knowledge
//!   and visit times when co-located; routing agents exchange best routes
//!   and merge visit memories.
//! * [`mapping`] — the network-mapping simulation (paper §II).
//! * [`routing`] — the dynamic-routing simulation (paper §III).
//! * [`overhead`] — migration/message/footprint accounting backing the
//!   paper's "negligible overhead" claims.
//! * [`trace`] — optional bounded event tracing (migrations, meetings,
//!   footprints, table writes) exportable as JSON lines.
//! * [`validate`] — per-step simulation invariants (monotone knowledge,
//!   bounded histories, live-link routing entries, …) threaded through
//!   checked runs.
//!
//! # Quickstart
//!
//! ```
//! use agentnet_core::mapping::{MappingConfig, MappingSim};
//! use agentnet_core::policy::MappingPolicy;
//! use agentnet_graph::generators::GeometricConfig;
//!
//! // A small static wireless network...
//! let net = GeometricConfig::new(40, 260).generate(1).unwrap();
//! // ...mapped by 4 cooperating stigmergic conscientious agents.
//! let config = MappingConfig::new(MappingPolicy::Conscientious, 4)
//!     .stigmergic(true);
//! let mut sim = MappingSim::new(net.graph.clone(), config, 7).unwrap();
//! let outcome = sim.run(100_000);
//! assert!(outcome.finished, "strongly connected map must complete");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-safety: simulation kernels must not abort mid-experiment.
// `agentlint` (`repro lint`) enforces the same invariant textually;
// the clippy lints catch what its module-scope approximation misses.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod agent;
pub mod comm;
pub mod error;
pub mod history;
pub mod knowledge;
pub mod mapping;
pub mod overhead;
pub mod policy;
pub mod routing;
pub mod stigmergy;
pub mod trace;
pub mod validate;

pub use agent::AgentId;
pub use error::CoreError;
