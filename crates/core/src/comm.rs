//! Direct (meeting-based) communication.
//!
//! "Mobile agents that land on a node can share their information about
//! network so an individual agent can acquire knowledge about parts of the
//! network that have never visited." In the routing study, agents that
//! meet "compute best route based on the all agents routing information,
//! and then all of them use that best route afterword".

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use crate::knowledge::{EdgeSet, VisitTimes};
use agentnet_graph::NodeId;

/// Reusable scratch for grouping agents by the node they stand on —
/// the "who is co-located with whom" question both simulation kernels
/// ask every step. A counting sort over node ids replaces the previous
/// per-step `HashMap<NodeId, Vec<usize>>` rebuild, so steady-state
/// grouping performs no heap allocation and yields groups in
/// deterministic node-id order (members in agent-index order).
#[derive(Clone, Debug, Default)]
pub struct GroupScratch {
    /// Per node: end offset of its group in `order`.
    ends: Vec<usize>,
    /// Per node: write cursor during placement (consumed by `group`).
    cursors: Vec<usize>,
    /// Agent indices, grouped by node.
    order: Vec<usize>,
}

impl GroupScratch {
    /// Creates an empty scratch; storage grows on first use.
    pub fn new() -> Self {
        GroupScratch::default()
    }

    /// Groups agents by node. `nodes_of` yields each agent's current
    /// node in agent-index order and is iterated twice (count, then
    /// place), so it must be cheap and repeatable.
    #[agentnet::hot_path]
    pub fn group(&mut self, node_count: usize, nodes_of: impl Iterator<Item = NodeId> + Clone) {
        self.ends.clear();
        self.ends.resize(node_count, 0);
        let mut agents = 0usize;
        // Clones the lightweight position iterator for the counting pass,
        // not agent state; no heap allocation.
        // agentlint::allow(no-alloc-in-hot-path)
        for node in nodes_of.clone() {
            if let Some(count) = self.ends.get_mut(node.index()) {
                *count += 1;
                agents += 1;
            }
        }
        self.cursors.clear();
        let mut acc = 0usize;
        for end in self.ends.iter_mut() {
            self.cursors.push(acc);
            acc += *end;
            *end = acc;
        }
        self.order.clear();
        self.order.resize(agents, 0);
        for (agent, node) in nodes_of.enumerate() {
            let Some(slot) = self.cursors.get_mut(node.index()) else { continue };
            if let Some(cell) = self.order.get_mut(*slot) {
                *cell = agent;
            }
            *slot += 1;
        }
    }

    /// Non-empty groups from the last [`Self::group`] call, in node-id
    /// order; each group's members are in agent-index order.
    pub fn groups(&self) -> impl Iterator<Item = (NodeId, &[usize])> {
        let mut prev = 0usize;
        self.ends.iter().enumerate().filter_map(move |(i, &end)| {
            let start = prev;
            prev = end;
            (end > start)
                .then(|| self.order.get(start..end))
                .flatten()
                .map(|members| (NodeId::new(i), members))
        })
    }
}

/// Union of a group's edge knowledge (the second-hand learning of a
/// mapping meeting). Returns `None` for an empty group.
pub fn union_edges<'a>(sets: impl IntoIterator<Item = &'a EdgeSet>) -> Option<EdgeSet> {
    let mut iter = sets.into_iter();
    let mut acc = iter.next()?.clone();
    for s in iter {
        acc.merge(s);
    }
    Some(acc)
}

/// Element-wise most-recent union of a group's visit knowledge. Returns
/// `None` for an empty group.
pub fn union_visits<'a>(tables: impl IntoIterator<Item = &'a VisitTimes>) -> Option<VisitTimes> {
    let mut iter = tables.into_iter();
    let mut acc = iter.next()?.clone();
    for t in iter {
        acc.merge(t);
    }
    Some(acc)
}

/// Selects the best route from a meeting's pooled candidates: fewest hops,
/// ties broken by gateway id then lexicographic hop list so every
/// participant deterministically agrees. Each candidate is
/// `(gateway, hop list from the meeting node to that gateway)`.
pub fn best_route(candidates: &[(NodeId, Vec<NodeId>)]) -> Option<&(NodeId, Vec<NodeId>)> {
    candidates
        .iter()
        .min_by(|a, b| a.1.len().cmp(&b.1.len()).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_engine::Step;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn union_edges_merges_all() {
        let mut a = EdgeSet::new(4);
        a.insert(n(0), n(1));
        let mut b = EdgeSet::new(4);
        b.insert(n(1), n(2));
        let mut c = EdgeSet::new(4);
        c.insert(n(2), n(3));
        let u = union_edges([&a, &b, &c]).unwrap();
        assert_eq!(u.len(), 3);
        assert!(union_edges(std::iter::empty()).is_none());
    }

    #[test]
    fn union_visits_takes_latest() {
        let mut a = VisitTimes::new(2);
        a.record(n(0), Step::new(4));
        let mut b = VisitTimes::new(2);
        b.record(n(0), Step::new(9));
        b.record(n(1), Step::new(1));
        let u = union_visits([&a, &b]).unwrap();
        assert_eq!(u.last_visit(n(0)), Some(Step::new(9)));
        assert_eq!(u.last_visit(n(1)), Some(Step::new(1)));
    }

    #[test]
    fn best_route_prefers_fewest_hops() {
        let routes = vec![(n(9), vec![n(0), n(1), n(2), n(9)]), (n(8), vec![n(0), n(3), n(8)])];
        assert_eq!(best_route(&routes).unwrap().0, n(8));
    }

    #[test]
    fn best_route_ties_break_deterministically() {
        let routes = vec![(n(9), vec![n(0), n(9)]), (n(8), vec![n(0), n(8)])];
        assert_eq!(best_route(&routes).unwrap().0, n(8));
        assert!(best_route(&[]).is_none());
    }

    #[test]
    fn group_scratch_groups_by_node_in_order() {
        let at = [n(2), n(0), n(2), n(5), n(0), n(2)];
        let mut scratch = GroupScratch::new();
        scratch.group(6, at.iter().copied());
        let groups: Vec<(NodeId, Vec<usize>)> =
            scratch.groups().map(|(node, members)| (node, members.to_vec())).collect();
        assert_eq!(groups, vec![(n(0), vec![1, 4]), (n(2), vec![0, 2, 5]), (n(5), vec![3])]);
    }

    #[test]
    fn group_scratch_is_reusable_and_handles_empty() {
        let mut scratch = GroupScratch::new();
        scratch.group(3, std::iter::empty());
        assert_eq!(scratch.groups().count(), 0);
        scratch.group(3, [n(1), n(1)].into_iter());
        let groups: Vec<(NodeId, Vec<usize>)> =
            scratch.groups().map(|(node, members)| (node, members.to_vec())).collect();
        assert_eq!(groups, vec![(n(1), vec![0, 1])]);
        // Shrinking the node universe must not leak stale groups.
        scratch.group(1, [n(0)].into_iter());
        let groups: Vec<(NodeId, Vec<usize>)> =
            scratch.groups().map(|(node, members)| (node, members.to_vec())).collect();
        assert_eq!(groups, vec![(n(0), vec![0])]);
    }
}
