//! The network-mapping simulation (paper §II).
//!
//! A team of mobile agents wanders a **static** wireless network (a
//! directed link graph) and cooperatively builds its map. Each simulated
//! step every agent:
//!
//! 1. learns all edges off the node it is on (first-hand knowledge);
//! 2. learns everything it can from the other agents on the node
//!    (second-hand knowledge);
//! 3. chooses the node to move to (its movement policy, optionally
//!    avoiding footprint-marked exits);
//! 4. leaves its footprint on the current node (stigmergic agents);
//!
//! and then moves. The *finishing time* is the first step at which every
//! agent holds a perfect map; *knowledge over time* is the mean fraction
//! of edges known.

#![cfg_attr(not(test), warn(clippy::indexing_slicing))]

use crate::agent::AgentId;
use crate::comm::{union_edges, union_visits, GroupScratch};
use crate::error::CoreError;
use crate::knowledge::{EdgeSet, VisitTimes};
use crate::overhead::{mapping_agent_state_bytes, Overhead};
use crate::policy::{choose_move, MappingPolicy, TieBreak};
use crate::stigmergy::FootprintBoard;
use crate::trace::{TraceEvent, TraceLog};
use agentnet_engine::invariant::{run_until_checked, InvariantSet, InvariantViolation};
use agentnet_engine::sim::{run_until, RunOutcome, Step, TimeStepSim};
use agentnet_engine::TimeSeries;
use agentnet_graph::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a mapping run.
///
/// ```
/// use agentnet_core::mapping::MappingConfig;
/// use agentnet_core::policy::MappingPolicy;
///
/// let cfg = MappingConfig::new(MappingPolicy::Conscientious, 15).stigmergic(true);
/// assert_eq!(cfg.population, 15);
/// assert!(cfg.stigmergic);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MappingConfig {
    /// Movement algorithm shared by the whole team.
    pub policy: MappingPolicy,
    /// Number of agents.
    pub population: usize,
    /// Whether agents leave and respect footprints (the paper's
    /// contribution; `false` reproduces the N. Minar baseline agents).
    pub stigmergic: bool,
    /// Tie-breaking rule for equally-preferred neighbours.
    pub tie_break: TieBreak,
    /// Footprints kept per node board.
    pub footprint_capacity: usize,
    /// Footprint recency window in steps (marks older than this are
    /// ignored even if still on the board).
    pub footprint_window: u64,
    /// Trace ring capacity; 0 disables event tracing (the default).
    pub trace_capacity: usize,
}

impl MappingConfig {
    /// Creates a config with defaults: non-stigmergic, random
    /// tie-break, footprint board of
    /// [`FootprintBoard::DEFAULT_CAPACITY`], unbounded footprint window.
    pub fn new(policy: MappingPolicy, population: usize) -> Self {
        MappingConfig {
            policy,
            population,
            stigmergic: false,
            tie_break: TieBreak::default(),
            footprint_capacity: FootprintBoard::DEFAULT_CAPACITY,
            footprint_window: u64::MAX,
            trace_capacity: 0,
        }
    }

    /// Enables or disables stigmergy.
    pub fn stigmergic(mut self, on: bool) -> Self {
        self.stigmergic = on;
        self
    }

    /// Sets the tie-breaking rule.
    pub fn tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    /// Sets the per-node footprint board capacity.
    pub fn footprint_capacity(mut self, capacity: usize) -> Self {
        self.footprint_capacity = capacity;
        self
    }

    /// Sets the footprint recency window.
    pub fn footprint_window(mut self, window: u64) -> Self {
        self.footprint_window = window;
        self
    }

    /// Enables event tracing with the given ring capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

#[derive(Clone, Debug)]
struct MappingAgent {
    at: NodeId,
    edges: EdgeSet,
    /// First-hand visit times (what conscientious agents steer by).
    first_visits: VisitTimes,
    /// First- and second-hand visit times merged (super-conscientious).
    merged_visits: VisitTimes,
    complete: bool,
}

/// The mapping simulation.
///
/// Drive it with [`MappingSim::run`] or step-by-step through
/// [`TimeStepSim`].
#[derive(Clone, Debug)]
pub struct MappingSim {
    graph: DiGraph,
    config: MappingConfig,
    agents: Vec<MappingAgent>,
    boards: Vec<FootprintBoard>,
    rng: SmallRng,
    knowledge: TimeSeries,
    complete_agents: usize,
    overhead: Overhead,
    trace: TraceLog,
    /// Set once the topology has been swapped mid-run: completeness and
    /// knowledge then use exact (intersection) accounting, since stale
    /// knowledge may inflate raw edge counts.
    graph_changed: bool,
    groups: GroupScratch,
    pending: Vec<Option<NodeId>>,
    avoid: Vec<NodeId>,
}

/// Result of a mapping run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MappingOutcome {
    /// `true` if every agent achieved a perfect map within the budget.
    pub finished: bool,
    /// The finishing time (steps executed until every agent was complete),
    /// or the budget if unfinished.
    pub finishing_time: Step,
    /// Mean knowledge fraction per step.
    pub knowledge: TimeSeries,
}

impl MappingSim {
    /// Creates a mapping simulation over a static link graph.
    ///
    /// Agents are placed on uniformly random nodes using `seed`; all
    /// randomness of the run derives from it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty population, an
    /// empty graph, or a graph with no edges to map.
    pub fn new(graph: DiGraph, config: MappingConfig, seed: u64) -> Result<Self, CoreError> {
        if config.population == 0 {
            return Err(CoreError::invalid("mapping needs at least one agent"));
        }
        if graph.node_count() == 0 {
            return Err(CoreError::invalid("mapping needs a nonempty graph"));
        }
        if graph.edge_count() == 0 {
            return Err(CoreError::invalid("mapping needs a graph with edges"));
        }
        if config.footprint_capacity == 0 {
            return Err(CoreError::invalid("footprint capacity must be positive"));
        }
        let n = graph.node_count();
        let mut rng = SmallRng::seed_from_u64(seed);
        let agents = (0..config.population)
            .map(|_| MappingAgent {
                at: NodeId::new(rng.random_range(0..n)),
                edges: EdgeSet::new(n),
                first_visits: VisitTimes::new(n),
                merged_visits: VisitTimes::new(n),
                complete: false,
            })
            .collect();
        let boards = (0..n).map(|_| FootprintBoard::new(config.footprint_capacity)).collect();
        let trace = TraceLog::new(config.trace_capacity);
        Ok(MappingSim {
            graph,
            config,
            agents,
            boards,
            rng,
            knowledge: TimeSeries::new(),
            complete_agents: 0,
            overhead: Overhead::default(),
            trace,
            graph_changed: false,
            groups: GroupScratch::new(),
            pending: Vec::new(),
            avoid: Vec::new(),
        })
    }

    /// The topology being mapped.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Swaps in a new topology mid-run — continuous mapping of a network
    /// whose links drift (the paper: "the topology knowledge of the
    /// network become invalid after awhile"). Agent knowledge is kept:
    /// stale edges linger until an agent revisits their source node
    /// (first-hand refresh) and may re-spread through meetings in the
    /// meantime. After the first call, knowledge and completeness use
    /// exact (intersection-based) accounting.
    ///
    /// # Panics
    ///
    /// Panics if the node count differs from the current graph's.
    pub fn set_graph(&mut self, graph: DiGraph) {
        assert_eq!(
            graph.node_count(),
            self.graph.node_count(),
            "replacement topology must keep the node set"
        );
        self.graph = graph;
        self.graph_changed = true;
        // Completion must be re-established against the new topology.
        self.complete_agents = 0;
        for agent in &mut self.agents {
            agent.complete = false;
        }
    }

    /// Mean fraction of the *current* graph's edges known across agents
    /// (true positives only).
    pub fn mean_accuracy(&self) -> f64 {
        let total = self.graph.edge_count().max(1);
        let sum: f64 = self
            .agents
            .iter()
            .map(|a| a.edges.intersection_count(&self.graph) as f64 / total as f64)
            .sum();
        sum / self.agents.len() as f64
    }

    /// Mean number of stale (no-longer-existing) edges in agent
    /// knowledge.
    pub fn mean_stale_edges(&self) -> f64 {
        let sum: f64 = self.agents.iter().map(|a| a.edges.stale_count(&self.graph) as f64).sum();
        sum / self.agents.len() as f64
    }

    /// The run configuration.
    pub fn config(&self) -> &MappingConfig {
        &self.config
    }

    /// Mean fraction of edges known across agents right now.
    pub fn mean_knowledge(&self) -> f64 {
        let total = self.graph.edge_count();
        let sum: f64 = self.agents.iter().map(|a| a.edges.knowledge_fraction(total)).sum();
        sum / self.agents.len() as f64
    }

    /// Knowledge fraction of each agent, in agent order.
    pub fn per_agent_knowledge(&self) -> Vec<f64> {
        let total = self.graph.edge_count();
        self.agents.iter().map(|a| a.edges.knowledge_fraction(total)).collect()
    }

    /// Knowledge fraction of the worst-informed agent.
    pub fn min_knowledge(&self) -> f64 {
        let total = self.graph.edge_count();
        self.agents.iter().map(|a| a.edges.knowledge_fraction(total)).fold(f64::INFINITY, f64::min)
    }

    /// Current node of each agent, in agent order.
    pub fn positions(&self) -> Vec<NodeId> {
        self.agents.iter().map(|a| a.at).collect()
    }

    /// Per-node footprint boards, indexed by node id.
    pub fn boards(&self) -> &[FootprintBoard] {
        &self.boards
    }

    /// Number of distinct nodes each agent has visited first-hand, in
    /// agent order.
    pub fn first_visited_counts(&self) -> Vec<usize> {
        self.agents.iter().map(|a| a.first_visits.visited_count()).collect()
    }

    /// Number of distinct nodes each agent knows a visit time for —
    /// first- or second-hand — in agent order.
    pub fn merged_visited_counts(&self) -> Vec<usize> {
        self.agents.iter().map(|a| a.merged_visits.visited_count()).collect()
    }

    /// `true` once [`Self::set_graph`] has swapped the topology mid-run
    /// (knowledge metrics then use exact intersection accounting).
    pub fn graph_changed(&self) -> bool {
        self.graph_changed
    }

    /// Number of agents currently holding a complete map.
    pub fn complete_agent_count(&self) -> usize {
        self.complete_agents
    }

    /// The recorded mean-knowledge series.
    pub fn knowledge_series(&self) -> &TimeSeries {
        &self.knowledge
    }

    /// Cumulative overhead counters (migrations, meeting messages,
    /// footprint writes) for the run so far.
    pub fn overhead(&self) -> Overhead {
        self.overhead
    }

    /// The event trace (empty unless
    /// [`MappingConfig::trace_capacity`] is nonzero).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Runs until every agent has a perfect map or `max_steps` elapse.
    pub fn run(&mut self, max_steps: u64) -> MappingOutcome {
        let RunOutcome { steps, finished } = run_until(self, Step::new(max_steps));
        MappingOutcome { finished, finishing_time: steps, knowledge: self.knowledge.clone() }
    }

    /// Like [`Self::run`], but validates `checks` after every step (see
    /// [`crate::validate::mapping_invariants`] for the standard set).
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`]; the simulation is left
    /// in the violating state for inspection.
    pub fn run_checked(
        &mut self,
        max_steps: u64,
        checks: &mut InvariantSet<Self>,
    ) -> Result<MappingOutcome, InvariantViolation> {
        let RunOutcome { steps, finished } = run_until_checked(self, Step::new(max_steps), checks)?;
        Ok(MappingOutcome { finished, finishing_time: steps, knowledge: self.knowledge.clone() })
    }
}

impl TimeStepSim for MappingSim {
    fn step(&mut self, now: Step) {
        let total_edges = self.graph.edge_count();

        // Phase 1 — first-hand learning: the agent's knowledge of the
        // current node's out-edges is *refreshed*, not merely extended —
        // links that no longer exist are unlearned. (On a static graph
        // this is identical to inserting.)
        for agent in &mut self.agents {
            let v = agent.at;
            agent.first_visits.record(v, now);
            agent.merged_visits.record(v, now);
            agent.edges.replace_row(v, self.graph.out_neighbors(v));
        }

        // Phase 2 — second-hand learning from co-located agents.
        self.groups.group(self.graph.node_count(), self.agents.iter().map(|a| a.at));
        let groups = std::mem::take(&mut self.groups);
        for (node, group) in groups.groups() {
            if group.len() < 2 {
                continue;
            }
            // Each ordered pair exchanges knowledge once.
            self.overhead.meeting_messages += (group.len() * (group.len() - 1)) as u64;
            if self.config.trace_capacity > 0 {
                self.trace.record(TraceEvent::Meeting {
                    node,
                    participants: group.len() as u32,
                    at: now,
                });
            }
            let members = || group.iter().filter_map(|&i| self.agents.get(i));
            let Some(union_e) = union_edges(members().map(|a| &a.edges)) else { continue };
            let Some(union_v) = union_visits(members().map(|a| &a.merged_visits)) else {
                continue;
            };
            for &i in group {
                if let Some(agent) = self.agents.get_mut(i) {
                    agent.edges = union_e.clone();
                    agent.merged_visits = union_v.clone();
                }
            }
        }
        self.groups = groups;

        // Phase 3+4 — choose the next node and leave a footprint. Choices
        // are made in agent-id order and footprints are visible
        // immediately, so two stigmergic agents on one node diverge
        // within the same step.
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();
        let mut avoid = std::mem::take(&mut self.avoid);
        for i in 0..self.agents.len() {
            let Some(agent) = self.agents.get(i) else { continue };
            let at = agent.at;
            let candidates = self.graph.out_neighbors(at);
            if self.config.stigmergic {
                if let Some(board) = self.boards.get_mut(at.index()) {
                    board.marked_targets_into(now, self.config.footprint_window, &mut avoid);
                }
            } else {
                avoid.clear();
            }
            let choice = match self.config.policy {
                MappingPolicy::Random => choose_move(
                    candidates,
                    &avoid,
                    None::<fn(NodeId) -> Option<Step>>,
                    self.config.tie_break,
                    0,
                    &mut self.rng,
                ),
                MappingPolicy::Conscientious => choose_move(
                    candidates,
                    &avoid,
                    Some(|n: NodeId| agent.first_visits.last_visit(n)),
                    self.config.tie_break,
                    // Conscientious rankings come from private first-hand
                    // visits, which meetings never merge, so herding can only
                    // be the same-start artifact; salting the seed with agent
                    // identity dissolves it without touching the paper's
                    // convergence herding (super-conscientious / oldest-node).
                    agent.first_visits.content_hash()
                        ^ crate::policy::mix64(0x636f_6e73_6369 ^ i as u64),
                    &mut self.rng,
                ),
                MappingPolicy::SuperConscientious => choose_move(
                    candidates,
                    &avoid,
                    Some(|n: NodeId| agent.merged_visits.last_visit(n)),
                    self.config.tie_break,
                    agent.merged_visits.content_hash(),
                    &mut self.rng,
                ),
            };
            if self.config.stigmergic {
                if let Some(target) = choice {
                    if let Some(board) = self.boards.get_mut(at.index()) {
                        board.imprint(AgentId::new(i), target, now);
                    }
                    self.overhead.footprint_writes += 1;
                    if self.config.trace_capacity > 0 {
                        self.trace.record(TraceEvent::Footprint {
                            agent: AgentId::new(i),
                            node: at,
                            target,
                            at: now,
                        });
                    }
                }
            }
            pending.push(choice);
        }

        // Move phase.
        let state_bytes = mapping_agent_state_bytes(self.graph.node_count());
        for (i, (agent, &choice)) in self.agents.iter_mut().zip(&pending).enumerate() {
            if let Some(target) = choice {
                if self.config.trace_capacity > 0 {
                    self.trace.record(TraceEvent::Moved {
                        agent: AgentId::new(i),
                        from: agent.at,
                        to: target,
                        at: now,
                    });
                }
                agent.at = target;
                self.overhead.migrations += 1;
                self.overhead.migrated_bytes += state_bytes;
            }
        }
        self.pending = pending;
        self.avoid = avoid;

        // Bookkeeping: knowledge metric and completion. On a static run
        // every known edge exists, so the raw count is exact; once the
        // graph has been swapped, stale knowledge may inflate counts and
        // intersection-based accounting takes over.
        let mut complete = 0usize;
        let mut sum = 0.0f64;
        for agent in &mut self.agents {
            let known = if self.graph_changed {
                agent.edges.intersection_count(&self.graph)
            } else {
                agent.edges.len()
            };
            sum += (known as f64 / total_edges.max(1) as f64).min(1.0);
            agent.complete = known >= total_edges;
            if agent.complete {
                complete += 1;
            }
        }
        self.complete_agents = complete;
        self.knowledge.record(sum / self.agents.len() as f64);
    }

    fn is_done(&self) -> bool {
        self.complete_agents == self.agents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentnet_graph::generators::{directed_ring, grid, GeometricConfig};

    fn small_net() -> DiGraph {
        GeometricConfig::new(30, 180).generate(5).unwrap().graph
    }

    fn run(policy: MappingPolicy, pop: usize, stig: bool, seed: u64) -> MappingOutcome {
        let cfg = MappingConfig::new(policy, pop).stigmergic(stig);
        MappingSim::new(small_net(), cfg, seed).unwrap().run(200_000)
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let g = small_net();
        assert!(
            MappingSim::new(g.clone(), MappingConfig::new(MappingPolicy::Random, 0), 1).is_err()
        );
        assert!(MappingSim::new(DiGraph::new(0), MappingConfig::new(MappingPolicy::Random, 1), 1)
            .is_err());
        assert!(MappingSim::new(DiGraph::new(5), MappingConfig::new(MappingPolicy::Random, 1), 1)
            .is_err());
        let zero_fp = MappingConfig::new(MappingPolicy::Random, 1).footprint_capacity(0);
        assert!(MappingSim::new(g, zero_fp, 1).is_err());
    }

    #[test]
    fn single_conscientious_agent_finishes_on_ring() {
        let g = directed_ring(12);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 1);
        let mut sim = MappingSim::new(g, cfg, 3).unwrap();
        let out = sim.run(10_000);
        assert!(out.finished);
        // A directed ring forces exactly one lap (12 nodes) to learn all
        // 12 edges; the agent needs at most n steps after placement.
        assert!(out.finishing_time.as_u64() <= 13, "took {}", out.finishing_time);
    }

    #[test]
    fn all_policies_finish_on_small_network() {
        for policy in
            [MappingPolicy::Random, MappingPolicy::Conscientious, MappingPolicy::SuperConscientious]
        {
            let out = run(policy, 3, false, 11);
            assert!(out.finished, "{policy} did not finish");
        }
    }

    #[test]
    fn stigmergy_also_finishes() {
        for policy in [MappingPolicy::Random, MappingPolicy::Conscientious] {
            let out = run(policy, 3, true, 11);
            assert!(out.finished, "stigmergic {policy} did not finish");
        }
    }

    #[test]
    fn knowledge_series_is_monotone_nondecreasing() {
        let out = run(MappingPolicy::Conscientious, 2, false, 7);
        let vals = out.knowledge.values();
        assert!(vals.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!((vals[vals.len() - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_agents_do_not_finish_slower() {
        let lone = run(MappingPolicy::Conscientious, 1, false, 5);
        let team = run(MappingPolicy::Conscientious, 10, false, 5);
        assert!(team.finishing_time <= lone.finishing_time);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let a = run(MappingPolicy::Random, 4, true, 9);
        let b = run(MappingPolicy::Random, 4, true, 9);
        assert_eq!(a.finishing_time, b.finishing_time);
        assert_eq!(a.knowledge, b.knowledge);
        let c = run(MappingPolicy::Random, 4, true, 10);
        assert_ne!(a.finishing_time, c.finishing_time);
    }

    #[test]
    fn grid_with_team_finishes_quickly() {
        let g = grid(5, 5);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 5);
        let out = MappingSim::new(g, cfg, 2).unwrap().run(5_000);
        assert!(out.finished);
        assert!(out.finishing_time.as_u64() < 500);
    }

    #[test]
    fn mean_and_min_knowledge_track_progress() {
        let g = grid(4, 4);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 2);
        let mut sim = MappingSim::new(g, cfg, 2).unwrap();
        assert_eq!(sim.mean_knowledge(), 0.0);
        assert_eq!(sim.min_knowledge(), 0.0);
        sim.step(Step::ZERO);
        assert!(sim.mean_knowledge() > 0.0);
        assert!(sim.min_knowledge() <= sim.mean_knowledge());
    }

    #[test]
    fn overhead_counts_migrations_and_footprints() {
        let g = grid(4, 4);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 3).stigmergic(true);
        let mut sim = MappingSim::new(g, cfg, 6).unwrap();
        for s in 0..10 {
            sim.step(Step::new(s));
        }
        let o = sim.overhead();
        // 3 agents, 10 steps, grid never strands anyone.
        assert_eq!(o.migrations, 30);
        assert_eq!(o.footprint_writes, 30);
        assert!(o.migrated_bytes > 0);
        assert_eq!(o.table_writes, 0, "mapping writes no routing tables");
    }

    #[test]
    fn non_stigmergic_run_writes_no_footprints() {
        let g = grid(4, 4);
        let cfg = MappingConfig::new(MappingPolicy::Random, 2);
        let mut sim = MappingSim::new(g, cfg, 6).unwrap();
        sim.step(Step::ZERO);
        assert_eq!(sim.overhead().footprint_writes, 0);
    }

    #[test]
    fn set_graph_resets_completion_and_tracks_accuracy() {
        let g1 = grid(4, 4);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 4);
        let mut sim = MappingSim::new(g1.clone(), cfg, 8).unwrap();
        let out = sim.run(10_000);
        assert!(out.finished);
        assert_eq!(sim.mean_accuracy(), 1.0);
        assert_eq!(sim.mean_stale_edges(), 0.0);

        // Drift: one link pair dies, a new long link appears.
        let mut g2 = g1.clone();
        g2.remove_edge(NodeId::new(0), NodeId::new(1));
        g2.remove_edge(NodeId::new(1), NodeId::new(0));
        g2.add_edge(NodeId::new(0), NodeId::new(5));
        g2.add_edge(NodeId::new(5), NodeId::new(0));
        sim.set_graph(g2.clone());
        assert!(!sim.is_done(), "completion must be re-established");
        assert!(sim.mean_stale_edges() >= 2.0 - 1e-9);
        // Continued running re-converges on the new topology.
        let out = sim.run(10_000);
        assert!(out.finished, "agents never re-mapped the drifted topology");
        assert_eq!(sim.mean_accuracy(), 1.0);
        // Completion does not force the purge, but continued wandering
        // refreshes every row; stale knowledge dies out.
        let mut extra = 0u64;
        while sim.mean_stale_edges() > 0.0 {
            sim.step(Step::new(10_000 + extra));
            extra += 1;
            assert!(extra < 20_000, "stale edges were never purged");
        }
    }

    #[test]
    #[should_panic(expected = "node set")]
    fn set_graph_rejects_different_node_count() {
        let cfg = MappingConfig::new(MappingPolicy::Random, 1);
        let mut sim = MappingSim::new(grid(3, 3), cfg, 1).unwrap();
        sim.set_graph(grid(2, 2));
    }

    #[test]
    fn positions_move_along_edges() {
        let g = directed_ring(6);
        let cfg = MappingConfig::new(MappingPolicy::Random, 3);
        let mut sim = MappingSim::new(g.clone(), cfg, 4).unwrap();
        let before = sim.positions();
        sim.step(Step::ZERO);
        let after = sim.positions();
        for (b, a) in before.iter().zip(&after) {
            assert!(g.has_edge(*b, *a), "agent teleported {b} -> {a}");
        }
    }

    #[test]
    fn stigmergic_colocated_agents_diverge() {
        // Place many agents; after one step, stigmergic conscientious
        // agents that started together should not all pick the same exit.
        let g = grid(3, 3);
        let cfg = MappingConfig::new(MappingPolicy::Conscientious, 6)
            .stigmergic(true)
            .footprint_capacity(4);
        let mut sim = MappingSim::new(g, cfg, 1).unwrap();
        // Force co-location.
        for a in &mut sim.agents {
            a.at = NodeId::new(4); // grid centre: 4 neighbours
        }
        sim.step(Step::ZERO);
        let mut dests: Vec<NodeId> = sim.positions();
        dests.sort_unstable();
        dests.dedup();
        assert!(dests.len() >= 3, "stigmergy failed to disperse: {dests:?}");
    }

    #[test]
    fn non_stigmergic_identical_agents_herd() {
        // Same setup without stigmergy: deterministic tie-break makes
        // co-located super-conscientious agents pick the same exit.
        let g = grid(3, 3);
        let cfg =
            MappingConfig::new(MappingPolicy::SuperConscientious, 4).tie_break(TieBreak::LowestId);
        let mut sim = MappingSim::new(g, cfg, 1).unwrap();
        for a in &mut sim.agents {
            a.at = NodeId::new(4);
        }
        sim.step(Step::ZERO);
        let mut dests = sim.positions();
        dests.dedup();
        assert_eq!(dests.len(), 1, "expected herding, got {dests:?}");
    }
}
