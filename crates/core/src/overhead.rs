//! Overhead accounting.
//!
//! The paper argues its agents are cheap: stigmergic and non-stigmergic
//! agents have "identical overheads", footprints impose "negligible
//! overhead on the system complexity", and competing designs carry
//! "about 5 times more overhead than ours". This module makes those
//! claims measurable: both simulations meter every migration, meeting
//! message, footprint write and table write, and can estimate the byte
//! size of the state an agent drags across the network on each hop.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// Cumulative overhead counters for one simulation run.
///
/// ```
/// use agentnet_core::overhead::Overhead;
/// let mut o = Overhead::default();
/// o.migrations += 10;
/// o.footprint_writes += 10;
/// let both = o + o;
/// assert_eq!(both.migrations, 20);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Overhead {
    /// Agent migrations (one agent crossing one link).
    pub migrations: u64,
    /// Bytes of agent state carried across links, summed over
    /// migrations — the network cost of mobile code with its data.
    pub migrated_bytes: u64,
    /// Pairwise knowledge exchanges during meetings (each ordered pair
    /// sharing state counts once).
    pub meeting_messages: u64,
    /// Footprints written to node boards (stigmergy's entire cost).
    pub footprint_writes: u64,
    /// Routing-table entries written into nodes.
    pub table_writes: u64,
}

impl Overhead {
    /// Total node-state writes (footprints + table entries).
    pub fn node_writes(&self) -> u64 {
        self.footprint_writes + self.table_writes
    }

    /// Mean bytes carried per migration (0 when nothing moved).
    pub fn bytes_per_migration(&self) -> f64 {
        if self.migrations == 0 {
            0.0
        } else {
            self.migrated_bytes as f64 / self.migrations as f64
        }
    }
}

impl Add for Overhead {
    type Output = Overhead;
    fn add(self, rhs: Overhead) -> Overhead {
        Overhead {
            migrations: self.migrations + rhs.migrations,
            migrated_bytes: self.migrated_bytes + rhs.migrated_bytes,
            meeting_messages: self.meeting_messages + rhs.meeting_messages,
            footprint_writes: self.footprint_writes + rhs.footprint_writes,
            table_writes: self.table_writes + rhs.table_writes,
        }
    }
}

impl AddAssign for Overhead {
    fn add_assign(&mut self, rhs: Overhead) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Overhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "migrations={} bytes/migration={:.0} meeting_msgs={} footprints={} table_writes={}",
            self.migrations,
            self.bytes_per_migration(),
            self.meeting_messages,
            self.footprint_writes,
            self.table_writes
        )
    }
}

/// Estimated serialized size in bytes of a mapping agent's mobile state:
/// the edge bitset plus both visit-time tables. (The code segment is
/// identical across agents and policies, so it cancels in comparisons.)
///
/// ```
/// use agentnet_core::overhead::mapping_agent_state_bytes;
/// // The paper's 300-node map costs ~11 KiB of carried bitset + tables.
/// assert!(mapping_agent_state_bytes(300) > 10_000);
/// ```
pub fn mapping_agent_state_bytes(nodes: usize) -> u64 {
    let edge_bits = (nodes * nodes).div_ceil(8);
    let visit_tables = 2 * nodes * 9; // Option<Step> ≈ 9 bytes serialized
    (edge_bits + visit_tables) as u64
}

/// Estimated serialized size in bytes of a routing agent's mobile state:
/// the bounded visit memory plus the carried route claim.
pub fn routing_agent_state_bytes(history_size: usize) -> u64 {
    let memory = history_size * 12; // (node id, step) pairs
    let claim = 12; // gateway id + hop count
    (memory + claim) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_accumulates_fieldwise() {
        let a = Overhead {
            migrations: 1,
            migrated_bytes: 10,
            meeting_messages: 2,
            footprint_writes: 3,
            table_writes: 4,
        };
        let mut b = a;
        b += a;
        assert_eq!(b.migrations, 2);
        assert_eq!(b.migrated_bytes, 20);
        assert_eq!(b.meeting_messages, 4);
        assert_eq!(b.footprint_writes, 6);
        assert_eq!(b.table_writes, 8);
        assert_eq!(b.node_writes(), 14);
    }

    #[test]
    fn bytes_per_migration_handles_zero() {
        assert_eq!(Overhead::default().bytes_per_migration(), 0.0);
        let o = Overhead { migrations: 4, migrated_bytes: 100, ..Default::default() };
        assert_eq!(o.bytes_per_migration(), 25.0);
    }

    #[test]
    fn state_sizes_scale_with_inputs() {
        assert!(mapping_agent_state_bytes(300) > mapping_agent_state_bytes(100));
        assert!(routing_agent_state_bytes(40) > routing_agent_state_bytes(5));
        // A routing agent is far lighter than a mapping agent for the
        // paper's sizes (bounded memory vs full map).
        assert!(routing_agent_state_bytes(20) * 10 < mapping_agent_state_bytes(300));
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = Overhead::default().to_string();
        for key in ["migrations", "meeting_msgs", "footprints", "table_writes"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
