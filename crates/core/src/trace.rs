//! Event tracing — the "data-collection system" of the paper's
//! simulator.
//!
//! When enabled on a simulation config, every agent migration, meeting,
//! footprint and table write is recorded into a bounded ring
//! ([`TraceLog`]), exportable as JSON-lines for external analysis or
//! replay. Tracing is off by default and costs nothing when disabled.

use crate::agent::AgentId;
use agentnet_engine::Step;
use agentnet_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One simulation event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
#[non_exhaustive]
pub enum TraceEvent {
    /// An agent migrated across a link.
    Moved {
        /// The migrating agent.
        agent: AgentId,
        /// Link source.
        from: NodeId,
        /// Link target.
        to: NodeId,
        /// When.
        at: Step,
    },
    /// Two or more agents met on a node and exchanged knowledge.
    Meeting {
        /// Where the meeting happened.
        node: NodeId,
        /// Number of participants.
        participants: u32,
        /// When.
        at: Step,
    },
    /// An agent left a footprint.
    Footprint {
        /// The imprinting agent.
        agent: AgentId,
        /// The node carrying the footprint.
        node: NodeId,
        /// The exit the footprint marks.
        target: NodeId,
        /// When.
        at: Step,
    },
    /// An agent wrote a routing-table entry.
    TableWrite {
        /// The node whose table was updated.
        node: NodeId,
        /// The gateway the entry leads to.
        gateway: NodeId,
        /// The installed next hop.
        next_hop: NodeId,
        /// The claimed hop count.
        hops: u32,
        /// When.
        at: Step,
    },
}

impl TraceEvent {
    /// The step the event happened at.
    pub fn at(&self) -> Step {
        match *self {
            TraceEvent::Moved { at, .. }
            | TraceEvent::Meeting { at, .. }
            | TraceEvent::Footprint { at, .. }
            | TraceEvent::TableWrite { at, .. } => at,
        }
    }
}

/// A bounded ring of [`TraceEvent`]s: the most recent `capacity` events
/// are retained; `total_recorded` counts everything ever seen.
///
/// ```
/// use agentnet_core::trace::{TraceEvent, TraceLog};
/// use agentnet_core::AgentId;
/// use agentnet_engine::Step;
/// use agentnet_graph::NodeId;
///
/// let mut log = TraceLog::new(2);
/// for i in 0..3 {
///     log.record(TraceEvent::Meeting {
///         node: NodeId::new(i),
///         participants: 2,
///         at: Step::new(i as u64),
///     });
/// }
/// assert_eq!(log.len(), 2);            // ring kept the newest two
/// assert_eq!(log.total_recorded(), 3); // but counted all three
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    total: u64,
}

impl TraceLog {
    /// Creates a log retaining at most `capacity` events (0 = record
    /// nothing but still count).
    pub fn new(capacity: usize) -> Self {
        TraceLog { ring: VecDeque::with_capacity(capacity.min(4096)), capacity, total: 0 }
    }

    /// Records an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Serializes the retained events as JSON lines — one event per
    /// line, every line newline-terminated, so exports concatenate and
    /// stream cleanly. An event that fails to serialize is skipped
    /// rather than poisoning the export, but the skip is *counted*:
    /// callers must surface [`JsonlExport::dropped`] (the `repro`
    /// binary feeds it into the metrics registry) instead of silently
    /// losing data.
    pub fn to_jsonl(&self) -> JsonlExport {
        let mut text = String::new();
        let mut dropped = 0u64;
        for event in &self.ring {
            match serde_json::to_string(event) {
                Ok(line) => {
                    text.push_str(&line);
                    text.push('\n');
                }
                Err(_) => dropped += 1,
            }
        }
        JsonlExport { text, dropped }
    }
}

/// Result of [`TraceLog::to_jsonl`]: the newline-terminated JSON-lines
/// text plus how many retained events failed to serialize and were
/// left out of it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JsonlExport {
    /// One JSON object per line; empty, or ending in `\n`.
    pub text: String,
    /// Retained events that could not be serialized (absent from
    /// `text`). Zero in practice — these plain enums serialize
    /// infallibly — but an export must say so, not assume so.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moved(i: u64) -> TraceEvent {
        TraceEvent::Moved {
            agent: AgentId::new(0),
            from: NodeId::new(0),
            to: NodeId::new(1),
            at: Step::new(i),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = TraceLog::new(3);
        for i in 0..5 {
            log.record(moved(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 5);
        let first = log.events().next().unwrap();
        assert_eq!(first.at(), Step::new(2));
    }

    #[test]
    fn zero_capacity_counts_without_storing() {
        let mut log = TraceLog::new(0);
        log.record(moved(0));
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let mut log = TraceLog::new(8);
        log.record(moved(1));
        log.record(TraceEvent::TableWrite {
            node: NodeId::new(2),
            gateway: NodeId::new(9),
            next_hop: NodeId::new(1),
            hops: 3,
            at: Step::new(4),
        });
        let export = log.to_jsonl();
        assert_eq!(export.dropped, 0);
        assert_eq!(export.text.lines().count(), 2);
        assert!(export.text.lines().nth(1).unwrap().contains("\"table_write\""));
        // Every line is newline-terminated (tailing/concatenation-safe).
        assert!(export.text.ends_with('\n'));
        // Round-trips through serde.
        let back: TraceEvent = serde_json::from_str(export.text.lines().next().unwrap()).unwrap();
        assert_eq!(&back, log.events().next().unwrap());
    }

    #[test]
    fn empty_log_exports_empty_text() {
        let export = TraceLog::new(4).to_jsonl();
        assert_eq!(export, JsonlExport::default());
        assert!(export.text.is_empty());
    }

    #[test]
    fn at_extracts_step_for_all_variants() {
        let events = [
            moved(7),
            TraceEvent::Meeting { node: NodeId::new(0), participants: 3, at: Step::new(7) },
            TraceEvent::Footprint {
                agent: AgentId::new(1),
                node: NodeId::new(0),
                target: NodeId::new(2),
                at: Step::new(7),
            },
        ];
        assert!(events.iter().all(|e| e.at() == Step::new(7)));
    }
}
