//! Error types for simulation configuration.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value was invalid (empty population, zero-node
    /// network, unmappable topology, ...).
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
}

impl CoreError {
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        CoreError::InvalidConfig { reason: reason.into() }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::invalid("no agents");
        assert_eq!(e.to_string(), "invalid configuration: no agents");
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Error + Send + Sync>() {}
        check::<CoreError>();
    }
}
